//! The configuration space: a collection of parameter specs with sampling,
//! mutation, and census operations.

use crate::config::Configuration;
use crate::param::{ParamKind, ParamSpec, Stage};
use crate::value::{Tristate, Value};
use rand::Rng;
use std::collections::HashMap;

/// A typed OS configuration space.
///
/// Parameters are indexed positionally; [`ConfigSpace::index_of`] resolves
/// names. A space also acts as the sampling distribution for random search
/// and for DeepTune's candidate pool: integers are sampled uniformly (or
/// log-uniformly), categorical kinds uniformly over their values, and fixed
/// parameters always keep their default.
#[derive(Clone, Debug, Default)]
pub struct ConfigSpace {
    params: Vec<ParamSpec>,
    index: HashMap<String, usize>,
}

/// Census of a configuration space, mirroring Table 1 of the paper.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpaceCensus {
    /// Compile-time `bool` options.
    pub compile_bool: usize,
    /// Compile-time `tristate` options.
    pub compile_tristate: usize,
    /// Compile-time `string` options.
    pub compile_string: usize,
    /// Compile-time `hex` options.
    pub compile_hex: usize,
    /// Compile-time `int` options.
    pub compile_int: usize,
    /// Boot-time options (kernel command line).
    pub boot: usize,
    /// Runtime options (writable /proc/sys and /sys files).
    pub runtime: usize,
}

impl SpaceCensus {
    /// Total number of compile-time options.
    pub fn compile_total(&self) -> usize {
        self.compile_bool
            + self.compile_tristate
            + self.compile_string
            + self.compile_hex
            + self.compile_int
    }

    /// Total number of options across all stages.
    pub fn total(&self) -> usize {
        self.compile_total() + self.boot + self.runtime
    }
}

impl ConfigSpace {
    /// Creates an empty space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a parameter and returns its positional index.
    ///
    /// # Panics
    ///
    /// Panics on duplicate names or a default outside the domain.
    pub fn add(&mut self, spec: ParamSpec) -> usize {
        assert!(
            spec.kind.admits(&spec.default),
            "default of {} outside its domain",
            spec.name
        );
        assert!(
            !self.index.contains_key(&spec.name),
            "duplicate parameter {}",
            spec.name
        );
        let idx = self.params.len();
        self.index.insert(spec.name.clone(), idx);
        self.params.push(spec);
        idx
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Returns `true` if the space has no parameters.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// The spec at position `idx`.
    pub fn spec(&self, idx: usize) -> &ParamSpec {
        &self.params[idx]
    }

    /// All specs in positional order.
    pub fn specs(&self) -> &[ParamSpec] {
        &self.params
    }

    /// Resolves a parameter name to its position.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// Pins a parameter to a fixed value (§3.5 constrained search).
    ///
    /// Returns `false` if the name is unknown or the value is out of domain.
    pub fn pin(&mut self, name: &str, value: Value) -> bool {
        match self.index.get(name).copied() {
            Some(i) if self.params[i].kind.admits(&value) => {
                self.params[i].default = value;
                self.params[i].fixed = true;
                true
            }
            _ => false,
        }
    }

    /// The configuration holding every parameter's default.
    pub fn default_config(&self) -> Configuration {
        Configuration::from_values(self.params.iter().map(|p| p.default).collect())
    }

    /// Samples one value from a parameter's domain.
    pub fn sample_value(&self, idx: usize, rng: &mut impl Rng) -> Value {
        let spec = &self.params[idx];
        if spec.fixed {
            return spec.default;
        }
        match &spec.kind {
            ParamKind::Bool => Value::Bool(rng.random::<bool>()),
            ParamKind::Tristate => Value::Tristate(Tristate::ALL[rng.random_range(0..3usize)]),
            ParamKind::Int {
                min,
                max,
                log_scale,
            } => Value::Int(sample_int(*min, *max, *log_scale, rng)),
            ParamKind::Hex { min, max } => Value::Int(sample_int(*min, *max, false, rng)),
            ParamKind::Enum { choices } => Value::Choice(rng.random_range(0..choices.len())),
        }
    }

    /// Samples a uniformly random configuration (fixed parameters keep their
    /// defaults).
    pub fn sample(&self, rng: &mut impl Rng) -> Configuration {
        Configuration::from_values(
            (0..self.params.len())
                .map(|i| self.sample_value(i, rng))
                .collect(),
        )
    }

    /// Samples a configuration that randomizes only parameters of `stage`,
    /// leaving the rest at their defaults. Used when a job focuses the
    /// search on one parameter type (§3.5).
    pub fn sample_stage(&self, stage: Stage, rng: &mut impl Rng) -> Configuration {
        Configuration::from_values(
            (0..self.params.len())
                .map(|i| {
                    if self.params[i].stage == stage {
                        self.sample_value(i, rng)
                    } else {
                        self.params[i].default
                    }
                })
                .collect(),
        )
    }

    /// Returns a copy of `base` with `n_changes` randomly chosen non-fixed
    /// parameters resampled. Used by DeepTune's candidate pool to exploit
    /// the neighborhood of the incumbent.
    pub fn mutate(
        &self,
        base: &Configuration,
        n_changes: usize,
        rng: &mut impl Rng,
    ) -> Configuration {
        let mut out = base.clone();
        let free: Vec<usize> = (0..self.params.len())
            .filter(|&i| !self.params[i].fixed)
            .collect();
        if free.is_empty() {
            return out;
        }
        for _ in 0..n_changes {
            let idx = free[rng.random_range(0..free.len())];
            out.set(idx, self.sample_value(idx, rng));
        }
        out
    }

    /// Checks that every value lies in its parameter's domain; returns the
    /// indices of violations.
    pub fn violations(&self, config: &Configuration) -> Vec<usize> {
        assert_eq!(config.len(), self.params.len(), "length mismatch");
        (0..self.params.len())
            .filter(|&i| !self.params[i].kind.admits(&config.get(i)))
            .collect()
    }

    /// Census of kinds and stages (Table 1).
    pub fn census(&self) -> SpaceCensus {
        let mut c = SpaceCensus::default();
        for p in &self.params {
            match p.stage {
                Stage::BootTime => c.boot += 1,
                Stage::Runtime => c.runtime += 1,
                Stage::CompileTime => match &p.kind {
                    ParamKind::Bool => c.compile_bool += 1,
                    ParamKind::Tristate => c.compile_tristate += 1,
                    ParamKind::Enum { .. } => c.compile_string += 1,
                    ParamKind::Hex { .. } => c.compile_hex += 1,
                    ParamKind::Int { .. } => c.compile_int += 1,
                },
            }
        }
        c
    }

    /// log10 of the number of distinct configurations (the paper quotes
    /// e.g. 3.7e13 permutations for the Unikraft experiment).
    pub fn log10_cardinality(&self) -> f64 {
        self.params
            .iter()
            .filter(|p| !p.fixed)
            .map(|p| (p.kind.cardinality() as f64).log10())
            .sum()
    }

    /// Indices of the parameters belonging to `stage`.
    pub fn stage_indices(&self, stage: Stage) -> Vec<usize> {
        (0..self.params.len())
            .filter(|&i| self.params[i].stage == stage)
            .collect()
    }

    /// Builds a sub-space containing only the named parameters (missing
    /// names are ignored). Used by Cozart-style reductions.
    pub fn subset(&self, names: &[&str]) -> ConfigSpace {
        let mut out = ConfigSpace::new();
        for name in names {
            if let Some(i) = self.index_of(name) {
                out.add(self.params[i].clone());
            }
        }
        out
    }
}

fn sample_int(min: i64, max: i64, log_scale: bool, rng: &mut impl Rng) -> i64 {
    if min == max {
        return min;
    }
    if log_scale && min >= 0 {
        // Log-uniform over [min, max]: uniform in ln(v - min + 1).
        let span = ((max - min) as f64 + 1.0).ln();
        let u = rng.random::<f64>() * span;
        let v = min + (u.exp() - 1.0).round() as i64;
        v.clamp(min, max)
    } else {
        rng.random_range(min..=max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> ConfigSpace {
        let mut s = ConfigSpace::new();
        s.add(ParamSpec::new("a", ParamKind::Bool, Stage::Runtime));
        s.add(
            ParamSpec::new("b", ParamKind::log_int(1, 1_000_000), Stage::Runtime)
                .with_default(Value::Int(128)),
        );
        s.add(ParamSpec::new("c", ParamKind::Tristate, Stage::CompileTime));
        s.add(
            ParamSpec::new(
                "d",
                ParamKind::choices(vec!["x", "y", "z"]),
                Stage::BootTime,
            )
            .with_default(Value::Choice(1)),
        );
        s
    }

    #[test]
    fn add_and_lookup() {
        let s = space();
        assert_eq!(s.len(), 4);
        assert_eq!(s.index_of("b"), Some(1));
        assert_eq!(s.index_of("zz"), None);
    }

    #[test]
    #[should_panic(expected = "duplicate parameter")]
    fn duplicate_names_panic() {
        let mut s = space();
        s.add(ParamSpec::new("a", ParamKind::Bool, Stage::Runtime));
    }

    #[test]
    fn samples_are_always_valid() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..500 {
            let c = s.sample(&mut rng);
            assert!(s.violations(&c).is_empty());
        }
    }

    #[test]
    fn log_sampling_covers_orders_of_magnitude() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(5);
        let mut small = 0;
        let mut large = 0;
        for _ in 0..2000 {
            let v = s
                .sample(&mut rng)
                .by_name(&s, "b")
                .unwrap()
                .as_int()
                .unwrap();
            if v < 1000 {
                small += 1;
            }
            if v > 100_000 {
                large += 1;
            }
        }
        // Log-uniform: both decades well represented; linear-uniform would
        // give small < 1000 only ~0.1% of the time.
        assert!(small > 400, "small={small}");
        assert!(large > 100, "large={large}");
    }

    #[test]
    fn pinned_parameters_never_vary() {
        let mut s = space();
        assert!(s.pin("a", Value::Bool(true)));
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let c = s.sample(&mut rng);
            assert_eq!(c.by_name(&s, "a"), Some(Value::Bool(true)));
        }
    }

    #[test]
    fn pin_rejects_bad_value_or_name() {
        let mut s = space();
        assert!(!s.pin("b", Value::Bool(true)));
        assert!(!s.pin("missing", Value::Bool(true)));
    }

    #[test]
    fn sample_stage_keeps_other_stages_default() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..50 {
            let c = s.sample_stage(Stage::Runtime, &mut rng);
            assert_eq!(
                c.by_name(&s, "c"),
                Some(s.default_config().by_name(&s, "c").unwrap())
            );
            assert_eq!(c.by_name(&s, "d"), Some(Value::Choice(1)));
        }
    }

    #[test]
    fn mutate_changes_at_most_n_parameters() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(23);
        let base = s.default_config();
        let m = s.mutate(&base, 1, &mut rng);
        assert!(m.diff_indices(&base).len() <= 1);
    }

    #[test]
    fn census_counts() {
        let s = space();
        let c = s.census();
        assert_eq!(c.runtime, 2);
        assert_eq!(c.boot, 1);
        assert_eq!(c.compile_tristate, 1);
        assert_eq!(c.total(), 4);
    }

    #[test]
    fn cardinality_is_log_sum() {
        let s = space();
        // 2 * 1e6 * 3 * 3 = 1.8e7 -> log10 ~ 7.25.
        let lg = s.log10_cardinality();
        assert!((lg - 7.255).abs() < 0.01, "lg={lg}");
    }

    #[test]
    fn subset_preserves_specs() {
        let s = space();
        let sub = s.subset(&["b", "missing", "d"]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.spec(0).name, "b");
        assert_eq!(sub.spec(1).name, "d");
    }
}
