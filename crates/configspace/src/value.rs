//! Parameter values and the Kconfig tristate.

use std::fmt;

/// Kconfig tristate value: `n` (absent), `m` (module), `y` (built-in).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Tristate {
    /// Feature disabled.
    No,
    /// Feature compiled as a loadable module.
    Module,
    /// Feature built into the kernel image.
    Yes,
}

impl Tristate {
    /// All tristate values, ordered `n < m < y` like Kconfig.
    pub const ALL: [Tristate; 3] = [Tristate::No, Tristate::Module, Tristate::Yes];

    /// Kconfig boolean AND: the minimum of the two values.
    pub fn and(self, other: Tristate) -> Tristate {
        self.min(other)
    }

    /// Kconfig boolean OR: the maximum of the two values.
    pub fn or(self, other: Tristate) -> Tristate {
        self.max(other)
    }

    /// Kconfig negation: `!y = n`, `!n = y`, `!m = m`.
    // Not `impl std::ops::Not`: Kconfig negation fixes `m`, which would be
    // misleading behind the `!` operator.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Tristate {
        match self {
            Tristate::No => Tristate::Yes,
            Tristate::Module => Tristate::Module,
            Tristate::Yes => Tristate::No,
        }
    }

    /// Returns `true` if the feature is present in any form (`m` or `y`).
    pub fn enabled(self) -> bool {
        self != Tristate::No
    }

    /// Numeric level used by feature encoding: n=0, m=1, y=2.
    pub fn level(self) -> usize {
        match self {
            Tristate::No => 0,
            Tristate::Module => 1,
            Tristate::Yes => 2,
        }
    }

    /// Parses the single-letter Kconfig form.
    pub fn parse(s: &str) -> Option<Tristate> {
        match s {
            "n" | "N" => Some(Tristate::No),
            "m" | "M" => Some(Tristate::Module),
            "y" | "Y" => Some(Tristate::Yes),
            _ => None,
        }
    }
}

impl fmt::Display for Tristate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Tristate::No => 'n',
            Tristate::Module => 'm',
            Tristate::Yes => 'y',
        };
        write!(f, "{c}")
    }
}

/// The value assigned to one parameter in a configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Value {
    /// Boolean on/off.
    Bool(bool),
    /// Kconfig tristate.
    Tristate(Tristate),
    /// Integer (also used for `hex` parameters).
    Int(i64),
    /// Index into an enum parameter's choice list.
    Choice(usize),
}

impl Value {
    /// Returns the boolean payload if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the tristate payload if this is a `Tristate`.
    pub fn as_tristate(&self) -> Option<Tristate> {
        match self {
            Value::Tristate(t) => Some(*t),
            _ => None,
        }
    }

    /// Returns the integer payload if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the choice index if this is a `Choice`.
    pub fn as_choice(&self) -> Option<usize> {
        match self {
            Value::Choice(i) => Some(*i),
            _ => None,
        }
    }

    /// A coarse numeric view used by effect models: booleans map to 0/1,
    /// tristates to their level, integers to themselves, choices to their
    /// index.
    pub fn as_f64(&self) -> f64 {
        match self {
            Value::Bool(b) => *b as u8 as f64,
            Value::Tristate(t) => t.level() as f64,
            Value::Int(v) => *v as f64,
            Value::Choice(i) => *i as f64,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{}", if *b { 1 } else { 0 }),
            Value::Tristate(t) => write!(f, "{t}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Choice(i) => write!(f, "#{i}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tristate_logic_matches_kconfig() {
        use Tristate::*;
        assert_eq!(Yes.and(Module), Module);
        assert_eq!(Yes.and(No), No);
        assert_eq!(No.or(Module), Module);
        assert_eq!(Module.or(Yes), Yes);
        assert_eq!(Yes.not(), No);
        assert_eq!(No.not(), Yes);
        assert_eq!(Module.not(), Module);
    }

    #[test]
    fn tristate_ordering() {
        assert!(Tristate::No < Tristate::Module);
        assert!(Tristate::Module < Tristate::Yes);
    }

    #[test]
    fn tristate_parse_roundtrip() {
        for t in Tristate::ALL {
            assert_eq!(Tristate::parse(&t.to_string()), Some(t));
        }
        assert_eq!(Tristate::parse("x"), None);
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Choice(2).as_choice(), Some(2));
        assert_eq!(Value::Bool(true).as_int(), None);
    }

    #[test]
    fn value_numeric_view() {
        assert_eq!(Value::Bool(true).as_f64(), 1.0);
        assert_eq!(Value::Tristate(Tristate::Yes).as_f64(), 2.0);
        assert_eq!(Value::Int(-5).as_f64(), -5.0);
    }
}
