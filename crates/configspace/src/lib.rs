//! `wf-configspace`: the typed OS configuration-space model.
//!
//! The Wayfinder paper (§2.1, §3.4) treats an OS configuration as a vector
//! of typed parameters spanning three stages — compile-time (Kconfig
//! symbols), boot-time (kernel command line), and runtime (writable files
//! under `/proc/sys` and `/sys`). This crate provides:
//!
//! * [`param`]: parameter kinds (`bool`, `tristate`, `int`, `hex`, `enum`)
//!   and stages;
//! * [`value`]: assigned values, including the Kconfig [`value::Tristate`];
//! * [`config`]: complete assignments, stage-level diffs (which power the
//!   platform's rebuild-skip optimization), and name-resolved views;
//! * [`space`]: the parameter collection with uniform / log-uniform /
//!   stage-focused sampling, mutation, pinning (§3.5 constrained search),
//!   and the Table 1 census;
//! * [`encoding`]: the dense feature representation shared by DeepTune, the
//!   Gaussian-process baseline, the causal baseline, and the random forest;
//! * [`distance`]: Eq. 2's dissimilarity and supporting metrics.

pub mod config;
pub mod distance;
pub mod encoding;
pub mod param;
pub mod space;
pub mod value;

pub use config::{Configuration, NamedConfig};
pub use encoding::Encoder;
pub use param::{ParamKind, ParamSpec, Stage};
pub use space::{ConfigSpace, SpaceCensus};
pub use value::{Tristate, Value};
