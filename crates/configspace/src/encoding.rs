//! Feature encoding of configurations for the learning components.
//!
//! Configurations are mapped to fixed-width `f64` vectors:
//!
//! * `bool` → one dimension in {0, 1};
//! * `tristate` → three-way one-hot (n/m/y);
//! * `int`/`hex` → one dimension scaled to [0, 1], logarithmically when the
//!   parameter is log-scaled;
//! * `enum` → one-hot over its choices.
//!
//! The encoding is the shared representation used by the DeepTune Model, the
//! Gaussian-process baseline, the causal baseline, and the random forest, so
//! it lives here in the config-space crate.

use crate::config::Configuration;
use crate::param::ParamKind;
use crate::space::ConfigSpace;
use crate::value::Value;

/// Encoder from [`Configuration`]s to dense feature vectors.
#[derive(Clone, Debug)]
pub struct Encoder {
    widths: Vec<usize>,
    offsets: Vec<usize>,
    dim: usize,
}

impl Encoder {
    /// Builds an encoder for the given space.
    pub fn new(space: &ConfigSpace) -> Self {
        let widths: Vec<usize> = space
            .specs()
            .iter()
            .map(|p| p.kind.encoded_width())
            .collect();
        let mut offsets = Vec::with_capacity(widths.len());
        let mut acc = 0;
        for w in &widths {
            offsets.push(acc);
            acc += w;
        }
        Self {
            widths,
            offsets,
            dim: acc,
        }
    }

    /// Total feature dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The feature offset of parameter `idx`.
    pub fn offset(&self, idx: usize) -> usize {
        self.offsets[idx]
    }

    /// The feature width of parameter `idx`.
    pub fn width(&self, idx: usize) -> usize {
        self.widths[idx]
    }

    /// Maps a feature dimension back to the index of the parameter that owns
    /// it (used to aggregate per-feature importances per parameter).
    pub fn param_of_feature(&self, feature: usize) -> usize {
        debug_assert!(feature < self.dim);
        match self.offsets.binary_search(&feature) {
            Ok(i) => i,
            Err(i) => i - 1,
        }
    }

    /// Encodes a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration length does not match the space.
    pub fn encode(&self, space: &ConfigSpace, config: &Configuration) -> Vec<f64> {
        assert_eq!(config.len(), space.len(), "config/space length mismatch");
        let mut out = vec![0.0; self.dim];
        for i in 0..space.len() {
            let off = self.offsets[i];
            match (&space.spec(i).kind, config.get(i)) {
                (ParamKind::Bool, Value::Bool(b)) => out[off] = b as u8 as f64,
                (ParamKind::Tristate, Value::Tristate(t)) => out[off + t.level()] = 1.0,
                (
                    ParamKind::Int {
                        min,
                        max,
                        log_scale,
                    },
                    Value::Int(v),
                ) => out[off] = scale_int(*min, *max, *log_scale, v),
                (ParamKind::Hex { min, max }, Value::Int(v)) => {
                    out[off] = scale_int(*min, *max, false, v)
                }
                (ParamKind::Enum { choices }, Value::Choice(c)) => {
                    debug_assert!(c < choices.len());
                    out[off + c] = 1.0;
                }
                (kind, value) => {
                    panic!(
                        "value {value:?} does not match kind {kind:?} for {}",
                        space.spec(i).name
                    )
                }
            }
        }
        out
    }

    /// Encodes a batch of configurations into a row-per-config matrix shape
    /// `(configs.len(), dim)` flattened row-major.
    pub fn encode_batch(&self, space: &ConfigSpace, configs: &[Configuration]) -> Vec<f64> {
        let mut out = Vec::with_capacity(configs.len() * self.dim);
        for c in configs {
            out.extend(self.encode(space, c));
        }
        out
    }
}

fn scale_int(min: i64, max: i64, log_scale: bool, v: i64) -> f64 {
    if max == min {
        return 0.0;
    }
    let v = v.clamp(min, max);
    if log_scale && min >= 0 {
        let num = ((v - min) as f64 + 1.0).ln();
        let den = ((max - min) as f64 + 1.0).ln();
        num / den
    } else {
        (v - min) as f64 / (max - min) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::{ParamSpec, Stage};
    use crate::value::Tristate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> ConfigSpace {
        let mut s = ConfigSpace::new();
        s.add(ParamSpec::new("flag", ParamKind::Bool, Stage::Runtime));
        s.add(ParamSpec::new(
            "tri",
            ParamKind::Tristate,
            Stage::CompileTime,
        ));
        s.add(
            ParamSpec::new("size", ParamKind::log_int(0, 1023), Stage::Runtime)
                .with_default(Value::Int(0)),
        );
        s.add(ParamSpec::new(
            "mode",
            ParamKind::choices(vec!["a", "b"]),
            Stage::BootTime,
        ));
        s
    }

    #[test]
    fn dim_is_sum_of_widths() {
        let s = space();
        let e = Encoder::new(&s);
        assert_eq!(e.dim(), 1 + 3 + 1 + 2);
    }

    #[test]
    fn encode_default_config() {
        let s = space();
        let e = Encoder::new(&s);
        let v = e.encode(&s, &s.default_config());
        // flag=false, tri=n (one-hot position 0), size=0, mode=choice 0.
        assert_eq!(v, vec![0.0, 1.0, 0.0, 0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn encode_scales_log_ints_into_unit_interval() {
        let s = space();
        let e = Encoder::new(&s);
        let mut c = s.default_config();
        c.set_by_name(&s, "size", Value::Int(1023));
        let v = e.encode(&s, &c);
        let size_feature = v[e.offset(s.index_of("size").unwrap())];
        assert!((size_feature - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tristate_one_hot() {
        let s = space();
        let e = Encoder::new(&s);
        let mut c = s.default_config();
        c.set_by_name(&s, "tri", Value::Tristate(Tristate::Module));
        let v = e.encode(&s, &c);
        let off = e.offset(s.index_of("tri").unwrap());
        assert_eq!(&v[off..off + 3], &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn features_always_in_unit_interval() {
        let s = space();
        let e = Encoder::new(&s);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let c = s.sample(&mut rng);
            for f in e.encode(&s, &c) {
                assert!((0.0..=1.0).contains(&f), "feature {f} out of range");
            }
        }
    }

    #[test]
    fn param_of_feature_inverts_offsets() {
        let s = space();
        let e = Encoder::new(&s);
        for p in 0..s.len() {
            for w in 0..e.width(p) {
                assert_eq!(e.param_of_feature(e.offset(p) + w), p);
            }
        }
    }

    #[test]
    fn encode_batch_is_row_major() {
        let s = space();
        let e = Encoder::new(&s);
        let c = s.default_config();
        let batch = e.encode_batch(&s, &[c.clone(), c.clone()]);
        assert_eq!(batch.len(), 2 * e.dim());
        assert_eq!(&batch[..e.dim()], &batch[e.dim()..]);
    }
}
