//! Distances and the dissimilarity measure of the scoring function (Eq. 2).

/// Squared Euclidean distance between two feature vectors.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn sq_euclidean(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Squared distance from `x` to its nearest neighbor among `known` rows.
///
/// `known` is a row-major flattened matrix with rows of length `x.len()`.
/// Returns `f64::INFINITY` when `known` is empty.
pub fn nearest_sq_dist(x: &[f64], known: &[Vec<f64>]) -> f64 {
    known
        .iter()
        .map(|k| sq_euclidean(x, k))
        .fold(f64::INFINITY, f64::min)
}

/// Dissimilarity of a candidate to the set of explored samples, Eq. 2 of the
/// paper:
///
/// `ds(x, X) = 1 - 1 / (1 + ||x - X||_2^2)`
///
/// where `||x - X||` is interpreted as the distance from `x` to its nearest
/// explored sample. The result lies in [0, 1): 0 when `x` coincides with a
/// known sample and approaching 1 for remote candidates. An empty history
/// yields the maximal dissimilarity 1.
pub fn dissimilarity(x: &[f64], known: &[Vec<f64>]) -> f64 {
    if known.is_empty() {
        return 1.0;
    }
    let d2 = nearest_sq_dist(x, known);
    1.0 - 1.0 / (1.0 + d2)
}

/// Cosine similarity between two vectors; 0 when either norm vanishes.
pub fn cosine_similarity(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    let dot: f64 = a.iter().zip(b.iter()).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na < 1e-12 || nb < 1e-12 {
        0.0
    } else {
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sq_euclidean_known() {
        assert_eq!(sq_euclidean(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(sq_euclidean(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn nearest_picks_minimum() {
        let known = vec![vec![0.0, 0.0], vec![10.0, 10.0]];
        assert_eq!(nearest_sq_dist(&[1.0, 0.0], &known), 1.0);
    }

    #[test]
    fn nearest_of_empty_is_infinite() {
        assert_eq!(nearest_sq_dist(&[1.0], &[]), f64::INFINITY);
    }

    #[test]
    fn dissimilarity_bounds() {
        let known = vec![vec![0.0, 0.0]];
        // Identical sample: ds = 0.
        assert_eq!(dissimilarity(&[0.0, 0.0], &known), 0.0);
        // Remote sample: ds approaches 1.
        let far = dissimilarity(&[100.0, 100.0], &known);
        assert!(far > 0.999 && far < 1.0);
        // Empty history: maximal.
        assert_eq!(dissimilarity(&[0.0, 0.0], &[]), 1.0);
    }

    #[test]
    fn dissimilarity_monotone_in_distance() {
        let known = vec![vec![0.0]];
        let near = dissimilarity(&[0.5], &known);
        let far = dissimilarity(&[2.0], &known);
        assert!(far > near);
    }

    #[test]
    fn cosine_similarity_cases() {
        assert!((cosine_similarity(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-12);
        assert!((cosine_similarity(&[1.0, 1.0], &[-1.0, -1.0]) + 1.0).abs() < 1e-12);
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }
}
