//! Configurations: complete assignments of values to a space's parameters.

use crate::param::Stage;
use crate::space::ConfigSpace;
use crate::value::Value;
use std::collections::HashMap;

/// A complete assignment of one [`Value`] per parameter of a
/// [`ConfigSpace`], stored positionally.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Configuration {
    values: Vec<Value>,
}

impl Configuration {
    /// Creates a configuration from positional values.
    ///
    /// Prefer [`ConfigSpace::default_config`] / sampling helpers, which
    /// guarantee domain validity.
    pub fn from_values(values: Vec<Value>) -> Self {
        Self { values }
    }

    /// Number of assigned parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` for the empty configuration.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Positional access.
    pub fn get(&self, idx: usize) -> Value {
        self.values[idx]
    }

    /// Positional mutation.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn set(&mut self, idx: usize, value: Value) {
        self.values[idx] = value;
    }

    /// All values in parameter order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Looks a value up by parameter name within `space`.
    pub fn by_name(&self, space: &ConfigSpace, name: &str) -> Option<Value> {
        space.index_of(name).map(|i| self.values[i])
    }

    /// Sets a value by parameter name; returns `false` if the name is
    /// unknown or the value is outside the parameter's domain.
    pub fn set_by_name(&mut self, space: &ConfigSpace, name: &str, value: Value) -> bool {
        match space.index_of(name) {
            Some(i) if space.spec(i).kind.admits(&value) => {
                self.values[i] = value;
                true
            }
            _ => false,
        }
    }

    /// A stable 64-bit hash (FNV-1a over the value stream), used as an image
    /// cache key by the platform.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x1000_0000_01b3);
        };
        for v in &self.values {
            match v {
                Value::Bool(b) => {
                    mix(1);
                    mix(*b as u64);
                }
                Value::Tristate(t) => {
                    mix(2);
                    mix(t.level() as u64);
                }
                Value::Int(i) => {
                    mix(3);
                    mix(*i as u64);
                }
                Value::Choice(c) => {
                    mix(4);
                    mix(*c as u64);
                }
            }
        }
        h
    }

    /// Fingerprint restricted to parameters of the given stages; two configs
    /// with equal compile-time fingerprints can share a built image.
    pub fn stage_fingerprint(&self, space: &ConfigSpace, stages: &[Stage]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x1000_0000_01b3);
        };
        for (i, v) in self.values.iter().enumerate() {
            if !stages.contains(&space.spec(i).stage) {
                continue;
            }
            mix(i as u64);
            match v {
                Value::Bool(b) => mix(*b as u64 | 0x10),
                Value::Tristate(t) => mix(t.level() as u64 | 0x20),
                Value::Int(x) => mix(*x as u64 ^ 0x30),
                Value::Choice(c) => mix(*c as u64 | 0x40),
            }
        }
        h
    }

    /// The set of stages on which `self` and `other` differ. The platform
    /// uses this to skip rebuilds when only runtime parameters changed
    /// (§3.1).
    pub fn changed_stages(&self, other: &Configuration, space: &ConfigSpace) -> Vec<Stage> {
        let mut changed = Vec::new();
        for (i, (a, b)) in self.values.iter().zip(other.values.iter()).enumerate() {
            if a != b {
                let st = space.spec(i).stage;
                if !changed.contains(&st) {
                    changed.push(st);
                }
            }
        }
        changed.sort();
        changed
    }

    /// Indices of parameters whose values differ from `other`.
    pub fn diff_indices(&self, other: &Configuration) -> Vec<usize> {
        self.values
            .iter()
            .zip(other.values.iter())
            .enumerate()
            .filter_map(|(i, (a, b))| (a != b).then_some(i))
            .collect()
    }

    /// Materializes a name → value map (the view the simulated OS consumes).
    pub fn named(&self, space: &ConfigSpace) -> NamedConfig {
        let mut map = HashMap::with_capacity(self.values.len());
        for (i, v) in self.values.iter().enumerate() {
            map.insert(space.spec(i).name.clone(), *v);
        }
        NamedConfig { map }
    }
}

/// A resolved name → value view of a configuration.
///
/// The simulated OS substrate consumes this form so that it stays decoupled
/// from positional parameter indices: a search may only cover a *subset* of
/// the OS's parameters, in which case lookups for uncovered names return
/// `None` and the OS falls back to its defaults.
#[derive(Clone, Debug, Default)]
pub struct NamedConfig {
    map: HashMap<String, Value>,
}

impl NamedConfig {
    /// Creates an empty view (every lookup misses — pure OS defaults).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Creates a view from explicit pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (String, Value)>) -> Self {
        Self {
            map: pairs.into_iter().collect(),
        }
    }

    /// Number of assigned names.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` if no names are assigned.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up a value.
    pub fn get(&self, name: &str) -> Option<Value> {
        self.map.get(name).copied()
    }

    /// Integer view with fallback.
    pub fn int_or(&self, name: &str, default: i64) -> i64 {
        self.get(name).and_then(|v| v.as_int()).unwrap_or(default)
    }

    /// Boolean view with fallback. Integer values are interpreted as
    /// booleans the way sysctl does (non-zero = true).
    pub fn bool_or(&self, name: &str, default: bool) -> bool {
        match self.get(name) {
            Some(Value::Bool(b)) => b,
            Some(Value::Int(i)) => i != 0,
            Some(Value::Tristate(t)) => t.enabled(),
            Some(Value::Choice(_)) | None => default,
        }
    }

    /// Choice-index view with fallback.
    pub fn choice_or(&self, name: &str, default: usize) -> usize {
        self.get(name)
            .and_then(|v| v.as_choice())
            .unwrap_or(default)
    }

    /// Inserts or replaces a value.
    pub fn set(&mut self, name: impl Into<String>, value: Value) {
        self.map.insert(name.into(), value);
    }

    /// Iterates over all `(name, value)` pairs in sorted name order.
    ///
    /// The backing store is a `HashMap`, whose iteration order varies
    /// with hasher seeding and insertion history; sorting here keeps
    /// every consumer that renders or hashes the pairs (reports,
    /// fingerprints, event logs) deterministic by construction.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Value)> {
        let mut pairs: Vec<(&str, Value)> =
            self.map.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        pairs.sort_unstable_by(|a, b| a.0.cmp(b.0));
        pairs.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::{ParamKind, ParamSpec};
    use crate::value::Tristate;

    fn small_space() -> ConfigSpace {
        let mut s = ConfigSpace::new();
        s.add(
            ParamSpec::new("CONFIG_FOO", ParamKind::Tristate, Stage::CompileTime)
                .with_default(Value::Tristate(Tristate::Yes)),
        );
        s.add(
            ParamSpec::new("quiet", ParamKind::Bool, Stage::BootTime)
                .with_default(Value::Bool(false)),
        );
        s.add(
            ParamSpec::new(
                "net.core.somaxconn",
                ParamKind::log_int(16, 65535),
                Stage::Runtime,
            )
            .with_default(Value::Int(128)),
        );
        s
    }

    #[test]
    fn by_name_lookup() {
        let s = small_space();
        let c = s.default_config();
        assert_eq!(c.by_name(&s, "quiet"), Some(Value::Bool(false)));
        assert_eq!(c.by_name(&s, "nope"), None);
    }

    #[test]
    fn set_by_name_respects_domain() {
        let s = small_space();
        let mut c = s.default_config();
        assert!(c.set_by_name(&s, "net.core.somaxconn", Value::Int(1024)));
        assert!(!c.set_by_name(&s, "net.core.somaxconn", Value::Int(1)));
        assert!(!c.set_by_name(&s, "missing", Value::Int(1)));
        assert_eq!(c.by_name(&s, "net.core.somaxconn"), Some(Value::Int(1024)));
    }

    #[test]
    fn fingerprint_changes_with_values() {
        let s = small_space();
        let a = s.default_config();
        let mut b = a.clone();
        b.set_by_name(&s, "quiet", Value::Bool(true));
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn stage_fingerprint_ignores_other_stages() {
        let s = small_space();
        let a = s.default_config();
        let mut b = a.clone();
        b.set_by_name(&s, "net.core.somaxconn", Value::Int(4096));
        let compile_only = [Stage::CompileTime, Stage::BootTime];
        assert_eq!(
            a.stage_fingerprint(&s, &compile_only),
            b.stage_fingerprint(&s, &compile_only)
        );
        assert_ne!(
            a.stage_fingerprint(&s, &[Stage::Runtime]),
            b.stage_fingerprint(&s, &[Stage::Runtime])
        );
    }

    #[test]
    fn changed_stages_reports_runtime_only_change() {
        let s = small_space();
        let a = s.default_config();
        let mut b = a.clone();
        b.set_by_name(&s, "net.core.somaxconn", Value::Int(999));
        assert_eq!(a.changed_stages(&b, &s), vec![Stage::Runtime]);
        assert_eq!(a.changed_stages(&a.clone(), &s), Vec::<Stage>::new());
    }

    #[test]
    fn named_view_and_fallbacks() {
        let s = small_space();
        let c = s.default_config();
        let n = c.named(&s);
        assert_eq!(n.int_or("net.core.somaxconn", 0), 128);
        assert_eq!(n.int_or("unknown", 42), 42);
        assert!(!n.bool_or("quiet", true));
        assert!(n.bool_or("unknown", true));
    }

    #[test]
    fn named_iter_is_sorted_and_insertion_order_invariant() {
        // Two opposite insertion orders must iterate identically: the
        // HashMap behind NamedConfig must never leak its order.
        let names = ["zeta", "alpha", "net.core.somaxconn", "mid", "beta"];
        let mut fwd = NamedConfig::empty();
        for (i, n) in names.iter().enumerate() {
            fwd.set(*n, Value::Int(i as i64));
        }
        let mut rev = NamedConfig::empty();
        for (i, n) in names.iter().enumerate().rev() {
            rev.set(*n, Value::Int(i as i64));
        }
        let a: Vec<(String, Value)> = fwd.iter().map(|(k, v)| (k.to_string(), v)).collect();
        let b: Vec<(String, Value)> = rev.iter().map(|(k, v)| (k.to_string(), v)).collect();
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_by(|x, y| x.0.cmp(&y.0));
        assert_eq!(a, sorted, "iter() must yield sorted key order");
    }

    #[test]
    fn named_bool_coercion_from_int() {
        let mut n = NamedConfig::empty();
        n.set("flag", Value::Int(7));
        assert!(n.bool_or("flag", false));
        n.set("flag", Value::Int(0));
        assert!(!n.bool_or("flag", true));
    }
}
