//! Parameter specifications: kinds, stages, and metadata.

use crate::value::{Tristate, Value};
use std::fmt;

/// When a configuration parameter takes effect (§2.1 of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Stage {
    /// Compile-time option (Kconfig symbol).
    CompileTime,
    /// Boot-time option (kernel command-line parameter).
    BootTime,
    /// Runtime option (writable file under /proc/sys or /sys).
    Runtime,
}

impl Stage {
    /// All stages in a stable order.
    pub const ALL: [Stage; 3] = [Stage::CompileTime, Stage::BootTime, Stage::Runtime];
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Stage::CompileTime => "compile-time",
            Stage::BootTime => "boot-time",
            Stage::Runtime => "runtime",
        };
        f.write_str(s)
    }
}

/// The type and domain of a parameter.
#[derive(Clone, Debug, PartialEq)]
pub enum ParamKind {
    /// Two-valued option.
    Bool,
    /// Kconfig tristate: built-in (`y`), module (`m`), or absent (`n`).
    Tristate,
    /// Integer with an inclusive range. `log_scale` requests log-uniform
    /// sampling and logarithmic feature encoding, which suits parameters
    /// whose plausible values span several orders of magnitude (buffer
    /// sizes, backlog lengths, ...).
    Int {
        /// Smallest valid value.
        min: i64,
        /// Largest valid value.
        max: i64,
        /// Sample and encode on a log axis.
        log_scale: bool,
    },
    /// Hexadecimal integer (Kconfig `hex`); behaves like `Int` but is
    /// rendered in hexadecimal.
    Hex {
        /// Smallest valid value.
        min: i64,
        /// Largest valid value.
        max: i64,
    },
    /// Categorical parameter with a fixed set of string values. Kconfig
    /// `string` options with automatically extractable values are mapped
    /// here; per §3.4 values beyond the extracted set are not explored.
    Enum {
        /// The candidate values, in a stable order.
        choices: Vec<String>,
    },
}

impl ParamKind {
    /// Creates a linear integer kind.
    pub fn int(min: i64, max: i64) -> Self {
        assert!(min <= max, "empty integer range");
        ParamKind::Int {
            min,
            max,
            log_scale: false,
        }
    }

    /// Creates a log-scaled integer kind.
    ///
    /// # Panics
    ///
    /// Panics if `min < 0` (log scale requires a non-negative domain).
    pub fn log_int(min: i64, max: i64) -> Self {
        assert!(min <= max, "empty integer range");
        assert!(min >= 0, "log-scaled ranges must be non-negative");
        ParamKind::Int {
            min,
            max,
            log_scale: true,
        }
    }

    /// Creates an enum kind from string choices.
    ///
    /// # Panics
    ///
    /// Panics if `choices` is empty.
    pub fn choices<S: Into<String>>(choices: Vec<S>) -> Self {
        let choices: Vec<String> = choices.into_iter().map(Into::into).collect();
        assert!(!choices.is_empty(), "enum needs at least one choice");
        ParamKind::Enum { choices }
    }

    /// Number of scalar feature dimensions this kind contributes to the
    /// encoded representation.
    pub fn encoded_width(&self) -> usize {
        match self {
            ParamKind::Bool => 1,
            ParamKind::Tristate => 3,
            ParamKind::Int { .. } | ParamKind::Hex { .. } => 1,
            ParamKind::Enum { choices } => choices.len(),
        }
    }

    /// Number of distinct values (None when practically unbounded is not
    /// possible here: integer ranges are always finite).
    pub fn cardinality(&self) -> u128 {
        match self {
            ParamKind::Bool => 2,
            ParamKind::Tristate => 3,
            ParamKind::Int { min, max, .. } | ParamKind::Hex { min, max } => {
                (*max as i128 - *min as i128 + 1) as u128
            }
            ParamKind::Enum { choices } => choices.len() as u128,
        }
    }

    /// Returns `true` if `value` lies in this kind's domain.
    pub fn admits(&self, value: &Value) -> bool {
        match (self, value) {
            (ParamKind::Bool, Value::Bool(_)) => true,
            (ParamKind::Tristate, Value::Tristate(_)) => true,
            (ParamKind::Int { min, max, .. }, Value::Int(v))
            | (ParamKind::Hex { min, max }, Value::Int(v)) => *v >= *min && *v <= *max,
            (ParamKind::Enum { choices }, Value::Choice(i)) => *i < choices.len(),
            _ => false,
        }
    }

    /// A canonical default for this kind, used when no explicit default is
    /// supplied.
    pub fn canonical_default(&self) -> Value {
        match self {
            ParamKind::Bool => Value::Bool(false),
            ParamKind::Tristate => Value::Tristate(Tristate::No),
            ParamKind::Int { min, .. } | ParamKind::Hex { min, .. } => Value::Int(*min),
            ParamKind::Enum { .. } => Value::Choice(0),
        }
    }
}

/// A fully described configuration parameter.
#[derive(Clone, Debug, PartialEq)]
pub struct ParamSpec {
    /// Canonical parameter name (e.g. `net.core.somaxconn`, `CONFIG_SMP`).
    pub name: String,
    /// Type and domain.
    pub kind: ParamKind,
    /// When the parameter takes effect.
    pub stage: Stage,
    /// Default value (must be admitted by `kind`).
    pub default: Value,
    /// Free-form documentation (often empty for real kernels, cf. §2.1).
    pub doc: String,
    /// Fixed parameters are pinned to their default and never varied by the
    /// search (§3.5: security-critical options, user constraints).
    pub fixed: bool,
}

impl ParamSpec {
    /// Creates a parameter with the kind's canonical default.
    pub fn new(name: impl Into<String>, kind: ParamKind, stage: Stage) -> Self {
        let default = kind.canonical_default();
        Self {
            name: name.into(),
            kind,
            stage,
            default,
            doc: String::new(),
            fixed: false,
        }
    }

    /// Sets the default value.
    ///
    /// # Panics
    ///
    /// Panics if the value is outside the parameter's domain.
    pub fn with_default(mut self, default: Value) -> Self {
        assert!(
            self.kind.admits(&default),
            "default {default:?} not admitted by {:?} for {}",
            self.kind,
            self.name
        );
        self.default = default;
        self
    }

    /// Attaches documentation.
    pub fn with_doc(mut self, doc: impl Into<String>) -> Self {
        self.doc = doc.into();
        self
    }

    /// Pins the parameter to its default.
    pub fn pinned(mut self) -> Self {
        self.fixed = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoded_widths() {
        assert_eq!(ParamKind::Bool.encoded_width(), 1);
        assert_eq!(ParamKind::Tristate.encoded_width(), 3);
        assert_eq!(ParamKind::int(0, 10).encoded_width(), 1);
        assert_eq!(ParamKind::choices(vec!["a", "b", "c"]).encoded_width(), 3);
    }

    #[test]
    fn admits_checks_domain() {
        let k = ParamKind::int(1, 5);
        assert!(k.admits(&Value::Int(3)));
        assert!(!k.admits(&Value::Int(0)));
        assert!(!k.admits(&Value::Bool(true)));
        let e = ParamKind::choices(vec!["x", "y"]);
        assert!(e.admits(&Value::Choice(1)));
        assert!(!e.admits(&Value::Choice(2)));
    }

    #[test]
    fn cardinality() {
        assert_eq!(ParamKind::Bool.cardinality(), 2);
        assert_eq!(ParamKind::int(0, 9).cardinality(), 10);
        assert_eq!(ParamKind::Tristate.cardinality(), 3);
    }

    #[test]
    #[should_panic(expected = "log-scaled ranges must be non-negative")]
    fn log_int_rejects_negative_min() {
        let _ = ParamKind::log_int(-1, 10);
    }

    #[test]
    #[should_panic(expected = "not admitted")]
    fn with_default_rejects_out_of_domain() {
        let _ =
            ParamSpec::new("x", ParamKind::int(0, 1), Stage::Runtime).with_default(Value::Int(9));
    }

    #[test]
    fn pinned_sets_fixed() {
        let p = ParamSpec::new("x", ParamKind::Bool, Stage::Runtime).pinned();
        assert!(p.fixed);
    }
}
