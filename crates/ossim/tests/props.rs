//! Property tests on the simulator's ground-truth invariants.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;
use wf_kconfig::LinuxVersion;
use wf_ossim::apps::{App, AppId};
use wf_ossim::perfmodel::first_crash;
use wf_ossim::sim::SimOs;
use wf_ossim::SysctlTree;

/// The RISC-V target synthesizes a 20k-symbol kernel; build it once.
fn riscv() -> &'static SimOs {
    static OS: OnceLock<SimOs> = OnceLock::new();
    OS.get_or_init(SimOs::linux_riscv_footprint)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn perf_factors_are_finite_and_positive(seed in any::<u64>()) {
        let os = SimOs::linux_runtime(LinuxVersion::V4_19, 64);
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = os.space.sample(&mut rng);
        let view = cfg.named(&os.space);
        for id in AppId::ALL {
            let app = App::by_id(id);
            let f = app.perf.mean_factor(&view, &os.defaults_view);
            prop_assert!(f.is_finite() && f > 0.0, "{id}: factor {f}");
            prop_assert!(f < 10.0, "{id}: implausible factor {f}");
        }
    }

    #[test]
    fn crashing_is_deterministic_per_configuration(seed in any::<u64>()) {
        let os = SimOs::linux_runtime(LinuxVersion::V4_19, 64);
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = os.space.sample(&mut rng);
        let view = cfg.named(&os.space);
        let a = first_crash(&os.crash_rules, &view, &os.defaults_view).map(|r| r.name.clone());
        let b = first_crash(&os.crash_rules, &view, &os.defaults_view).map(|r| r.name.clone());
        prop_assert_eq!(a.clone(), b);
        // And the full evaluation agrees with the rules.
        let app = App::by_id(AppId::Redis);
        let e = os.evaluate(&app, &cfg, None, &mut rng);
        prop_assert_eq!(e.outcome.is_err(), a.is_some());
    }

    #[test]
    fn accepted_sysctl_writes_read_back(seed in any::<u64>()) {
        let os = SimOs::linux_runtime(LinuxVersion::V4_19, 64);
        let mut tree = SysctlTree::from_space(&os.space);
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = os.space.sample(&mut rng);
        let view = cfg.named(&os.space);
        let rejected = tree.apply(&view);
        prop_assert!(rejected.is_empty(), "in-space values are always valid");
        // Every value applied is readable and matches.
        for (name, value) in view.iter() {
            if let Some(text) = tree.read(name) {
                let snap = tree.snapshot();
                prop_assert_eq!(snap.get(name), Some(value));
                prop_assert!(!text.is_empty());
            }
        }
    }

    #[test]
    fn evaluation_time_is_always_charged(seed in any::<u64>()) {
        let os = SimOs::linux_runtime(LinuxVersion::V4_19, 64);
        let app = App::by_id(AppId::Nginx);
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = os.space.sample(&mut rng);
        let e = os.evaluate(&app, &cfg, None, &mut rng);
        prop_assert!(e.total_s() > 0.0, "even crashes cost time");
        prop_assert!(e.total_s() < 600.0, "implausible duration {}", e.total_s());
    }

    #[test]
    fn footprint_shrinks_when_options_are_disabled(seed in any::<u64>()) {
        let os = riscv();
        let mut rng = StdRng::seed_from_u64(seed);
        let base = os.space.default_config();
        // Disable one random enabled, non-fixed bool option.
        use wf_configspace::Value;
        use rand::Rng;
        let enabled: Vec<usize> = (0..os.space.len())
            .filter(|&i| {
                !os.space.spec(i).fixed && base.get(i) == Value::Bool(true)
            })
            .collect();
        prop_assume!(!enabled.is_empty());
        let pick = enabled[rng.random_range(0..enabled.len())];
        let mut smaller = base.clone();
        smaller.set(pick, Value::Bool(false));
        let fp_base = os.footprint.footprint_mb(&os.space, &base);
        let fp_small = os.footprint.footprint_mb(&os.space, &smaller);
        prop_assert!(fp_small < fp_base, "disabling {} grew the image", os.space.spec(pick).name);
    }
}
