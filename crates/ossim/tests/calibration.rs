//! Calibration suite: pins the ground-truth models to the paper's numbers
//! (DESIGN.md §5). If a model change bends an experiment's shape, these
//! tests fail instead of the figures silently drifting.

use rand::rngs::StdRng;
use rand::SeedableRng;
use wf_configspace::{Configuration, Value};
use wf_kconfig::LinuxVersion;
use wf_ossim::apps::{App, AppId};
use wf_ossim::perfmodel::first_crash;
use wf_ossim::sim::SimOs;
use wf_ossim::unikraft;

/// Samples `n` crash-free random configurations like the Fig. 2 setup
/// ("when one fails ... we re-generate until we obtain a valid one").
fn valid_samples(os: &SimOs, n: usize, rng: &mut StdRng) -> Vec<Configuration> {
    let mut out = Vec::with_capacity(n);
    let mut guard = 0;
    while out.len() < n {
        guard += 1;
        assert!(guard < n * 20, "crash rate implausibly high");
        let c = os.space.sample(rng);
        if first_crash(&os.crash_rules, &c.named(&os.space), &os.defaults_view).is_none() {
            out.push(c);
        }
    }
    out
}

#[test]
fn fig2_random_nginx_shape() {
    let os = SimOs::linux_runtime(LinuxVersion::V4_19, 200);
    let app = App::by_id(AppId::Nginx);
    let mut rng = StdRng::seed_from_u64(2);
    let configs = valid_samples(&os, 800, &mut rng);
    let factors: Vec<f64> = configs
        .iter()
        .map(|c| app.perf.mean_factor(&c.named(&os.space), &os.defaults_view))
        .collect();
    let best = factors.iter().cloned().fold(f64::MIN, f64::max);
    let below = factors.iter().filter(|f| **f < 1.0).count() as f64 / factors.len() as f64;
    let worst = factors.iter().cloned().fold(f64::MAX, f64::min);
    // Paper: best random ≈ +12%, 64% below default, span ~10K..18K req/s.
    assert!((1.05..=1.18).contains(&best), "best-of-800 factor {best}");
    assert!(
        (0.50..=0.78).contains(&below),
        "share below default {below}"
    );
    assert!(worst > 0.45 && worst < 0.95, "worst factor {worst}");
}

#[test]
fn table2_headrooms() {
    let os = SimOs::linux_runtime(LinuxVersion::V4_19, 200);
    let bounds = [
        (AppId::Nginx, 1.24, 1.45),
        (AppId::Redis, 1.14, 1.32),
        (AppId::Sqlite, 0.995, 1.01),
        (AppId::Npb, 1.015, 1.05),
    ];
    for (id, lo, hi) in bounds {
        let app = App::by_id(id);
        let bound = app.perf.headroom_bound(&os.defaults_view);
        assert!(
            (lo..=hi).contains(&bound),
            "{id}: headroom bound {bound} outside [{lo}, {hi}]"
        );
    }
}

#[test]
fn crash_rate_on_evaluation_path() {
    // End-to-end crash rate through SimOs::evaluate (not just the rules).
    let os = SimOs::linux_runtime(LinuxVersion::V4_19, 200);
    let app = App::by_id(AppId::Redis);
    let mut rng = StdRng::seed_from_u64(3);
    let n = 400;
    let crashes = (0..n)
        .filter(|_| {
            let c = os.space.sample(&mut rng);
            os.evaluate(&app, &c, None, &mut rng).outcome.is_err()
        })
        .count();
    let rate = crashes as f64 / n as f64;
    assert!((0.26..=0.42).contains(&rate), "evaluate crash rate {rate}");
}

#[test]
fn fig8_evaluation_times_are_60_to_80_seconds() {
    let os = SimOs::linux_runtime(LinuxVersion::V4_19, 200);
    let mut rng = StdRng::seed_from_u64(4);
    for id in AppId::ALL {
        let app = App::by_id(id);
        let cfg = os.space.default_config();
        let n = 30;
        let mean: f64 = (0..n)
            .map(|_| os.evaluate(&app, &cfg, None, &mut rng).total_s())
            .sum::<f64>()
            / n as f64;
        assert!(
            (55.0..=85.0).contains(&mean),
            "{id}: mean evaluation time {mean}s outside Fig. 8's band"
        );
    }
}

#[test]
fn fig10_footprint_default_and_floor() {
    let os = SimOs::linux_riscv_footprint();
    let mut rng = StdRng::seed_from_u64(5);
    let default = os.space.default_config();
    let (img, _) = os.build(&default, None, None, &mut rng);
    let default_mb = img.expect("default builds").image_mb;
    assert!((default_mb - 210.0).abs() < 0.5, "default {default_mb} MB");

    // A debloated configuration: switch off every non-fixed, non-essential
    // bool/tristate option. The crash rules protect the essentials.
    let essentials = [
        "SYSFS",
        "PROC_FS",
        "VIRTIO_BLK",
        "VIRTIO_NET",
        "EPOLL",
        "FUTEX",
        "SHMEM",
    ];
    let mut floor_cfg = default.clone();
    for (i, spec) in os.space.specs().iter().enumerate() {
        if spec.fixed || essentials.contains(&spec.name.as_str()) {
            continue;
        }
        match floor_cfg.get(i) {
            Value::Bool(_) => floor_cfg.set(i, Value::Bool(false)),
            Value::Tristate(_) => floor_cfg.set(i, Value::Tristate(wf_configspace::Tristate::No)),
            _ => {}
        }
    }
    assert!(
        first_crash(
            &os.crash_rules,
            &floor_cfg.named(&os.space),
            &os.defaults_view
        )
        .is_none(),
        "the debloated floor must be viable"
    );
    let (img, _) = os.build(&floor_cfg, None, None, &mut rng);
    let floor_mb = img.expect("floor builds").image_mb;
    // Fig. 10 reaches 192 MB in 3 hours; the true floor sits below that
    // but well above zero (the calibrated base is immovable).
    assert!(
        (150.0..=192.0).contains(&floor_mb),
        "floor {floor_mb} MB outside the plausible band"
    );
}

#[test]
fn fig9_unikraft_default_and_peak() {
    let os = SimOs::unikraft_nginx();
    let app = unikraft::nginx_app();
    let mut rng = StdRng::seed_from_u64(6);
    let cfg = os.space.default_config();
    let e = os.evaluate(&app, &cfg, None, &mut rng);
    let base = e.outcome.unwrap().metric;
    assert!((8_500.0..11_500.0).contains(&base), "unikraft base {base}");
    let bound = app.perf.headroom_bound(&os.defaults_view);
    assert!((4.0..6.0).contains(&bound), "unikraft headroom {bound}");
}

#[test]
fn transfer_structure_network_apps_share_crash_rules() {
    // §3.3: crash rules are OS-level, so what a Redis-trained model learned
    // about crashes applies verbatim to Nginx. Verified structurally: the
    // rule set does not depend on the application.
    let os1 = SimOs::linux_runtime(LinuxVersion::V4_19, 200);
    let os2 = SimOs::linux_runtime(LinuxVersion::V4_19, 200);
    assert_eq!(os1.crash_rules.len(), os2.crash_rules.len());
    for (a, b) in os1.crash_rules.iter().zip(os2.crash_rules.iter()) {
        assert_eq!(a, b);
    }
}

#[test]
fn fig5_ground_truth_effect_overlap() {
    // The effect-parameter overlap that makes the Fig. 5 similarity matrix
    // come out: Nginx/Redis/SQLite share the system-intensive parameters;
    // NPB shares (almost) nothing of weight.
    let overlap = |a: &App, b: &App| {
        let ta: std::collections::HashSet<_> = a.perf.touched().into_iter().collect();
        let tb: std::collections::HashSet<_> = b.perf.touched().into_iter().collect();
        ta.intersection(&tb).count()
    };
    let nginx = App::nginx();
    let redis = App::redis();
    let sqlite = App::sqlite();
    let npb = App::npb();
    assert!(overlap(&nginx, &redis) >= 6);
    assert!(overlap(&nginx, &sqlite) >= 3);
    assert!(overlap(&redis, &sqlite) >= 4);
    assert!(overlap(&npb, &nginx) <= 4);
}
