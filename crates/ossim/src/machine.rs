//! Hardware platform descriptions.
//!
//! The paper pins its experiments to specific machines (§4: a dual-socket
//! Xeon E5-2697 v2; appendix: an E5-2690 v3). Wayfinder specializes *for a
//! given hardware setup*, so the machine is an explicit input of every
//! evaluation rather than ambient state.

/// A benchmark host.
#[derive(Clone, Debug, PartialEq)]
pub struct Machine {
    /// Marketing name, for reports.
    pub name: String,
    /// Physical cores available to the VM.
    pub cores: u32,
    /// RAM in MiB.
    pub ram_mb: u64,
    /// Base clock in GHz (scales CPU-bound workloads).
    pub clock_ghz: f64,
    /// Number of NUMA nodes exposed; the paper restricts runs to one.
    pub numa_nodes: u32,
}

impl Machine {
    /// The paper's §4 experiment host: 2× Intel Xeon E5-2697 v2
    /// (2×24 threads @ 2.70 GHz, 128 GB RAM), restricted to one NUMA node.
    pub fn xeon_e5_2697_v2() -> Self {
        Machine {
            name: "Intel Xeon E5-2697 v2".into(),
            cores: 24,
            ram_mb: 128 * 1024,
            clock_ghz: 2.7,
            numa_nodes: 1,
        }
    }

    /// The artifact-appendix host (E5-2690 v3, 315 GB RAM).
    pub fn xeon_e5_2690_v3() -> Self {
        Machine {
            name: "Intel Xeon E5-2690 v3".into(),
            cores: 12,
            ram_mb: 315 * 1024,
            clock_ghz: 2.6,
            numa_nodes: 1,
        }
    }

    /// A QEMU-emulated RISC-V board for the Fig. 10 footprint experiments.
    /// Emulation is slow but, as §4.4 notes, does not affect memory
    /// measurements.
    pub fn riscv_qemu() -> Self {
        Machine {
            name: "QEMU RISC-V virt".into(),
            cores: 4,
            ram_mb: 2 * 1024,
            clock_ghz: 0.5,
            numa_nodes: 1,
        }
    }

    /// Cores granted to an application that wants `requested` cores
    /// (Redis/SQLite pin to 1; Nginx/NPB to 16 in §4).
    pub fn grant_cores(&self, requested: u32) -> u32 {
        requested.min(self.cores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_machine_shape() {
        let m = Machine::xeon_e5_2697_v2();
        assert_eq!(m.cores, 24);
        assert_eq!(m.ram_mb, 128 * 1024);
        assert_eq!(m.numa_nodes, 1);
    }

    #[test]
    fn grant_cores_caps_at_available() {
        let m = Machine::riscv_qemu();
        assert_eq!(m.grant_cores(16), 4);
        assert_eq!(m.grant_cores(1), 1);
    }
}
