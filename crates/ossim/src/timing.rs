//! The virtual time model.
//!
//! Wall-clock time is the scarce resource the paper's search budgets are
//! expressed in (3-hour sessions, 60–80 s per evaluation, Fig. 8). The
//! simulator charges realistic durations to a virtual clock instead of
//! sleeping:
//!
//! * full kernel builds take minutes and scale with the number of enabled
//!   options; incremental rebuilds scale with the change set;
//! * boots take seconds and scale with image size;
//! * benchmark runs take tens of seconds with run-to-run jitter;
//! * crashes waste *part* of the phase they die in (a boot hang costs the
//!   watchdog timeout, not a full benchmark).

use rand::Rng;

/// Durations (in virtual seconds) charged by the simulated pipeline.
#[derive(Clone, Debug, PartialEq)]
pub struct TimingModel {
    /// Fixed cost of a full build (toolchain startup, configuration).
    pub build_base_s: f64,
    /// Per-enabled-option compile cost of a full build.
    pub build_per_option_s: f64,
    /// Fixed cost of an incremental rebuild.
    pub build_incr_base_s: f64,
    /// Per-changed-option cost of an incremental rebuild.
    pub build_incr_per_change_s: f64,
    /// Fixed boot cost (firmware, decompression).
    pub boot_base_s: f64,
    /// Boot cost per MB of image.
    pub boot_per_mb_s: f64,
    /// Cost of applying runtime parameters after boot.
    pub sysctl_apply_s: f64,
    /// Watchdog timeout charged by a boot hang.
    pub boot_timeout_s: f64,
    /// Relative jitter on every duration (uniform ±).
    pub jitter: f64,
}

impl TimingModel {
    /// Timings for Linux/QEMU-KVM (§4: evaluating a configuration takes
    /// 60–80 s on average when no rebuild is needed).
    pub fn linux() -> Self {
        TimingModel {
            build_base_s: 55.0,
            build_per_option_s: 0.022,
            build_incr_base_s: 14.0,
            build_incr_per_change_s: 1.2,
            boot_base_s: 5.5,
            boot_per_mb_s: 0.012,
            sysctl_apply_s: 1.2,
            boot_timeout_s: 20.0,
            jitter: 0.08,
        }
    }

    /// Timings for Unikraft: unikernel builds are seconds, boots are
    /// milliseconds (the paper's §4.4 3-hour budget covers far more
    /// iterations than the Linux experiments).
    pub fn unikraft() -> Self {
        TimingModel {
            build_base_s: 18.0,
            build_per_option_s: 0.08,
            build_incr_base_s: 6.0,
            build_incr_per_change_s: 0.4,
            boot_base_s: 0.05,
            boot_per_mb_s: 0.002,
            sysctl_apply_s: 0.0,
            boot_timeout_s: 5.0,
            jitter: 0.08,
        }
    }

    /// Timings for emulated (TCG) RISC-V: builds are cross-compiles at
    /// normal speed, boots are painfully slow (§4.4: emulation affects
    /// performance but not memory consumption).
    pub fn riscv_emulated() -> Self {
        TimingModel {
            // Cross-compiling the full tree; the searched subset only
            // modulates on top of a large fixed cost.
            build_base_s: 140.0,
            boot_base_s: 28.0,
            boot_per_mb_s: 0.08,
            boot_timeout_s: 90.0,
            ..TimingModel::linux()
        }
    }

    /// Duration of a full build with `enabled` options on.
    pub fn full_build_s(&self, enabled: usize, rng: &mut impl Rng) -> f64 {
        self.jittered(
            self.build_base_s + self.build_per_option_s * enabled as f64,
            rng,
        )
    }

    /// Duration of an incremental rebuild touching `changes` options.
    pub fn incr_build_s(&self, changes: usize, rng: &mut impl Rng) -> f64 {
        self.jittered(
            self.build_incr_base_s + self.build_incr_per_change_s * changes as f64,
            rng,
        )
    }

    /// Duration of a successful boot of an image of `image_mb` MB.
    pub fn boot_s(&self, image_mb: f64, rng: &mut impl Rng) -> f64 {
        self.jittered(self.boot_base_s + self.boot_per_mb_s * image_mb, rng)
    }

    /// Time wasted by a crash in the given phase.
    pub fn crash_cost_s(
        &self,
        phase: crate::perfmodel::Phase,
        nominal_phase_s: f64,
        rng: &mut impl Rng,
    ) -> f64 {
        use crate::perfmodel::Phase;
        match phase {
            // Build failures surface partway through compilation.
            Phase::Build => self.jittered(nominal_phase_s * 0.45, rng),
            // Boot hangs cost the watchdog timeout.
            Phase::Boot => self.jittered(self.boot_timeout_s, rng),
            // Runtime crashes die partway through the benchmark.
            Phase::Run => self.jittered(nominal_phase_s * 0.55, rng),
        }
    }

    fn jittered(&self, base: f64, rng: &mut impl Rng) -> f64 {
        if self.jitter <= 0.0 {
            return base;
        }
        let u: f64 = rng.random::<f64>() * 2.0 - 1.0;
        (base * (1.0 + self.jitter * u)).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perfmodel::Phase;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linux_full_build_is_minutes() {
        let t = TimingModel::linux();
        let mut rng = StdRng::seed_from_u64(1);
        let s = t.full_build_s(6000, &mut rng);
        assert!((120.0..300.0).contains(&s), "s={s}");
    }

    #[test]
    fn incremental_build_is_much_cheaper() {
        let t = TimingModel::linux();
        let mut rng = StdRng::seed_from_u64(2);
        let full = t.full_build_s(6000, &mut rng);
        let incr = t.incr_build_s(3, &mut rng);
        assert!(incr < full / 5.0, "incr={incr} full={full}");
    }

    #[test]
    fn unikraft_iterations_are_fast() {
        let t = TimingModel::unikraft();
        let mut rng = StdRng::seed_from_u64(3);
        let build = t.full_build_s(30, &mut rng);
        let boot = t.boot_s(4.0, &mut rng);
        assert!(build < 30.0, "build={build}");
        assert!(boot < 0.2, "boot={boot}");
    }

    #[test]
    fn crash_costs_less_than_phase() {
        let t = TimingModel::linux();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            assert!(t.crash_cost_s(Phase::Run, 45.0, &mut rng) < 45.0);
            assert!(t.crash_cost_s(Phase::Build, 180.0, &mut rng) < 180.0);
        }
    }

    #[test]
    fn jitter_bounded() {
        let t = TimingModel::linux();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let s = t.boot_s(210.0, &mut rng);
            let nominal = t.boot_base_s + t.boot_per_mb_s * 210.0;
            assert!((s - nominal).abs() <= nominal * t.jitter + 1e-9);
        }
    }
}
