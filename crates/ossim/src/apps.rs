//! The benchmark applications (§4): Nginx, Redis, SQLite, and the NAS
//! Parallel Benchmarks, with their ground-truth sensitivity models.
//!
//! Each application couples:
//!
//! * a *primary metric* model ([`App::perf`]) over the named kernel
//!   parameters the paper's §4.1 analysis calls out — positive effects like
//!   `net.core.somaxconn`, `net.core.rmem_default`,
//!   `net.ipv4.tcp_keepalive_time`, `vm.stat_interval`, and negative ones
//!   like `kernel.printk`, `kernel.printk_delay`, `vm.block_dump`;
//! * a *memory* model ([`App::mem`]) used by the Fig. 11 / Table 4
//!   throughput–memory co-optimization;
//! * bench-tool metadata (wrk, redis-benchmark, LevelDB's sqlite bench,
//!   the NPB suite) and timing.
//!
//! Cross-application structure mirrors Fig. 5: Nginx, Redis, and SQLite
//! share the dominant *system-intensive* effects (logging, watchdogs,
//! scheduler and dirty-page tuning), while NPB barely reacts to the OS at
//! all — which is exactly why transfer learning works within the first
//! group and not towards NPB (§3.3).

use crate::curve::{Cond, Curve};
use crate::machine::Machine;
use crate::perfmodel::PerfModel;
use rand::Rng;
use wf_configspace::NamedConfig;

/// Whether larger metric values are better.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricDirection {
    /// Throughput-style metric.
    HigherBetter,
    /// Latency-style metric.
    LowerBetter,
}

/// Application identifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AppId {
    /// Nginx web server benchmarked with wrk (throughput, req/s).
    Nginx,
    /// Redis key-value store benchmarked with redis-benchmark (req/s).
    Redis,
    /// SQLite under LevelDB's sqlite3 INSERT benchmark (µs/op).
    Sqlite,
    /// NAS Parallel Benchmarks, OpenMP FT/MG/CG/IS aggregate (Mop/s).
    Npb,
    /// The synthetic boot probe of memory-footprint sessions: boots and
    /// reports memory, with no performance model of its own.
    BootProbe,
    /// A downstream-defined application; the label is the identity.
    /// Custom apps carry their own models and are constructed directly,
    /// never through [`App::by_id`].
    Custom(&'static str),
}

impl AppId {
    /// All *benchmark* applications in the paper's order (the synthetic
    /// boot probe and custom apps are excluded).
    pub const ALL: [AppId; 4] = [AppId::Nginx, AppId::Redis, AppId::Sqlite, AppId::Npb];

    /// Lower-case label used by job files and reports.
    pub fn label(self) -> &'static str {
        match self {
            AppId::Nginx => "nginx",
            AppId::Redis => "redis",
            AppId::Sqlite => "sqlite",
            AppId::Npb => "npb",
            AppId::BootProbe => "boot-probe",
            AppId::Custom(label) => label,
        }
    }

    /// Parses a job-file label.
    pub fn parse(s: &str) -> Option<AppId> {
        match s {
            "nginx" => Some(AppId::Nginx),
            "redis" => Some(AppId::Redis),
            "sqlite" => Some(AppId::Sqlite),
            "npb" => Some(AppId::Npb),
            "boot-probe" => Some(AppId::BootProbe),
            _ => None,
        }
    }
}

impl std::fmt::Display for AppId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// An application plus its ground-truth models.
#[derive(Clone, Debug)]
pub struct App {
    /// Identifier.
    pub id: AppId,
    /// The driving benchmark tool (purple box in Fig. 3).
    pub bench_tool: &'static str,
    /// Primary metric name.
    pub metric_name: &'static str,
    /// Metric unit as printed in the paper's tables.
    pub unit: &'static str,
    /// Metric direction.
    pub direction: MetricDirection,
    /// Metric value of the default configuration (Table 2's baseline).
    pub base: f64,
    /// Cores the benchmark pins (§4: Redis/SQLite 1, Nginx/NPB 16).
    pub cores: u32,
    /// Nominal benchmark duration in seconds.
    pub bench_duration_s: f64,
    /// Resident memory of the booted app under default settings (MB).
    pub mem_base_mb: f64,
    /// Primary-metric ground truth.
    pub perf: PerfModel,
    /// Memory-consumption ground truth.
    pub mem: PerfModel,
}

impl App {
    /// Looks an application up by id.
    ///
    /// # Panics
    ///
    /// Panics on [`AppId::Custom`]: downstream apps bring their own models
    /// and must be constructed directly.
    pub fn by_id(id: AppId) -> App {
        match id {
            AppId::Nginx => App::nginx(),
            AppId::Redis => App::redis(),
            AppId::Sqlite => App::sqlite(),
            AppId::Npb => App::npb(),
            AppId::BootProbe => App::boot_probe(),
            AppId::Custom(label) => {
                panic!("custom app {label:?} has no built-in model; construct the App directly")
            }
        }
    }

    /// The synthetic "application" of memory-footprint sessions (Fig. 10):
    /// it boots and reports memory, with no performance model of its own,
    /// under its own identity so reports and histories never mislabel
    /// footprint sessions as a benchmark app.
    pub fn boot_probe() -> App {
        App {
            id: AppId::BootProbe,
            bench_tool: "boot-probe",
            metric_name: "memory",
            unit: "MB",
            direction: MetricDirection::LowerBetter,
            base: 1.0,
            cores: 1,
            bench_duration_s: 12.0,
            mem_base_mb: 0.0,
            perf: PerfModel::new(0.0),
            mem: PerfModel::new(0.0),
        }
    }

    /// One noisy metric measurement under `view` (falling back to
    /// `defaults`), on `machine`.
    ///
    /// For [`MetricDirection::LowerBetter`] metrics the model factor
    /// divides: a "better" factor yields a smaller latency.
    pub fn measure(
        &self,
        view: &NamedConfig,
        defaults: &NamedConfig,
        machine: &Machine,
        rng: &mut impl Rng,
    ) -> f64 {
        let factor = self.perf.sample_factor(view, defaults, rng);
        let hw = self.hw_factor(machine);
        match self.direction {
            MetricDirection::HigherBetter => self.base * factor * hw,
            MetricDirection::LowerBetter => self.base / (factor * hw),
        }
    }

    /// The machine's multiplicative contribution to this application's
    /// metric (core grant × clock scale). Factored out so oracle
    /// computations (e.g. drifting-workload phase oracles) use exactly
    /// the scaling [`App::measure`] applies.
    pub fn hw_factor(&self, machine: &Machine) -> f64 {
        let cores_scale = machine.grant_cores(self.cores) as f64 / self.cores as f64;
        let clock_scale = (machine.clock_ghz / 2.7).min(1.5);
        if self.cores > 1 {
            cores_scale * clock_scale
        } else {
            clock_scale
        }
    }

    /// One noisy resident-memory measurement in MB.
    pub fn memory_mb(&self, view: &NamedConfig, defaults: &NamedConfig, rng: &mut impl Rng) -> f64 {
        self.mem_base_mb * self.mem.sample_factor(view, defaults, rng)
    }

    /// Nginx + wrk: network-intensive, 16 cores, large headroom
    /// (Table 2: 15 731 → 19 593 req/s, 1.24×).
    pub fn nginx() -> App {
        let perf = PerfModel::new(0.02)
            // Positive, documented in tuning guides (§4.1). Individual
            // gains are modest; the large wins sit in *aligned*
            // combinations, which is why random search plateaus around
            // +12 % (Fig. 2) while directed search reaches +24 % (Table 2).
            .effect(
                "net.core.somaxconn",
                Curve::SaturatingLog {
                    lo: 128.0,
                    hi: 16_384.0,
                    gain: 0.045,
                },
            )
            .effect(
                "net.ipv4.tcp_max_syn_backlog",
                Curve::SaturatingLog {
                    lo: 512.0,
                    hi: 16_384.0,
                    gain: 0.018,
                },
            )
            .effect(
                "net.core.rmem_default",
                Curve::OptimumLog {
                    best: 4_194_304.0,
                    width: 0.55,
                    gain: 0.035,
                },
            )
            .effect(
                "net.ipv4.tcp_keepalive_time",
                Curve::Step {
                    at: 600.0,
                    below: 1.015,
                    above: 1.0,
                },
            )
            .effect(
                "net.core.default_qdisc",
                Curve::PerChoice {
                    factors: vec![1.0, 1.005, 1.01],
                },
            )
            .effect(
                "net.ipv4.tcp_congestion_control",
                Curve::PerChoice {
                    factors: vec![1.0, 0.97, 1.012],
                },
            )
            .effect(
                "net.ipv4.tcp_slow_start_after_idle",
                Curve::BoolFactor { when_on: 0.99 },
            )
            .effect(
                "net.core.busy_poll",
                Curve::OptimumLog {
                    best: 50.0,
                    width: 0.3,
                    gain: 0.012,
                },
            )
            .effect(
                "net.ipv4.tcp_timestamps",
                Curve::BoolFactor { when_on: 1.004 },
            )
            .effect("net.ipv4.tcp_sack", Curve::BoolFactor { when_on: 1.012 })
            .effect(
                "net.ipv4.tcp_tw_reuse",
                Curve::BoolFactor { when_on: 1.006 },
            )
            .effect(
                "vm.swappiness",
                Curve::Linear {
                    lo: 80.0,
                    hi: 100.0,
                    lo_factor: 1.0,
                    hi_factor: 0.985,
                },
            )
            .effect(
                "vm.dirty_ratio",
                Curve::Step {
                    at: 3.0,
                    below: 0.97,
                    above: 1.0,
                },
            )
            .interaction(
                "aligned-backlogs",
                vec![
                    ("net.core.somaxconn", Cond::Ge(8192.0)),
                    ("net.ipv4.tcp_max_syn_backlog", Cond::Ge(8192.0)),
                    ("net.core.netdev_max_backlog", Cond::Ge(8192.0)),
                ],
                1.05,
            )
            .interaction(
                "tuned-net-path",
                vec![
                    ("net.core.somaxconn", Cond::Ge(2048.0)),
                    ("net.core.rmem_default", Cond::Ge(1_048_576.0)),
                    ("net.core.rmem_default", Cond::Le(16_777_216.0)),
                    ("net.core.default_qdisc", Cond::Eq(2.0)),
                    ("net.ipv4.tcp_congestion_control", Cond::Eq(2.0)),
                ],
                1.07,
            );
        let perf = with_system_effects(perf, 1.0);
        let mem = PerfModel::new(0.01)
            // Buffers scale memory across the whole range, so shrinking
            // them below the default *reduces* memory — the Table 4
            // throughput-vs-memory trade-off.
            .effect(
                "net.core.rmem_default",
                Curve::SaturatingLog {
                    lo: 2_048.0,
                    hi: 33_554_432.0,
                    gain: 0.24,
                },
            )
            .effect(
                "net.core.wmem_default",
                Curve::SaturatingLog {
                    lo: 2_048.0,
                    hi: 33_554_432.0,
                    gain: 0.16,
                },
            )
            .effect(
                "vm.nr_hugepages",
                Curve::SaturatingLog {
                    lo: 8.0,
                    hi: 4096.0,
                    gain: 1.8,
                },
            )
            .effect(
                "vm.min_free_kbytes",
                Curve::SaturatingLog {
                    lo: 67_584.0,
                    hi: 16_777_216.0,
                    gain: 0.6,
                },
            )
            .effect(
                "net.core.somaxconn",
                Curve::SaturatingLog {
                    lo: 128.0,
                    hi: 65_535.0,
                    gain: 0.04,
                },
            );
        App {
            id: AppId::Nginx,
            bench_tool: "wrk",
            metric_name: "throughput",
            unit: "req/s",
            direction: MetricDirection::HigherBetter,
            base: 15_731.0,
            cores: 16,
            bench_duration_s: 55.0,
            mem_base_mb: 96.0,
            perf,
            mem,
        }
    }

    /// Redis + redis-benchmark: network-intensive, single-threaded
    /// (Table 2: 58 000 → 66 118 req/s, 1.14×).
    pub fn redis() -> App {
        let perf = PerfModel::new(0.025)
            .effect(
                "net.core.somaxconn",
                Curve::SaturatingLog {
                    lo: 128.0,
                    hi: 2048.0,
                    gain: 0.055,
                },
            )
            .effect(
                "net.core.rmem_default",
                Curve::OptimumLog {
                    best: 1_048_576.0,
                    width: 1.0,
                    gain: 0.018,
                },
            )
            .effect(
                "net.core.wmem_default",
                Curve::OptimumLog {
                    best: 1_048_576.0,
                    width: 1.0,
                    gain: 0.015,
                },
            )
            .effect(
                "net.core.busy_read",
                Curve::OptimumLog {
                    best: 60.0,
                    width: 0.45,
                    gain: 0.03,
                },
            )
            .effect(
                "net.ipv4.tcp_fastopen",
                Curve::PerChoice {
                    factors: vec![1.0, 1.003, 1.003, 1.008],
                },
            )
            .effect(
                "net.ipv4.tcp_keepalive_time",
                Curve::Step {
                    at: 600.0,
                    below: 1.012,
                    above: 1.0,
                },
            )
            .effect(
                "kernel.sched_migration_cost_ns",
                Curve::SaturatingLog {
                    lo: 500_000.0,
                    hi: 50_000_000.0,
                    gain: 0.022,
                },
            )
            .effect(
                "kernel.sched_autogroup_enabled",
                Curve::BoolFactor { when_on: 0.99 },
            )
            .effect("kernel.numa_balancing", Curve::BoolFactor { when_on: 0.99 })
            .effect(
                "vm.overcommit_memory",
                Curve::PerChoice {
                    factors: vec![1.0, 1.008, 0.995],
                },
            )
            .effect(
                "vm.swappiness",
                Curve::Linear {
                    lo: 0.0,
                    hi: 100.0,
                    lo_factor: 1.006,
                    hi_factor: 0.988,
                },
            )
            .interaction(
                "poll+sticky",
                vec![
                    ("net.core.busy_read", Cond::Ge(30.0)),
                    ("kernel.sched_migration_cost_ns", Cond::Ge(5_000_000.0)),
                ],
                1.012,
            );
        let perf = with_system_effects(perf, 1.0);
        let mem = PerfModel::new(0.01)
            .effect(
                "net.core.rmem_default",
                Curve::SaturatingLog {
                    lo: 212_992.0,
                    hi: 33_554_432.0,
                    gain: 0.2,
                },
            )
            .effect(
                "vm.nr_hugepages",
                Curve::SaturatingLog {
                    lo: 8.0,
                    hi: 4096.0,
                    gain: 1.2,
                },
            )
            .effect(
                "vm.overcommit_memory",
                Curve::PerChoice {
                    factors: vec![1.0, 1.0, 1.1],
                },
            );
        App {
            id: AppId::Redis,
            bench_tool: "redis-benchmark",
            metric_name: "throughput",
            unit: "req/s",
            direction: MetricDirection::HigherBetter,
            base: 58_000.0,
            cores: 1,
            bench_duration_s: 52.0,
            mem_base_mb: 64.0,
            perf,
            mem,
        }
    }

    /// SQLite + LevelDB's sqlite3 INSERT benchmark: storage-intensive,
    /// single-threaded, *default already optimal* (Table 2: 284 µs/op,
    /// 1.0×): every storage-path curve peaks at its default value.
    pub fn sqlite() -> App {
        let perf = PerfModel::new(0.02)
            .effect(
                "vm.dirty_ratio",
                Curve::OptimumLog {
                    best: 20.0,
                    width: 0.45,
                    gain: 0.03,
                },
            )
            .effect(
                "vm.dirty_background_ratio",
                Curve::OptimumLog {
                    best: 10.0,
                    width: 0.5,
                    gain: 0.02,
                },
            )
            .effect(
                "vm.dirty_expire_centisecs",
                Curve::OptimumLog {
                    best: 3_000.0,
                    width: 0.8,
                    gain: 0.02,
                },
            )
            .effect(
                "vm.dirty_writeback_centisecs",
                Curve::OptimumLog {
                    best: 500.0,
                    width: 0.8,
                    gain: 0.015,
                },
            )
            .effect(
                "vm.vfs_cache_pressure",
                Curve::OptimumLog {
                    best: 100.0,
                    width: 0.6,
                    gain: 0.025,
                },
            )
            .effect(
                "vm.swappiness",
                Curve::OptimumLog {
                    best: 60.0,
                    width: 0.55,
                    gain: 0.012,
                },
            )
            .effect(
                "kernel.sched_migration_cost_ns",
                Curve::OptimumLog {
                    best: 500_000.0,
                    width: 1.0,
                    gain: 0.018,
                },
            )
            .effect(
                "kernel.sched_autogroup_enabled",
                Curve::BoolFactor { when_on: 1.006 },
            )
            .effect(
                "fs.aio-max-nr",
                Curve::OptimumLog {
                    best: 65_536.0,
                    width: 1.2,
                    gain: 0.01,
                },
            );
        // Shared negatives only: no positive system headroom, so the best
        // discoverable configuration stays at the default's performance.
        let perf = with_system_penalties(perf, 1.0);
        let mem = PerfModel::new(0.01)
            .effect(
                "vm.nr_hugepages",
                Curve::SaturatingLog {
                    lo: 8.0,
                    hi: 4096.0,
                    gain: 1.0,
                },
            )
            .effect(
                "vm.min_free_kbytes",
                Curve::SaturatingLog {
                    lo: 67_584.0,
                    hi: 16_777_216.0,
                    gain: 0.4,
                },
            );
        App {
            id: AppId::Sqlite,
            bench_tool: "db_bench_sqlite3",
            metric_name: "latency",
            unit: "us/op",
            direction: MetricDirection::LowerBetter,
            base: 284.0,
            cores: 1,
            bench_duration_s: 62.0,
            mem_base_mb: 48.0,
            perf,
            mem,
        }
    }

    /// NPB (FT/MG/CG/IS, OpenMP): CPU/memory-bound; the OS configuration
    /// barely matters (Table 2: 1 497 → 1 522 Mop/s, 1.02×).
    pub fn npb() -> App {
        let perf = PerfModel::new(0.015)
            .effect(
                "vm.nr_hugepages",
                Curve::SaturatingLog {
                    lo: 64.0,
                    hi: 1024.0,
                    gain: 0.009,
                },
            )
            .effect(
                "vm.compaction_proactiveness",
                Curve::Linear {
                    lo: 0.0,
                    hi: 100.0,
                    lo_factor: 1.003,
                    hi_factor: 0.997,
                },
            )
            .effect(
                "kernel.sched_min_granularity_ns",
                Curve::OptimumLog {
                    best: 10_000_000.0,
                    width: 1.0,
                    gain: 0.006,
                },
            )
            .effect(
                "kernel.numa_balancing",
                Curve::BoolFactor { when_on: 0.996 },
            )
            .effect(
                "vm.stat_interval",
                Curve::SaturatingLog {
                    lo: 1.0,
                    hi: 30.0,
                    gain: 0.003,
                },
            )
            // CPU-bound code barely notices logging.
            .effect(
                "kernel.printk",
                Curve::Step {
                    at: 9.0,
                    below: 1.0,
                    above: 0.997,
                },
            )
            .effect(
                "kernel.printk_delay",
                Curve::Linear {
                    lo: 0.0,
                    hi: 10_000.0,
                    lo_factor: 1.0,
                    hi_factor: 0.992,
                },
            );
        let mem = PerfModel::new(0.01).effect(
            "vm.nr_hugepages",
            Curve::SaturatingLog {
                lo: 8.0,
                hi: 4096.0,
                gain: 0.9,
            },
        );
        App {
            id: AppId::Npb,
            bench_tool: "npb-suite",
            metric_name: "throughput",
            unit: "Mop/s",
            direction: MetricDirection::HigherBetter,
            base: 1_497.0,
            cores: 16,
            bench_duration_s: 68.0,
            mem_base_mb: 512.0,
            perf,
            mem,
        }
    }
}

/// The shared system-intensive effects: penalties *and* small positives
/// (`vm.stat_interval`, watchdog toggles). Applied to Nginx and Redis.
fn with_system_effects(m: PerfModel, scale: f64) -> PerfModel {
    let m = with_system_penalties(m, scale);
    // Boot-time parameters (present only when the searched space includes
    // the boot stage; absent parameters contribute factor 1).
    let m = m
        .effect(
            "mitigations",
            Curve::PerChoice {
                factors: vec![1.0, 1.012, 1.03],
            },
        )
        .effect(
            "transparent_hugepage",
            Curve::PerChoice {
                factors: vec![1.004, 1.0, 0.997],
            },
        )
        .effect("nosmt", Curve::BoolFactor { when_on: 1.006 });
    m.effect(
        "vm.stat_interval",
        Curve::SaturatingLog {
            lo: 1.0,
            hi: 30.0,
            gain: 0.010 * scale,
        },
    )
    .effect(
        "kernel.watchdog",
        Curve::BoolFactor {
            when_on: 1.0 - 0.010 * scale,
        },
    )
    .effect(
        "kernel.nmi_watchdog",
        Curve::BoolFactor {
            when_on: 1.0 - 0.006 * scale,
        },
    )
    .effect(
        "kernel.randomize_va_space",
        Curve::Linear {
            lo: 0.0,
            hi: 2.0,
            lo_factor: 1.0 + 0.004 * scale,
            hi_factor: 1.0,
        },
    )
    .effect(
        "kernel.sched_min_granularity_ns",
        Curve::OptimumLog {
            best: 10_000_000.0,
            width: 1.2,
            gain: 0.012 * scale,
        },
    )
}

/// The shared *negative* effects every system-intensive application
/// suffers from (§4.1: logging and debugging are well-known bottlenecks).
fn with_system_penalties(m: PerfModel, scale: f64) -> PerfModel {
    m.effect(
        "kernel.printk",
        Curve::Step {
            at: 9.0,
            below: 1.0,
            above: 1.0 - 0.08 * scale,
        },
    )
    .effect(
        "kernel.printk_delay",
        Curve::Linear {
            lo: 0.0,
            hi: 10_000.0,
            lo_factor: 1.0,
            hi_factor: 1.0 - 0.45 * scale,
        },
    )
    .effect(
        "vm.block_dump",
        Curve::BoolFactor {
            when_on: 1.0 - 0.09 * scale,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wf_configspace::Value;

    fn defaults() -> NamedConfig {
        crate::linux::runtime_defaults()
    }

    #[test]
    fn default_measurements_match_table2_baselines() {
        let d = defaults();
        let m = Machine::xeon_e5_2697_v2();
        let mut rng = StdRng::seed_from_u64(1);
        for (id, base) in [
            (AppId::Nginx, 15_731.0),
            (AppId::Redis, 58_000.0),
            (AppId::Sqlite, 284.0),
            (AppId::Npb, 1_497.0),
        ] {
            let app = App::by_id(id);
            let n = 200;
            let mean: f64 = (0..n)
                .map(|_| app.measure(&d, &d, &m, &mut rng))
                .sum::<f64>()
                / n as f64;
            assert!(
                (mean - base).abs() / base < 0.01,
                "{id}: mean={mean} base={base}"
            );
        }
    }

    #[test]
    fn nginx_somaxconn_improves_throughput() {
        let d = defaults();
        let app = App::nginx();
        let mut v = NamedConfig::empty();
        v.set("net.core.somaxconn", Value::Int(4096));
        let f = app.perf.mean_factor(&v, &d);
        assert!(f > 1.025 && f < 1.05, "f={f}");
    }

    #[test]
    fn printk_delay_hurts_nginx_more_than_npb() {
        let d = defaults();
        let mut v = NamedConfig::empty();
        v.set("kernel.printk_delay", Value::Int(10_000));
        let nginx = App::nginx().perf.mean_factor(&v, &d);
        let npb = App::npb().perf.mean_factor(&v, &d);
        assert!(nginx < 0.6, "nginx={nginx}");
        assert!(npb > 0.98, "npb={npb}");
    }

    #[test]
    fn sqlite_default_is_already_optimal() {
        let d = defaults();
        let app = App::sqlite();
        let bound = app.perf.headroom_bound(&d);
        assert!(
            bound < 1.005,
            "sqlite headroom bound {bound} should be ~1.0"
        );
    }

    #[test]
    fn headroom_bounds_match_paper_magnitudes() {
        let d = defaults();
        let nginx = App::nginx().perf.headroom_bound(&d);
        assert!((1.24..1.45).contains(&nginx), "nginx bound {nginx}");
        let redis = App::redis().perf.headroom_bound(&d);
        assert!((1.14..1.32).contains(&redis), "redis bound {redis}");
        let npb = App::npb().perf.headroom_bound(&d);
        assert!((1.015..1.05).contains(&npb), "npb bound {npb}");
    }

    #[test]
    fn latency_metric_inverts_factor() {
        let d = defaults();
        let app = App::sqlite();
        let m = Machine::xeon_e5_2697_v2();
        let mut rng = StdRng::seed_from_u64(2);
        let mut v = NamedConfig::empty();
        v.set("kernel.printk_delay", Value::Int(10_000));
        let n = 100;
        let worse: f64 = (0..n)
            .map(|_| app.measure(&v, &d, &m, &mut rng))
            .sum::<f64>()
            / n as f64;
        assert!(worse > 284.0 * 1.3, "latency should balloon: {worse}");
    }

    #[test]
    fn memory_rises_with_buffer_settings() {
        let d = defaults();
        let app = App::nginx();
        let mut rng = StdRng::seed_from_u64(3);
        let base = app.memory_mb(&d, &d, &mut rng);
        let mut v = NamedConfig::empty();
        v.set("vm.nr_hugepages", Value::Int(4096));
        v.set("net.core.rmem_default", Value::Int(33_554_432));
        let big = app.memory_mb(&v, &d, &mut rng);
        assert!(big > base * 1.8, "base={base} big={big}");
    }

    #[test]
    fn fewer_cores_scale_down_parallel_apps() {
        let d = defaults();
        let app = App::nginx();
        let mut rng = StdRng::seed_from_u64(4);
        let small = Machine {
            cores: 4,
            ..Machine::xeon_e5_2697_v2()
        };
        let full = Machine::xeon_e5_2697_v2();
        let a = app.measure(&d, &d, &small, &mut rng);
        let b = app.measure(&d, &d, &full, &mut rng);
        assert!(a < b * 0.4, "a={a} b={b}");
    }

    #[test]
    fn app_id_labels_round_trip() {
        for id in AppId::ALL {
            assert_eq!(AppId::parse(id.label()), Some(id));
        }
        assert_eq!(AppId::parse("word"), None);
    }
}
