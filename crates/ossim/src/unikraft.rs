//! The Unikraft unikernel target (§4.4, Fig. 9).
//!
//! The paper's Unikraft experiment explores 33 configuration parameters —
//! 10 Nginx application-level options and 23 Unikraft OS options — for a
//! search space of ≈ 3.7 × 10¹³ permutations, small enough that Bayesian
//! optimization can participate. Unikernels reward *combinations*: cheap
//! user/kernel transitions only pay off when the allocator, scheduler, and
//! network stack are configured coherently, which this model expresses as
//! strong multi-way interactions (the reason Fig. 9's random search never
//! finds the good region while model-driven search does).

use crate::apps::{App, AppId, MetricDirection};
use crate::curve::{Cond, Curve};
use crate::perfmodel::{CrashRule, PerfModel, Phase};
use wf_configspace::{ConfigSpace, ParamKind, ParamSpec, Stage, Value};

/// Builds the 33-parameter Unikraft+Nginx configuration space.
///
/// All parameters are compile-time: a unikernel is reconfigured by
/// rebuilding, which is cheap ([`crate::timing::TimingModel::unikraft`]).
///
/// # Examples
///
/// ```
/// let space = wf_ossim::unikraft::space();
/// assert_eq!(space.len(), 33);
/// // The paper quotes ~3.7e13 permutations.
/// let lg = space.log10_cardinality();
/// assert!((13.3..13.8).contains(&lg), "{lg}");
/// ```
pub fn space() -> ConfigSpace {
    let mut s = ConfigSpace::new();
    fn flag(s: &mut ConfigSpace, name: &str, def: bool, doc: &str) {
        s.add(
            ParamSpec::new(name, ParamKind::Bool, Stage::CompileTime)
                .with_default(Value::Bool(def))
                .with_doc(doc),
        );
    }

    // --- 10 Nginx application-level options -----------------------------
    flag(
        &mut s,
        "nginx.sendfile",
        false,
        "Use sendfile() for static responses.",
    );
    flag(
        &mut s,
        "nginx.tcp_nopush",
        false,
        "Coalesce header+payload frames.",
    );
    flag(
        &mut s,
        "nginx.tcp_nodelay",
        true,
        "Disable Nagle on keepalive connections.",
    );
    flag(&mut s, "nginx.gzip", true, "Compress responses.");
    flag(&mut s, "nginx.access_log", true, "Write the access log.");
    flag(
        &mut s,
        "nginx.open_file_cache",
        false,
        "Cache open file descriptors.",
    );
    flag(&mut s, "nginx.etag", true, "Emit ETag headers.");
    s.add(
        ParamSpec::new(
            "nginx.worker_processes",
            ParamKind::int(1, 16),
            Stage::CompileTime,
        )
        .with_default(Value::Int(1))
        .with_doc("Worker process count."),
    );
    s.add(
        ParamSpec::new(
            "nginx.keepalive_timeout",
            ParamKind::choices(vec!["0", "15", "65", "300"]),
            Stage::CompileTime,
        )
        .with_default(Value::Choice(2))
        .with_doc("Keepalive timeout (s)."),
    );
    s.add(
        ParamSpec::new(
            "nginx.keepalive_requests",
            ParamKind::choices(vec!["100", "1000", "10000"]),
            Stage::CompileTime,
        )
        .with_default(Value::Choice(0))
        .with_doc("Requests per keepalive connection."),
    );

    // --- 23 Unikraft OS options -----------------------------------------
    s.add(
        ParamSpec::new(
            "CONFIG_LIBUKALLOC_TYPE",
            ParamKind::choices(vec!["binbuddy", "tlsf", "mimalloc", "pool"]),
            Stage::CompileTime,
        )
        .with_default(Value::Choice(0))
        .with_doc("Default heap allocator."),
    );
    s.add(
        ParamSpec::new(
            "CONFIG_LIBUKSCHED_TYPE",
            ParamKind::choices(vec!["coop", "preempt", "rr"]),
            Stage::CompileTime,
        )
        .with_default(Value::Choice(1))
        .with_doc("Thread scheduler."),
    );
    s.add(
        ParamSpec::new(
            "CONFIG_UKCONSOLE",
            ParamKind::choices(vec!["none", "serial", "vga"]),
            Stage::CompileTime,
        )
        .with_default(Value::Choice(1))
        .with_doc("Console backend."),
    );
    s.add(
        ParamSpec::new(
            "CONFIG_LWIP_BUFSIZE",
            ParamKind::choices(vec!["small", "medium", "large"]),
            Stage::CompileTime,
        )
        .with_default(Value::Choice(1))
        .with_doc("lwIP TCP window / send-buffer sizing profile."),
    );
    s.add(
        ParamSpec::new(
            "CONFIG_LIBUKNETDEV_RX_RING",
            ParamKind::int(1, 64),
            Stage::CompileTime,
        )
        .with_default(Value::Int(8))
        .with_doc("Receive descriptor ring pages."),
    );
    flag(
        &mut s,
        "CONFIG_LIBUKNETDEV_POLL",
        false,
        "Busy-poll the network device.",
    );
    flag(&mut s, "CONFIG_LWIP_POOLS", false, "Use lwIP memory pools.");
    flag(
        &mut s,
        "CONFIG_LWIP_NOTHREADS",
        false,
        "Run lwIP without a dedicated thread.",
    );
    flag(&mut s, "CONFIG_LWIP_WND_SCALE", true, "TCP window scaling.");
    flag(
        &mut s,
        "CONFIG_LWIP_SACK",
        false,
        "TCP selective acknowledgements.",
    );
    flag(
        &mut s,
        "CONFIG_LIBUKALLOC_IFSTATS",
        false,
        "Allocator statistics.",
    );
    flag(&mut s, "CONFIG_LIBUKDEBUG", false, "Debug message support.");
    flag(
        &mut s,
        "CONFIG_LIBUKDEBUG_ASSERTIONS",
        false,
        "Enable assertions.",
    );
    flag(
        &mut s,
        "CONFIG_LIBUKDEBUG_TRACEPOINTS",
        false,
        "Enable tracepoints.",
    );
    flag(
        &mut s,
        "CONFIG_STACKPROTECTOR",
        false,
        "Stack smashing protection.",
    );
    flag(
        &mut s,
        "CONFIG_HEAP_INIT_ZERO",
        true,
        "Zero the heap at boot.",
    );
    flag(
        &mut s,
        "CONFIG_LIBUKSCHED_IDLE_POLL",
        false,
        "Poll instead of halting when idle.",
    );
    flag(&mut s, "CONFIG_LIBUKMMAP", true, "mmap() support.");
    flag(
        &mut s,
        "CONFIG_LIBPOSIX_EVENTFD",
        true,
        "eventfd() support.",
    );
    flag(
        &mut s,
        "CONFIG_LIBVFSCORE_PIPE",
        true,
        "Pipe support in the VFS.",
    );
    flag(&mut s, "CONFIG_LIBUK9P", false, "9pfs filesystem support.");
    flag(
        &mut s,
        "CONFIG_PAGING",
        false,
        "Dynamic paging (vs static mappings).",
    );
    flag(
        &mut s,
        "CONFIG_LIBUKSIGNAL",
        true,
        "POSIX signal emulation.",
    );
    s
}

/// Nginx-on-Unikraft: the application model of Fig. 9.
///
/// The default configuration serves ≈ 9 800 req/s; a coherently specialized
/// one reaches ≈ 48 000 req/s, matching the ~5× gains the paper attributes
/// to cheap user/kernel transitions under the right configuration.
pub fn nginx_app() -> App {
    let perf = PerfModel::new(0.03)
        // Application-level effects.
        .effect("nginx.sendfile", Curve::BoolFactor { when_on: 1.09 })
        .effect("nginx.tcp_nopush", Curve::BoolFactor { when_on: 1.04 })
        .effect("nginx.tcp_nodelay", Curve::BoolFactor { when_on: 1.06 })
        .effect("nginx.gzip", Curve::BoolFactor { when_on: 0.93 })
        .effect("nginx.access_log", Curve::BoolFactor { when_on: 0.92 })
        .effect("nginx.open_file_cache", Curve::BoolFactor { when_on: 1.05 })
        .effect("nginx.etag", Curve::BoolFactor { when_on: 0.995 })
        .effect(
            "nginx.worker_processes",
            Curve::OptimumLog {
                best: 4.0,
                width: 0.4,
                gain: 0.15,
            },
        )
        .effect(
            "nginx.keepalive_timeout",
            Curve::PerChoice {
                factors: vec![0.80, 1.0, 1.02, 1.02],
            },
        )
        .effect(
            "nginx.keepalive_requests",
            Curve::PerChoice {
                factors: vec![1.0, 1.04, 1.06],
            },
        )
        // OS-level effects.
        .effect(
            "CONFIG_UKCONSOLE",
            Curve::PerChoice {
                factors: vec![1.05, 1.0, 0.97],
            },
        )
        .effect(
            "CONFIG_LIBUKNETDEV_RX_RING",
            Curve::SaturatingLog {
                lo: 8.0,
                hi: 64.0,
                gain: 0.07,
            },
        )
        .effect("CONFIG_LIBUKDEBUG", Curve::BoolFactor { when_on: 0.72 })
        .effect(
            "CONFIG_LIBUKDEBUG_ASSERTIONS",
            Curve::BoolFactor { when_on: 0.85 },
        )
        .effect(
            "CONFIG_LIBUKDEBUG_TRACEPOINTS",
            Curve::BoolFactor { when_on: 0.93 },
        )
        .effect(
            "CONFIG_LIBUKALLOC_IFSTATS",
            Curve::BoolFactor { when_on: 0.95 },
        )
        .effect("CONFIG_STACKPROTECTOR", Curve::BoolFactor { when_on: 0.97 })
        .effect("CONFIG_LWIP_SACK", Curve::BoolFactor { when_on: 1.02 })
        .effect("CONFIG_LWIP_WND_SCALE", Curve::BoolFactor { when_on: 1.05 })
        .effect("CONFIG_PAGING", Curve::BoolFactor { when_on: 0.96 })
        // The unikernel pay-off: coherent combinations.
        .interaction(
            "pooled-memory-path",
            vec![
                ("CONFIG_LIBUKALLOC_TYPE", Cond::Eq(3.0)), // pool
                ("CONFIG_LWIP_POOLS", Cond::Eq(1.0)),
                ("CONFIG_LIBUKNETDEV_RX_RING", Cond::Ge(16.0)),
            ],
            1.50,
        )
        .interaction(
            "run-to-completion",
            vec![
                ("CONFIG_LIBUKSCHED_TYPE", Cond::Eq(0.0)), // coop
                ("CONFIG_LIBUKNETDEV_POLL", Cond::Eq(1.0)),
                ("CONFIG_LIBUKSCHED_IDLE_POLL", Cond::Eq(1.0)),
            ],
            1.40,
        )
        .interaction(
            "large-windows",
            vec![
                ("CONFIG_LWIP_BUFSIZE", Cond::Eq(2.0)), // large
                ("CONFIG_LWIP_WND_SCALE", Cond::Eq(1.0)),
            ],
            1.22,
        );
    let mem = PerfModel::new(0.01)
        .effect(
            "CONFIG_LWIP_BUFSIZE",
            Curve::PerChoice {
                factors: vec![0.8, 1.0, 1.5],
            },
        )
        .effect(
            "CONFIG_LIBUKNETDEV_RX_RING",
            Curve::SaturatingLog {
                lo: 1.0,
                hi: 64.0,
                gain: 0.5,
            },
        )
        .effect(
            "nginx.worker_processes",
            Curve::Linear {
                lo: 1.0,
                hi: 16.0,
                lo_factor: 1.0,
                hi_factor: 1.9,
            },
        );
    App {
        id: AppId::Nginx,
        bench_tool: "wrk",
        metric_name: "throughput",
        unit: "req/s",
        direction: MetricDirection::HigherBetter,
        base: 9_800.0,
        cores: 4,
        bench_duration_s: 30.0,
        mem_base_mb: 24.0,
        perf,
        mem,
    }
}

/// Unikraft crash rules: incoherent configurations fail at build, boot, or
/// under load, at roughly the same ~1/4–1/3 random rate as Linux.
pub fn crash_rules() -> Vec<CrashRule> {
    let rule = |name: &str, phase: Phase, conds: Vec<(&str, Cond)>| CrashRule {
        name: name.into(),
        phase,
        conds: conds.into_iter().map(|(p, c)| (p.to_string(), c)).collect(),
    };
    vec![
        rule(
            "boot:mimalloc-needs-zeroed-heap",
            Phase::Boot,
            vec![
                ("CONFIG_LIBUKALLOC_TYPE", Cond::Eq(2.0)), // mimalloc
                ("CONFIG_HEAP_INIT_ZERO", Cond::Eq(0.0)),
                ("CONFIG_PAGING", Cond::Eq(1.0)),
            ],
        ),
        rule(
            "hang:nothreads-on-coop",
            Phase::Run,
            vec![
                ("CONFIG_LWIP_NOTHREADS", Cond::Eq(1.0)),
                ("CONFIG_LIBUKSCHED_TYPE", Cond::Eq(0.0)), // coop
                ("CONFIG_LIBUKNETDEV_POLL", Cond::Eq(0.0)),
            ],
        ),
        rule(
            "build:pool-alloc-needs-pools",
            Phase::Build,
            vec![
                ("CONFIG_LIBUKALLOC_TYPE", Cond::Eq(3.0)), // pool
                ("CONFIG_LWIP_POOLS", Cond::Eq(0.0)),
                ("CONFIG_LIBUKMMAP", Cond::Eq(0.0)),
            ],
        ),
        rule(
            "run:ring-overflow",
            Phase::Run,
            vec![("CONFIG_LIBUKNETDEV_RX_RING", Cond::Le(2.0))],
        ),
        rule(
            "run:no-event-sources",
            Phase::Run,
            vec![
                ("CONFIG_LIBPOSIX_EVENTFD", Cond::Eq(0.0)),
                ("CONFIG_LIBVFSCORE_PIPE", Cond::Eq(0.0)),
                ("CONFIG_LIBUK9P", Cond::Eq(1.0)),
            ],
        ),
        rule(
            "run:workers-need-signals",
            Phase::Run,
            vec![
                ("nginx.worker_processes", Cond::Ge(15.0)),
                ("CONFIG_LIBUKSIGNAL", Cond::Eq(0.0)),
            ],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perfmodel::first_crash;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn space_is_33_params_with_paper_cardinality() {
        let s = space();
        assert_eq!(s.len(), 33);
        let nginx = s
            .specs()
            .iter()
            .filter(|p| p.name.starts_with("nginx."))
            .count();
        assert_eq!(nginx, 10, "10 application-level parameters");
        assert_eq!(s.len() - nginx, 23, "23 OS parameters");
        let lg = s.log10_cardinality();
        assert!(
            (13.3..13.8).contains(&lg),
            "log10 cardinality {lg} vs paper 13.57"
        );
    }

    #[test]
    fn default_config_runs_and_scores_base() {
        let s = space();
        let d = s.default_config().named(&s);
        assert!(first_crash(&crash_rules(), &d, &d).is_none());
        let app = nginx_app();
        assert!((app.perf.mean_factor(&d, &d) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn coherent_configuration_reaches_5x() {
        let s = space();
        let d = s.default_config().named(&s);
        let mut c = s.default_config();
        for (name, v) in [
            ("nginx.sendfile", Value::Bool(true)),
            ("nginx.tcp_nopush", Value::Bool(true)),
            ("nginx.gzip", Value::Bool(false)),
            ("nginx.access_log", Value::Bool(false)),
            ("nginx.open_file_cache", Value::Bool(true)),
            ("nginx.worker_processes", Value::Int(4)),
            ("nginx.keepalive_requests", Value::Choice(2)),
            ("CONFIG_UKCONSOLE", Value::Choice(0)),
            ("CONFIG_LIBUKNETDEV_RX_RING", Value::Int(32)),
            ("CONFIG_LIBUKALLOC_TYPE", Value::Choice(3)),
            ("CONFIG_LWIP_POOLS", Value::Bool(true)),
            ("CONFIG_LIBUKSCHED_TYPE", Value::Choice(0)),
            ("CONFIG_LIBUKNETDEV_POLL", Value::Bool(true)),
            ("CONFIG_LIBUKSCHED_IDLE_POLL", Value::Bool(true)),
            ("CONFIG_LWIP_BUFSIZE", Value::Choice(2)),
            ("CONFIG_LWIP_SACK", Value::Bool(true)),
        ] {
            assert!(c.set_by_name(&s, name, v), "{name}");
        }
        let view = c.named(&s);
        assert!(
            first_crash(&crash_rules(), &view, &d).is_none(),
            "the good region must be crash-free"
        );
        let f = nginx_app().perf.mean_factor(&view, &d);
        assert!((4.2..5.8).contains(&f), "coherent factor {f} should be ~5x");
    }

    #[test]
    fn random_crash_rate_matches_unikernel_expectations() {
        let s = space();
        let d = s.default_config().named(&s);
        let rules = crash_rules();
        let mut rng = StdRng::seed_from_u64(9);
        let n = 3000;
        let crashes = (0..n)
            .filter(|_| first_crash(&rules, &s.sample(&mut rng).named(&s), &d).is_some())
            .count();
        let rate = crashes as f64 / n as f64;
        assert!((0.18..0.40).contains(&rate), "unikraft crash rate {rate}");
    }

    #[test]
    fn random_search_rarely_reaches_half_of_peak() {
        // Fig. 9: random search does not find high-performance configs in
        // the 3-hour budget; the good region is a conjunction.
        let s = space();
        let d = s.default_config().named(&s);
        let app = nginx_app();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 2000;
        let good = (0..n)
            .filter(|_| app.perf.mean_factor(&s.sample(&mut rng).named(&s), &d) > 2.5)
            .count();
        assert!(
            (good as f64 / n as f64) < 0.02,
            "{good}/{n} random configs in the good region — interactions too easy"
        );
    }
}
