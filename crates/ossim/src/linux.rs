//! The simulated Linux targets: runtime parameter population, default
//! views, and crash rules.
//!
//! Table 1 counts 13 328 runtime options for Linux 6.0. Of these, a curated
//! core of ~45 real, named sysctls carries the ground-truth performance
//! and crash behaviour (see [`crate::apps`]); the rest are *inert* —
//! exactly like a real kernel, where the overwhelming majority of sysctls
//! do not affect any given workload. The search algorithms cannot tell the
//! two apart up front; learning to ignore the inert mass is the hard part
//! of the problem (§2.1).

use crate::curve::Cond;
use crate::perfmodel::{CrashRule, Phase};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wf_configspace::{ConfigSpace, NamedConfig, ParamKind, ParamSpec, Stage, Value};
use wf_kconfig::gen::LinuxVersion;
use wf_kconfig::{KconfigModel, SymbolType};

/// The curated, real-named runtime sysctls with ground-truth effects.
pub fn named_runtime_params() -> Vec<ParamSpec> {
    let mut out = Vec::new();
    let mut log = |name: &str, lo: i64, hi: i64, def: i64, doc: &str| {
        out.push(
            ParamSpec::new(name, ParamKind::log_int(lo, hi), Stage::Runtime)
                .with_default(Value::Int(def))
                .with_doc(doc),
        );
    };
    log(
        "net.core.somaxconn",
        16,
        65_535,
        128,
        "Max queued connections per listen socket.",
    );
    log(
        "net.core.netdev_max_backlog",
        8,
        65_536,
        1_000,
        "Input queue length per CPU.",
    );
    log(
        "net.core.rmem_default",
        2_048,
        33_554_432,
        212_992,
        "Default socket receive buffer.",
    );
    log(
        "net.core.rmem_max",
        2_048,
        33_554_432,
        212_992,
        "Max socket receive buffer.",
    );
    log(
        "net.core.wmem_default",
        2_048,
        33_554_432,
        212_992,
        "Default socket send buffer.",
    );
    log(
        "net.core.wmem_max",
        2_048,
        33_554_432,
        212_992,
        "Max socket send buffer.",
    );
    log(
        "net.ipv4.tcp_max_syn_backlog",
        64,
        65_536,
        512,
        "SYN backlog length.",
    );
    log(
        "net.ipv4.tcp_notsent_lowat",
        4_096,
        1_073_741_824,
        1_073_741_824,
        "Unsent low-watermark.",
    );
    log(
        "vm.min_free_kbytes",
        1_024,
        16_777_216,
        67_584,
        "Reserved free memory.",
    );
    log(
        "vm.nr_hugepages",
        0,
        4_096,
        0,
        "Persistent huge page pool size.",
    );
    log(
        "kernel.sched_min_granularity_ns",
        100_000,
        1_000_000_000,
        3_000_000,
        "Minimal preemption granularity.",
    );
    log(
        "kernel.printk_delay",
        0,
        10_000,
        0,
        "Delay per printk message (ms).",
    );
    log(
        "kernel.sched_wakeup_granularity_ns",
        100_000,
        1_000_000_000,
        4_000_000,
        "Wakeup preemption granularity.",
    );
    log(
        "kernel.sched_migration_cost_ns",
        10_000,
        100_000_000,
        500_000,
        "Task migration cost estimate.",
    );
    log(
        "kernel.threads-max",
        512,
        4_194_304,
        63_224,
        "System-wide thread limit.",
    );
    log(
        "kernel.pid_max",
        1_024,
        4_194_304,
        32_768,
        "Largest PID value.",
    );
    log(
        "fs.file-max",
        1_024,
        16_777_216,
        1_048_576,
        "System-wide open-file limit.",
    );
    log(
        "fs.nr_open",
        1_024,
        16_777_216,
        1_048_576,
        "Per-process open-file limit.",
    );
    log(
        "fs.aio-max-nr",
        1_024,
        16_777_216,
        65_536,
        "Max concurrent AIO requests.",
    );
    log(
        "fs.inotify.max_user_watches",
        1_024,
        16_777_216,
        65_536,
        "Max inotify watches per user.",
    );

    let mut int = |name: &str, lo: i64, hi: i64, def: i64, doc: &str| {
        out.push(
            ParamSpec::new(name, ParamKind::int(lo, hi), Stage::Runtime)
                .with_default(Value::Int(def))
                .with_doc(doc),
        );
    };
    int(
        "net.core.busy_poll",
        0,
        200,
        0,
        "Busy-poll budget for poll/select (µs).",
    );
    int(
        "net.core.busy_read",
        0,
        200,
        0,
        "Busy-poll budget for reads (µs).",
    );
    int(
        "net.ipv4.tcp_keepalive_time",
        60,
        14_400,
        7_200,
        "Keepalive idle time (s).",
    );
    int(
        "net.ipv4.tcp_fin_timeout",
        5,
        120,
        60,
        "FIN-WAIT-2 timeout (s).",
    );
    int("net.ipv4.tcp_fastopen", 0, 3, 1, "TCP Fast Open mode bits.");
    int("vm.swappiness", 0, 100, 60, "Anon vs file reclaim balance.");
    int("vm.dirty_ratio", 0, 100, 20, "Dirty page limit (% of RAM).");
    int(
        "vm.dirty_background_ratio",
        0,
        100,
        10,
        "Background writeback threshold.",
    );
    int(
        "vm.dirty_expire_centisecs",
        100,
        72_000,
        3_000,
        "Dirty page expiry.",
    );
    int(
        "vm.dirty_writeback_centisecs",
        0,
        72_000,
        500,
        "Writeback wakeup interval.",
    );
    int(
        "vm.stat_interval",
        1,
        120,
        1,
        "VM statistics update interval (s).",
    );
    int("vm.overcommit_memory", 0, 2, 0, "Overcommit policy.");
    int(
        "vm.overcommit_ratio",
        0,
        100,
        50,
        "Overcommit ratio (policy 2).",
    );
    int(
        "vm.compaction_proactiveness",
        0,
        100,
        20,
        "Proactive compaction aggressiveness.",
    );
    int("vm.page-cluster", 0, 10, 3, "Swap readahead (log2 pages).");
    int(
        "vm.vfs_cache_pressure",
        1,
        400,
        100,
        "Dentry/inode reclaim pressure.",
    );
    int("kernel.printk", 0, 10, 7, "Console log level.");
    int("kernel.panic", 0, 300, 0, "Reboot delay on panic.");
    int("kernel.randomize_va_space", 0, 2, 2, "ASLR mode.");
    int(
        "kernel.perf_event_paranoid",
        -1,
        3,
        2,
        "perf_event access control.",
    );

    let mut flag = |name: &str, def: bool, doc: &str| {
        out.push(
            ParamSpec::new(name, ParamKind::Bool, Stage::Runtime)
                .with_default(Value::Bool(def))
                .with_doc(doc),
        );
    };
    flag("net.ipv4.tcp_tw_reuse", false, "Reuse TIME-WAIT sockets.");
    flag(
        "net.ipv4.tcp_slow_start_after_idle",
        true,
        "Slow-start idle connections.",
    );
    flag("net.ipv4.tcp_timestamps", true, "TCP timestamps.");
    flag("net.ipv4.tcp_sack", true, "Selective acknowledgements.");
    flag(
        "net.ipv4.tcp_moderate_rcvbuf",
        true,
        "Receive buffer auto-tuning.",
    );
    flag(
        "vm.block_dump",
        false,
        "Block I/O debugging to the kernel log.",
    );
    flag(
        "kernel.sched_autogroup_enabled",
        true,
        "Desktop autogrouping.",
    );
    flag("kernel.numa_balancing", true, "Automatic NUMA balancing.");
    flag(
        "kernel.timer_migration",
        true,
        "Migrate timers to busy CPUs.",
    );
    flag("kernel.watchdog", true, "Soft/hard lockup detector.");
    flag("kernel.nmi_watchdog", true, "NMI hard lockup detector.");
    flag("kernel.panic_on_warn", false, "Panic on kernel WARN.");

    out.push(
        ParamSpec::new(
            "net.core.default_qdisc",
            ParamKind::choices(vec!["pfifo_fast", "fq", "fq_codel"]),
            Stage::Runtime,
        )
        .with_default(Value::Choice(0))
        .with_doc("Default queueing discipline."),
    );
    out.push(
        ParamSpec::new(
            "net.ipv4.tcp_congestion_control",
            ParamKind::choices(vec!["cubic", "reno", "bbr"]),
            Stage::Runtime,
        )
        .with_default(Value::Choice(0))
        .with_doc("TCP congestion control algorithm."),
    );
    out
}

/// Inert generated runtime sysctls: present, writable, ignored by every
/// ground-truth model.
pub fn inert_runtime_params(version: LinuxVersion, count: usize) -> Vec<ParamSpec> {
    let mut rng = StdRng::seed_from_u64(version.seed() ^ 0x5c71);
    let groups = ["net.ipv4", "net.core", "vm", "kernel", "fs", "dev", "debug"];
    let stems = [
        "cache_factor",
        "retry_count",
        "queue_len",
        "interval_ms",
        "threshold",
        "batch",
        "ratio",
        "limit",
        "budget",
        "timeout",
        "scan_size",
        "watermark",
    ];
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let group = groups[rng.random_range(0..groups.len())];
        let stem = stems[rng.random_range(0..stems.len())];
        let name = format!("{group}.gen_{stem}_{i}");
        let spec = match rng.random_range(0..3u8) {
            0 => ParamSpec::new(name, ParamKind::Bool, Stage::Runtime)
                .with_default(Value::Bool(rng.random())),
            1 => {
                let def = 1i64 << rng.random_range(4..16);
                ParamSpec::new(name, ParamKind::log_int(0, 1 << 24), Stage::Runtime)
                    .with_default(Value::Int(def))
            }
            _ => {
                let hi = 10i64.pow(rng.random_range(1..5));
                let def = rng.random_range(0..=hi);
                ParamSpec::new(name, ParamKind::int(0, hi), Stage::Runtime)
                    .with_default(Value::Int(def))
            }
        };
        out.push(spec.with_doc("Synthetic inert sysctl."));
    }
    out
}

/// The runtime search space: every named sysctl plus inert ones up to
/// `total` parameters. This models the *probed* subset of §3.4 — the
/// writable files the heuristic locates and types.
///
/// # Panics
///
/// Panics if `total` is smaller than the named population.
pub fn runtime_space(version: LinuxVersion, total: usize) -> ConfigSpace {
    let named = named_runtime_params();
    assert!(
        total >= named.len(),
        "runtime space needs at least the {} named parameters",
        named.len()
    );
    let mut space = ConfigSpace::new();
    let extra = total - named.len();
    for p in named {
        space.add(p);
    }
    for p in inert_runtime_params(version, extra) {
        space.add(p);
    }
    space
}

/// The *full* runtime population matching Table 1's census (13 328 for
/// v6.0). Used by the census experiment; search experiments use the probed
/// subset.
pub fn full_runtime_space(version: LinuxVersion) -> ConfigSpace {
    runtime_space(version, version.runtime_option_count())
}

/// The default view of every runtime parameter (named + nothing else;
/// inert parameters default per-space and are irrelevant to the models).
pub fn runtime_defaults() -> NamedConfig {
    NamedConfig::from_pairs(
        named_runtime_params()
            .into_iter()
            .map(|p| (p.name, p.default)),
    )
}

/// The OS-level runtime crash rules.
///
/// These are deliberately *application-independent*: a bad
/// `vm.overcommit_*` combination OOMs whatever is running. That is what
/// makes DeepTune's crash knowledge transferable between applications
/// (§3.3, crash rates < 10 % with transfer learning).
pub fn runtime_crash_rules() -> Vec<CrashRule> {
    let rule = |name: &str, phase: Phase, conds: Vec<(&str, Cond)>| CrashRule {
        name: name.into(),
        phase,
        conds: conds.into_iter().map(|(p, c)| (p.to_string(), c)).collect(),
    };
    vec![
        rule(
            "oom:overcommit-never",
            Phase::Run,
            vec![
                ("vm.overcommit_memory", Cond::Eq(2.0)),
                ("vm.overcommit_ratio", Cond::Le(20.0)),
            ],
        ),
        rule(
            "hang:min-free-huge",
            Phase::Run,
            vec![("vm.min_free_kbytes", Cond::Ge(8_388_608.0))],
        ),
        rule(
            "oom:hugepage-eat-ram",
            Phase::Run,
            vec![("vm.nr_hugepages", Cond::Ge(2_048.0))],
        ),
        rule(
            "stall:dirty-zero",
            Phase::Run,
            vec![("vm.dirty_ratio", Cond::Le(1.0))],
        ),
        rule(
            "panic:warn-flood",
            Phase::Run,
            vec![
                ("kernel.panic_on_warn", Cond::Eq(1.0)),
                ("kernel.printk", Cond::Ge(9.0)),
            ],
        ),
        rule(
            "oom:rmem-overflow",
            Phase::Run,
            vec![("net.core.rmem_default", Cond::Ge(16_777_216.0))],
        ),
        rule(
            "pid:bitmap-overflow",
            Phase::Run,
            vec![("kernel.pid_max", Cond::Ge(2_097_152.0))],
        ),
        rule(
            "hang:sched-granularity",
            Phase::Run,
            vec![("kernel.sched_min_granularity_ns", Cond::Ge(500_000_000.0))],
        ),
    ]
}

/// Compile-time crash rules for a synthetic kernel model: curated rules on
/// the real-named core plus deterministic pair rules over generated
/// symbols (a feature that breaks when another is missing — the classic
/// "valid per Kconfig, fails to build/boot" population of §2.2).
pub fn compile_crash_rules(version: LinuxVersion, model: &KconfigModel) -> Vec<CrashRule> {
    let rule = |name: &str, phase: Phase, conds: Vec<(&str, Cond)>| CrashRule {
        name: name.into(),
        phase,
        conds: conds.into_iter().map(|(p, c)| (p.to_string(), c)).collect(),
    };
    // On/off conditions over compile values: bool encodes 0/1, tristate
    // levels are n=0, m=1, y=2, so `>= 1` means "present in any form".
    let on = Cond::Ge(1.0);
    let off = Cond::Le(0.0);
    let mut rules = vec![
        rule(
            "build:kasan+debuginfo",
            Phase::Build,
            vec![("KASAN", on), ("DEBUG_INFO", on)],
        ),
        rule(
            "boot:kasan+lockdep",
            Phase::Boot,
            vec![("KASAN", on), ("LOCKDEP", on)],
        ),
        rule(
            "hang:pagealloc+slubdebug",
            Phase::Run,
            vec![("DEBUG_PAGEALLOC", on), ("SLUB_DEBUG", on)],
        ),
        rule("boot:no-sysfs", Phase::Boot, vec![("SYSFS", off)]),
        rule("boot:no-virtio-blk", Phase::Boot, vec![("VIRTIO_BLK", off)]),
        rule("run:no-procfs", Phase::Run, vec![("PROC_FS", off)]),
        rule("run:no-virtio-net", Phase::Run, vec![("VIRTIO_NET", off)]),
        rule("run:no-epoll", Phase::Run, vec![("EPOLL", off)]),
        rule("run:no-futex", Phase::Run, vec![("FUTEX", off)]),
        rule("run:no-shmem", Phase::Run, vec![("SHMEM", off)]),
    ];
    // Deterministic generated pair rules: ENABLED(a) && DISABLED(b) fails.
    // Pairs that would fire on the default configuration are skipped — the
    // default kernel must always build, boot, and run (§2.2 compares
    // against it).
    let defaults = {
        let solver = wf_kconfig::Solver::new(model);
        let asg = solver.defconfig();
        let mut view = NamedConfig::empty();
        for (name, value) in asg.iter() {
            let v = match value {
                wf_kconfig::SymValue::Tri(t) => Value::Tristate(*t),
                wf_kconfig::SymValue::Int(i) => Value::Int(*i),
                wf_kconfig::SymValue::Str(_) => continue,
            };
            view.set(name.to_string(), v);
        }
        view
    };
    let mut rng = StdRng::seed_from_u64(version.seed() ^ 0xcafe);
    let candidates: Vec<&str> = model
        .symbols()
        .iter()
        .filter(|s| {
            matches!(s.stype, SymbolType::Bool | SymbolType::Tristate)
                && s.prompt.is_some()
                && s.name.contains('_')
                && !s.name.starts_with("DBG")
        })
        .map(|s| s.name.as_str())
        .collect();
    let phases = [Phase::Build, Phase::Boot, Phase::Run];
    let mut emitted = 0;
    let mut attempts = 0;
    while emitted < 28 && candidates.len() >= 2 && attempts < 10_000 {
        attempts += 1;
        let a = candidates[rng.random_range(0..candidates.len())];
        let b = candidates[rng.random_range(0..candidates.len())];
        if a == b {
            continue;
        }
        let candidate = rule(
            &format!("gen:{}-needs-{}", a.to_lowercase(), b.to_lowercase()),
            phases[emitted % phases.len()],
            vec![(a, on), (b, off)],
        );
        if candidate.triggers(&defaults, &defaults) {
            continue;
        }
        rules.push(candidate);
        emitted += 1;
    }
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perfmodel::first_crash;
    use wf_kconfig::gen::synthesize;

    #[test]
    fn named_params_are_unique_runtime_specs() {
        let params = named_runtime_params();
        assert!(
            params.len() >= 45,
            "named population too small: {}",
            params.len()
        );
        let mut names = std::collections::HashSet::new();
        for p in &params {
            assert_eq!(p.stage, Stage::Runtime);
            assert!(p.kind.admits(&p.default), "{}", p.name);
            assert!(names.insert(p.name.clone()), "duplicate {}", p.name);
        }
    }

    #[test]
    fn runtime_space_sizes() {
        let s = runtime_space(LinuxVersion::V4_19, 200);
        assert_eq!(s.len(), 200);
        assert_eq!(s.census().runtime, 200);
        let full = full_runtime_space(LinuxVersion::V6_0);
        assert_eq!(full.len(), 13_328);
    }

    #[test]
    fn default_config_never_crashes() {
        let rules = runtime_crash_rules();
        let d = runtime_defaults();
        assert!(first_crash(&rules, &d, &d).is_none());
    }

    #[test]
    fn crash_rules_fire_on_their_regions() {
        let rules = runtime_crash_rules();
        let d = runtime_defaults();
        let mut v = NamedConfig::empty();
        v.set("vm.overcommit_memory", Value::Int(2));
        v.set("vm.overcommit_ratio", Value::Int(5));
        let hit = first_crash(&rules, &v, &d).expect("overcommit rule fires");
        assert_eq!(hit.name, "oom:overcommit-never");
    }

    #[test]
    fn random_crash_rate_near_one_third() {
        // §2.2: about a third of random configurations crash.
        let space = runtime_space(LinuxVersion::V4_19, 200);
        let rules = runtime_crash_rules();
        let d = runtime_defaults();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 3_000;
        let crashes = (0..n)
            .filter(|_| {
                let c = space.sample(&mut rng);
                first_crash(&rules, &c.named(&space), &d).is_some()
            })
            .count();
        let rate = crashes as f64 / n as f64;
        assert!(
            (0.28..=0.40).contains(&rate),
            "random crash rate {rate} outside the paper's ~1/3"
        );
    }

    #[test]
    fn compile_rules_do_not_fire_on_defconfig() {
        let model = synthesize(LinuxVersion::V2_6_13);
        let rules = compile_crash_rules(LinuxVersion::V2_6_13, &model);
        let space = wf_kconfig::space::compile_space(&model);
        let d = space.default_config().named(&space);
        assert!(
            first_crash(&rules, &d, &d).is_none(),
            "default kernel must build/boot/run"
        );
    }

    #[test]
    fn inert_params_are_deterministic() {
        let a = inert_runtime_params(LinuxVersion::V4_19, 50);
        let b = inert_runtime_params(LinuxVersion::V4_19, 50);
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
    }

    #[test]
    fn apps_only_touch_named_params() {
        let mut named: std::collections::HashSet<String> =
            named_runtime_params().into_iter().map(|p| p.name).collect();
        for p in wf_kconfig::cmdline::boot_options(LinuxVersion::V6_0) {
            named.insert(p.name);
        }
        for id in crate::apps::AppId::ALL {
            let app = crate::apps::App::by_id(id);
            for p in app.perf.touched() {
                assert!(named.contains(p), "{id}: unknown effect param {p}");
            }
            for p in app.mem.touched() {
                assert!(named.contains(p), "{id}: unknown memory param {p}");
            }
        }
    }

    #[test]
    fn runtime_crash_rules_only_touch_named_params() {
        let named: std::collections::HashSet<String> =
            named_runtime_params().into_iter().map(|p| p.name).collect();
        for r in runtime_crash_rules() {
            for (p, _) in &r.conds {
                assert!(named.contains(p), "{}: unknown rule param {p}", r.name);
            }
        }
    }
}
