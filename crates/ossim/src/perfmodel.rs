//! Ground-truth performance and crash models.
//!
//! The paper's testbed measures a real kernel; this reproduction measures a
//! *model* with the same observable statistics (see DESIGN.md §1). A
//! [`PerfModel`] combines:
//!
//! * per-parameter multiplicative [`Curve`]s — normalized so the default
//!   configuration has factor exactly 1.0;
//! * conjunction [`Interaction`] bonuses — how unikernels reward finding
//!   *combinations* (Fig. 9), and why purely coordinate-wise search
//!   underperforms;
//! * multiplicative log-normal measurement noise.
//!
//! [`CrashRule`]s are deterministic conjunctions over parameter values that
//! decide whether a configuration fails, and in which [`Phase`]. Determinism
//! matters: §3.2's DeepTune learns to *predict* crashes from configuration
//! features, which is only possible if crashing is a function of the
//! configuration (as it overwhelmingly is on real kernels: a bad
//! `vm.overcommit_*` combination OOMs every run).

use crate::curve::{Cond, Curve};
use rand::Rng;
use wf_configspace::NamedConfig;
use wf_nn::rng::lognormal;

/// The lifecycle phase in which a configuration can fail (§2.2 counts
/// build, boot, and runtime failures together as "crashes").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Phase {
    /// Kernel build fails.
    Build,
    /// Kernel builds but does not boot (or hangs at boot).
    Boot,
    /// System boots but the application crashes or hangs.
    Run,
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Phase::Build => "build",
            Phase::Boot => "boot",
            Phase::Run => "run",
        })
    }
}

/// One parameter's contribution to the performance model.
#[derive(Clone, Debug, PartialEq)]
pub struct ParamEffect {
    /// Parameter name (resolved against the configuration view).
    pub param: String,
    /// The effect curve over the parameter's raw value.
    pub curve: Curve,
}

/// A conjunction bonus: when all conditions hold, multiply by `factor`.
#[derive(Clone, Debug, PartialEq)]
pub struct Interaction {
    /// Diagnostic name.
    pub name: String,
    /// All conditions must hold (conjunction) for the bonus to apply.
    pub conds: Vec<(String, Cond)>,
    /// The multiplicative bonus (may be < 1 for a penalty).
    pub factor: f64,
}

/// A deterministic crash rule.
#[derive(Clone, Debug, PartialEq)]
pub struct CrashRule {
    /// Diagnostic name (surfaced in crash reports, e.g.
    /// `oom:overcommit-never`).
    pub name: String,
    /// Failure phase.
    pub phase: Phase,
    /// All conditions must hold for the rule to fire.
    pub conds: Vec<(String, Cond)>,
}

impl CrashRule {
    /// Returns `true` if the rule fires under `view` (falling back to
    /// `defaults` for unassigned parameters).
    pub fn triggers(&self, view: &NamedConfig, defaults: &NamedConfig) -> bool {
        self.conds
            .iter()
            .all(|(p, c)| match value_of(view, defaults, p) {
                Some(v) => c.holds(v),
                // A parameter absent from both views cannot satisfy a
                // condition; the rule is inert for this configuration.
                None => false,
            })
    }
}

/// Finds the first crash rule that fires, earliest phase first.
pub fn first_crash<'r>(
    rules: &'r [CrashRule],
    view: &NamedConfig,
    defaults: &NamedConfig,
) -> Option<&'r CrashRule> {
    let mut hit: Option<&CrashRule> = None;
    for rule in rules {
        if rule.triggers(view, defaults) {
            match hit {
                Some(prev) if prev.phase <= rule.phase => {}
                _ => hit = Some(rule),
            }
        }
    }
    hit
}

/// A ground-truth performance model for one application on one OS.
#[derive(Clone, Debug, Default)]
pub struct PerfModel {
    effects: Vec<ParamEffect>,
    interactions: Vec<Interaction>,
    noise_sigma: f64,
}

impl PerfModel {
    /// Creates an empty model (factor 1 everywhere) with the given
    /// log-normal noise sigma.
    pub fn new(noise_sigma: f64) -> Self {
        Self {
            effects: Vec::new(),
            interactions: Vec::new(),
            noise_sigma,
        }
    }

    /// Adds a per-parameter effect (builder style).
    pub fn effect(mut self, param: impl Into<String>, curve: Curve) -> Self {
        self.effects.push(ParamEffect {
            param: param.into(),
            curve,
        });
        self
    }

    /// Adds an interaction bonus (builder style).
    pub fn interaction(
        mut self,
        name: impl Into<String>,
        conds: Vec<(&str, Cond)>,
        factor: f64,
    ) -> Self {
        self.interactions.push(Interaction {
            name: name.into(),
            conds: conds.into_iter().map(|(p, c)| (p.to_string(), c)).collect(),
            factor,
        });
        self
    }

    /// Measurement noise sigma (log-normal).
    pub fn noise_sigma(&self) -> f64 {
        self.noise_sigma
    }

    /// The deterministic factor of `view` relative to `defaults`.
    ///
    /// Equals exactly 1.0 when `view` assigns every parameter its default
    /// value: each curve is normalized by its value at the default, and
    /// interactions active at the default are divided out.
    pub fn mean_factor(&self, view: &NamedConfig, defaults: &NamedConfig) -> f64 {
        let mut f = 1.0;
        for e in &self.effects {
            let def = match value_of(defaults, defaults, &e.param) {
                Some(v) => v,
                None => continue,
            };
            let cur = value_of(view, defaults, &e.param).unwrap_or(def);
            let denom = e.curve.raw_factor(def);
            if denom > 0.0 {
                f *= e.curve.raw_factor(cur) / denom;
            }
        }
        for i in &self.interactions {
            let now = i
                .conds
                .iter()
                .all(|(p, c)| value_of(view, defaults, p).is_some_and(|v| c.holds(v)));
            let at_default = i
                .conds
                .iter()
                .all(|(p, c)| value_of(defaults, defaults, p).is_some_and(|v| c.holds(v)));
            if now {
                f *= i.factor;
            }
            if at_default {
                f /= i.factor;
            }
        }
        f
    }

    /// One noisy measurement factor.
    pub fn sample_factor(
        &self,
        view: &NamedConfig,
        defaults: &NamedConfig,
        rng: &mut impl Rng,
    ) -> f64 {
        let mean = self.mean_factor(view, defaults);
        if self.noise_sigma <= 0.0 {
            mean
        } else {
            mean * lognormal(rng, 0.0, self.noise_sigma)
        }
    }

    /// Names of all parameters the model actually reacts to. Used by the
    /// calibration tests and the Fig. 5 ground-truth check.
    pub fn touched(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self
            .effects
            .iter()
            .map(|e| e.param.as_str())
            .chain(
                self.interactions
                    .iter()
                    .flat_map(|i| i.conds.iter().map(|(p, _)| p.as_str())),
            )
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The per-parameter effects (read-only).
    pub fn effects(&self) -> &[ParamEffect] {
        &self.effects
    }

    /// The interactions (read-only).
    pub fn interactions(&self) -> &[Interaction] {
        &self.interactions
    }

    /// The largest achievable mean factor over a coarse scan of each
    /// effect's curve plus all-positive interactions. Upper bound used by
    /// calibration tests (coordinate-wise maximum; exact for multiplicative
    /// models without conflicting conditions).
    pub fn headroom_bound(&self, defaults: &NamedConfig) -> f64 {
        let mut f = 1.0;
        for e in &self.effects {
            let def = match value_of(defaults, defaults, &e.param) {
                Some(v) => v,
                None => continue,
            };
            let denom = e.curve.raw_factor(def);
            if denom <= 0.0 {
                continue;
            }
            // Scan a log-spaced grid plus the default.
            let mut best = 1.0_f64;
            for k in -1..=60 {
                let v = if k < 0 { def } else { 2.0_f64.powi(k / 2) };
                best = best.max(e.curve.raw_factor(v) / denom);
            }
            // Small-domain curves (bools/choices) need the exact points.
            for v in 0..8 {
                best = best.max(e.curve.raw_factor(v as f64) / denom);
            }
            f *= best;
        }
        for i in &self.interactions {
            if i.factor > 1.0 {
                f *= i.factor;
            }
            let at_default = i
                .conds
                .iter()
                .all(|(p, c)| value_of(defaults, defaults, p).is_some_and(|v| c.holds(v)));
            if at_default && i.factor > 1.0 {
                f /= i.factor;
            } else if at_default && i.factor < 1.0 {
                f /= i.factor; // removing a default penalty is headroom
            }
        }
        f
    }
}

/// Raw numeric value of `param` under `view`, falling back to `defaults`.
fn value_of(view: &NamedConfig, defaults: &NamedConfig, param: &str) -> Option<f64> {
    view.get(param)
        .or_else(|| defaults.get(param))
        .map(|v| v.as_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wf_configspace::Value;

    fn defaults() -> NamedConfig {
        NamedConfig::from_pairs([
            ("somaxconn".to_string(), Value::Int(128)),
            ("printk".to_string(), Value::Int(7)),
            ("busy".to_string(), Value::Bool(false)),
        ])
    }

    fn model() -> PerfModel {
        PerfModel::new(0.0)
            .effect(
                "somaxconn",
                Curve::SaturatingLog {
                    lo: 128.0,
                    hi: 4096.0,
                    gain: 0.08,
                },
            )
            .effect(
                "printk",
                Curve::Step {
                    at: 8.0,
                    below: 1.0,
                    above: 0.85,
                },
            )
            .interaction(
                "busy+backlog",
                vec![("busy", Cond::Eq(1.0)), ("somaxconn", Cond::Ge(1024.0))],
                1.05,
            )
    }

    #[test]
    fn default_config_has_factor_one() {
        let m = model();
        let d = defaults();
        assert!((m.mean_factor(&d, &d) - 1.0).abs() < 1e-12);
        // An empty view also falls back to defaults.
        assert!((m.mean_factor(&NamedConfig::empty(), &d) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn effects_compose_multiplicatively() {
        let m = model();
        let d = defaults();
        let mut v = NamedConfig::empty();
        v.set("somaxconn", Value::Int(4096));
        v.set("printk", Value::Int(9));
        let f = m.mean_factor(&v, &d);
        assert!((f - 1.08 * 0.85).abs() < 1e-9, "f={f}");
    }

    #[test]
    fn interaction_requires_all_conditions() {
        let m = model();
        let d = defaults();
        let mut v = NamedConfig::empty();
        v.set("busy", Value::Bool(true));
        // Only one condition holds: no bonus, no per-param change.
        let without = m.mean_factor(&v, &d);
        assert!((without - 1.0).abs() < 1e-9, "without={without}");
        v.set("somaxconn", Value::Int(4096));
        // Both conditions hold: saturated somaxconn gain times the bonus.
        let with = m.mean_factor(&v, &d);
        assert!((with - 1.08 * 1.05).abs() < 1e-9, "with={with}");
    }

    #[test]
    fn noise_is_multiplicative_and_centered() {
        let m = PerfModel::new(0.02).effect(
            "somaxconn",
            Curve::SaturatingLog {
                lo: 128.0,
                hi: 4096.0,
                gain: 0.08,
            },
        );
        let d = defaults();
        let mut rng = StdRng::seed_from_u64(3);
        let n = 2000;
        let mean: f64 = (0..n)
            .map(|_| m.sample_factor(&d, &d, &mut rng))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn crash_rule_conjunction() {
        let rule = CrashRule {
            name: "oom".into(),
            phase: Phase::Run,
            conds: vec![
                ("overcommit".into(), Cond::Eq(2.0)),
                ("ratio".into(), Cond::Le(25.0)),
            ],
        };
        let d = NamedConfig::from_pairs([
            ("overcommit".to_string(), Value::Int(0)),
            ("ratio".to_string(), Value::Int(50)),
        ]);
        assert!(!rule.triggers(&d, &d));
        let mut v = NamedConfig::empty();
        v.set("overcommit", Value::Int(2));
        assert!(!rule.triggers(&v, &d), "ratio still at default 50");
        v.set("ratio", Value::Int(10));
        assert!(rule.triggers(&v, &d));
    }

    #[test]
    fn first_crash_prefers_earliest_phase() {
        let rules = vec![
            CrashRule {
                name: "run-rule".into(),
                phase: Phase::Run,
                conds: vec![("x".into(), Cond::Ge(1.0))],
            },
            CrashRule {
                name: "boot-rule".into(),
                phase: Phase::Boot,
                conds: vec![("x".into(), Cond::Ge(1.0))],
            },
        ];
        let d = NamedConfig::from_pairs([("x".to_string(), Value::Int(5))]);
        let hit = first_crash(&rules, &d, &d).unwrap();
        assert_eq!(hit.name, "boot-rule");
    }

    #[test]
    fn touched_lists_unique_params() {
        let m = model();
        assert_eq!(m.touched(), vec!["busy", "printk", "somaxconn"]);
    }

    #[test]
    fn headroom_bound_reflects_gains() {
        let m = model();
        let d = defaults();
        let bound = m.headroom_bound(&d);
        // 1.08 (somaxconn) * 1.0 (printk already best) * 1.05 (interaction).
        assert!((bound - 1.08 * 1.05).abs() < 1e-6, "bound={bound}");
    }
}
