//! The virtual `/proc/sys` + `/sys` tree.
//!
//! §3.4's space-inference heuristic works against the kernel's virtual
//! filesystems: list writable files, read defaults, infer types from the
//! default values, and estimate ranges by scaling the default up/down and
//! attempting writes. This module provides that surface for the simulated
//! kernel, so the prober in `wf-platform` exercises the same code path the
//! paper describes.

use std::collections::HashMap;
use std::fmt;
use wf_configspace::{ConfigSpace, NamedConfig, ParamKind, Stage, Value};

/// Why a write was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WriteError {
    /// No file at that path.
    NotFound,
    /// File exists but is read-only.
    ReadOnly,
    /// Value rejected by the kernel (wrong type / out of range), like
    /// `EINVAL` from a real sysctl handler.
    Invalid,
}

impl fmt::Display for WriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            WriteError::NotFound => "no such file",
            WriteError::ReadOnly => "read-only file",
            WriteError::Invalid => "invalid argument",
        })
    }
}

impl std::error::Error for WriteError {}

/// One virtual file.
#[derive(Clone, Debug)]
struct SysctlFile {
    /// Dotted sysctl name (`net.core.somaxconn`).
    name: String,
    /// Whether writes are permitted.
    writable: bool,
    /// The parameter's domain (the *kernel* knows it; the prober doesn't).
    kind: ParamKind,
    /// Current value.
    value: Value,
}

/// A virtual sysctl tree for one booted kernel.
///
/// Files are addressed by their dotted sysctl name; [`SysctlTree::path_of`]
/// renders the `/proc/sys/...` path the paper's heuristic would see.
#[derive(Clone, Debug, Default)]
pub struct SysctlTree {
    files: Vec<SysctlFile>,
    index: HashMap<String, usize>,
}

impl SysctlTree {
    /// Builds the tree from a configuration space: every runtime-stage
    /// parameter becomes a writable file initialized to its default.
    pub fn from_space(space: &ConfigSpace) -> Self {
        let mut tree = SysctlTree::default();
        for spec in space.specs() {
            if spec.stage != Stage::Runtime {
                continue;
            }
            tree.add_file(&spec.name, true, spec.kind.clone(), spec.default);
        }
        tree
    }

    /// Adds a read-only file (kernel state exports like `kernel.version`);
    /// the §3.4 heuristic must skip these.
    pub fn add_readonly(&mut self, name: &str, value: Value, kind: ParamKind) {
        self.add_file(name, false, kind, value);
    }

    fn add_file(&mut self, name: &str, writable: bool, kind: ParamKind, value: Value) {
        assert!(
            !self.index.contains_key(name),
            "duplicate sysctl file {name}"
        );
        self.index.insert(name.to_string(), self.files.len());
        self.files.push(SysctlFile {
            name: name.to_string(),
            writable,
            kind,
            value,
        });
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// Returns `true` if the tree has no files.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Names of all writable files, in declaration order.
    pub fn list_writable(&self) -> Vec<&str> {
        self.files
            .iter()
            .filter(|f| f.writable)
            .map(|f| f.name.as_str())
            .collect()
    }

    /// The `/proc/sys` path for a dotted name.
    pub fn path_of(name: &str) -> String {
        format!("/proc/sys/{}", name.replace('.', "/"))
    }

    /// Reads a file's current value, rendered the way the kernel would
    /// (integers as decimal, booleans as `0`/`1`, enums as their string).
    pub fn read(&self, name: &str) -> Option<String> {
        let f = &self.files[*self.index.get(name)?];
        Some(render(&f.kind, f.value))
    }

    /// Writes raw text to a file, with kernel-style validation.
    pub fn write(&mut self, name: &str, raw: &str) -> Result<(), WriteError> {
        let idx = *self.index.get(name).ok_or(WriteError::NotFound)?;
        let f = &mut self.files[idx];
        if !f.writable {
            return Err(WriteError::ReadOnly);
        }
        let value = parse(&f.kind, raw).ok_or(WriteError::Invalid)?;
        f.value = value;
        Ok(())
    }

    /// Applies every runtime value from a named view (the platform does
    /// this after boot, before the benchmark).
    ///
    /// Returns the names whose writes were rejected — with a space built by
    /// [`SysctlTree::from_space`] this is always empty, but the prober's
    /// exploratory writes go through [`SysctlTree::write`] and may fail.
    pub fn apply(&mut self, view: &NamedConfig) -> Vec<String> {
        let mut rejected = Vec::new();
        for (name, value) in view.iter() {
            let Some(&idx) = self.index.get(name) else {
                continue;
            };
            let f = &mut self.files[idx];
            if f.writable && f.kind.admits(&value) {
                f.value = value;
            } else {
                rejected.push(name.to_string());
            }
        }
        rejected
    }

    /// The current values as a named view.
    pub fn snapshot(&self) -> NamedConfig {
        NamedConfig::from_pairs(self.files.iter().map(|f| (f.name.clone(), f.value)))
    }
}

/// Renders a value the way the corresponding `/proc/sys` file would.
fn render(kind: &ParamKind, value: Value) -> String {
    match (kind, value) {
        (_, Value::Bool(b)) => if b { "1" } else { "0" }.into(),
        (_, Value::Int(v)) => v.to_string(),
        (ParamKind::Enum { choices }, Value::Choice(c)) => {
            choices.get(c).cloned().unwrap_or_default()
        }
        (_, Value::Choice(c)) => c.to_string(),
        (_, Value::Tristate(t)) => t.level().to_string(),
    }
}

/// Parses raw text against a file's domain; `None` means `EINVAL`.
fn parse(kind: &ParamKind, raw: &str) -> Option<Value> {
    let raw = raw.trim();
    match kind {
        ParamKind::Bool => match raw {
            "0" => Some(Value::Bool(false)),
            "1" => Some(Value::Bool(true)),
            _ => None,
        },
        ParamKind::Int { min, max, .. } | ParamKind::Hex { min, max } => {
            let v: i64 = raw.parse().ok()?;
            (v >= *min && v <= *max).then_some(Value::Int(v))
        }
        ParamKind::Enum { choices } => choices.iter().position(|c| c == raw).map(Value::Choice),
        ParamKind::Tristate => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_configspace::ParamSpec;

    fn space() -> ConfigSpace {
        let mut s = ConfigSpace::new();
        s.add(
            ParamSpec::new(
                "net.core.somaxconn",
                ParamKind::log_int(16, 65535),
                Stage::Runtime,
            )
            .with_default(Value::Int(128)),
        );
        s.add(
            ParamSpec::new("vm.swappiness", ParamKind::int(0, 100), Stage::Runtime)
                .with_default(Value::Int(60)),
        );
        s.add(
            ParamSpec::new(
                "net.ipv4.tcp_congestion_control",
                ParamKind::choices(vec!["cubic", "reno", "bbr"]),
                Stage::Runtime,
            )
            .with_default(Value::Choice(0)),
        );
        s.add(
            ParamSpec::new("kernel.timer_migration", ParamKind::Bool, Stage::Runtime)
                .with_default(Value::Bool(true)),
        );
        // A compile-time parameter must NOT appear in the tree.
        s.add(ParamSpec::new(
            "CONFIG_SMP",
            ParamKind::Bool,
            Stage::CompileTime,
        ));
        s
    }

    #[test]
    fn tree_exposes_only_runtime_params() {
        let t = SysctlTree::from_space(&space());
        assert_eq!(t.len(), 4);
        assert!(t.read("CONFIG_SMP").is_none());
    }

    #[test]
    fn reads_render_like_proc() {
        let t = SysctlTree::from_space(&space());
        assert_eq!(t.read("net.core.somaxconn").as_deref(), Some("128"));
        assert_eq!(t.read("kernel.timer_migration").as_deref(), Some("1"));
        assert_eq!(
            t.read("net.ipv4.tcp_congestion_control").as_deref(),
            Some("cubic")
        );
    }

    #[test]
    fn writes_validate_ranges() {
        let mut t = SysctlTree::from_space(&space());
        assert_eq!(t.write("net.core.somaxconn", "1024"), Ok(()));
        assert_eq!(t.read("net.core.somaxconn").as_deref(), Some("1024"));
        assert_eq!(
            t.write("net.core.somaxconn", "8"),
            Err(WriteError::Invalid),
            "below the kernel's floor"
        );
        assert_eq!(t.write("vm.swappiness", "101"), Err(WriteError::Invalid));
        assert_eq!(t.write("nope", "1"), Err(WriteError::NotFound));
    }

    #[test]
    fn enum_writes_accept_choice_strings() {
        let mut t = SysctlTree::from_space(&space());
        assert_eq!(t.write("net.ipv4.tcp_congestion_control", "bbr"), Ok(()));
        assert_eq!(
            t.read("net.ipv4.tcp_congestion_control").as_deref(),
            Some("bbr")
        );
        assert_eq!(
            t.write("net.ipv4.tcp_congestion_control", "vegas"),
            Err(WriteError::Invalid)
        );
    }

    #[test]
    fn readonly_files_reject_writes_and_are_not_listed() {
        let mut t = SysctlTree::from_space(&space());
        t.add_readonly("kernel.version", Value::Int(419), ParamKind::int(0, 10000));
        assert_eq!(t.write("kernel.version", "1"), Err(WriteError::ReadOnly));
        assert!(!t.list_writable().contains(&"kernel.version"));
        assert_eq!(t.list_writable().len(), 4);
    }

    #[test]
    fn apply_sets_values_and_reports_rejections() {
        let mut t = SysctlTree::from_space(&space());
        let mut view = NamedConfig::empty();
        view.set("vm.swappiness", Value::Int(10));
        view.set("unknown.param", Value::Int(1));
        let rejected = t.apply(&view);
        assert_eq!(t.read("vm.swappiness").as_deref(), Some("10"));
        assert!(
            rejected.is_empty(),
            "unknown names are skipped, not rejected"
        );
    }

    #[test]
    fn paths_mirror_proc_layout() {
        assert_eq!(
            SysctlTree::path_of("net.core.somaxconn"),
            "/proc/sys/net/core/somaxconn"
        );
    }

    #[test]
    fn snapshot_round_trips() {
        let mut t = SysctlTree::from_space(&space());
        t.write("vm.swappiness", "33").unwrap();
        let snap = t.snapshot();
        assert_eq!(snap.int_or("vm.swappiness", 0), 33);
        assert_eq!(snap.int_or("net.core.somaxconn", 0), 128);
    }
}
