//! Kernel image / memory footprint model (Fig. 10, Fig. 11, Table 4).
//!
//! Footprint is a deterministic function of the enabled compile-time
//! options, exactly as on a real kernel: every enabled feature contributes
//! code and static data. Contributions are:
//!
//! * curated for the symbols whose cost is folklore (DEBUG_INFO, KASAN,
//!   LOCKDEP, ...);
//! * derived deterministically from a hash of the symbol name otherwise,
//!   so the model is stable across runs without hand-listing 20 000
//!   symbols;
//! * discounted for `m` (module) values: modules stay on disk until
//!   loaded, so they cost less resident memory than built-ins.
//!
//! The base is *calibrated*: [`FootprintModel::calibrated`] fixes the base
//! so a given default configuration lands exactly on a target footprint
//! (210 MB for the paper's RISC-V default, Fig. 10).

use wf_configspace::{ConfigSpace, Configuration, ParamKind, Stage, Tristate, Value};

/// Resident-memory weight of a module relative to a built-in.
const MODULE_WEIGHT: f64 = 0.4;

/// Deterministic per-feature footprint model.
#[derive(Clone, Debug)]
pub struct FootprintModel {
    base_mb: f64,
    /// Curated (name, built-in cost in MB) overrides.
    curated: Vec<(&'static str, f64)>,
    /// Hash-derived costs fall in `[lo_mb, hi_mb]`.
    lo_mb: f64,
    hi_mb: f64,
}

impl FootprintModel {
    /// The curated cost table for Linux-like kernels.
    pub fn linux() -> Self {
        Self {
            base_mb: 120.0,
            curated: vec![
                // Debug machinery (off by default): dominates the cost of
                // *enabling* options, i.e. the upper tail of random configs.
                ("DEBUG_INFO", 38.0),
                ("KASAN", 16.0),
                ("UBSAN", 6.0),
                ("LOCKDEP", 5.0),
                ("PROVE_LOCKING", 4.0),
                ("KCOV", 5.0),
                ("DEBUG_PAGEALLOC", 3.0),
                ("IKCONFIG", 1.5),
                ("KPROBES", 1.5),
                ("SLUB_DEBUG", 2.0),
                ("BTRFS_FS", 3.5),
                ("XFS_FS", 2.5),
                // On-by-default subsystems: the mass a debloating search
                // can actually reclaim (Fig. 10's ~8.5 %), spread over many
                // medium options so reclaiming it takes many decisions.
                ("KALLSYMS", 3.5),
                ("FTRACE", 4.5),
                ("MODULES", 4.0),
                ("DRM", 3.5),
                ("SND", 2.5),
                ("USB", 2.0),
                ("NETFILTER", 2.0),
                ("IPV6", 1.5),
                ("EXT4_FS", 1.5),
                ("TRANSPARENT_HUGEPAGE", 1.0),
                ("BPF_SYSCALL", 2.0),
                ("IO_URING", 1.0),
            ],
            lo_mb: 0.002,
            hi_mb: 0.02,
        }
    }

    /// Returns a copy whose base is adjusted so that `config` (typically
    /// the default configuration) has exactly `target_mb` footprint.
    ///
    /// # Panics
    ///
    /// Panics if the calibration would drive the base below 0.5 MB — that
    /// would mean the optional contributions already exceed the target.
    pub fn calibrated(
        mut self,
        space: &ConfigSpace,
        config: &Configuration,
        target_mb: f64,
    ) -> Self {
        let current = self.footprint_mb(space, config);
        let new_base = self.base_mb + (target_mb - current);
        assert!(
            new_base > 0.5,
            "calibration target {target_mb} MB unreachable (needs base {new_base})"
        );
        self.base_mb = new_base;
        self
    }

    /// The footprint of a configuration in MB.
    pub fn footprint_mb(&self, space: &ConfigSpace, config: &Configuration) -> f64 {
        let mut mb = self.base_mb;
        for (i, spec) in space.specs().iter().enumerate() {
            if spec.stage != Stage::CompileTime {
                continue;
            }
            let weight = match config.get(i) {
                Value::Bool(true) => 1.0,
                Value::Tristate(Tristate::Yes) => 1.0,
                Value::Tristate(Tristate::Module) => MODULE_WEIGHT,
                Value::Int(v) => {
                    // Int/hex options mostly size tables; model a gentle
                    // log contribution above their minimum.
                    if let ParamKind::Int { min, .. } | ParamKind::Hex { min, .. } = spec.kind {
                        let span = (v - min).max(0) as f64;
                        mb += 0.000_4 * (1.0 + span).ln();
                    }
                    0.0
                }
                _ => 0.0,
            };
            if weight > 0.0 {
                mb += weight * self.cost_of(&spec.name);
            }
        }
        mb
    }

    /// The built-in cost of one symbol.
    ///
    /// Non-curated symbols fall into two deterministic hash buckets: ~85 %
    /// are tiny (a few KB of code), ~15 % are "medium" features costing
    /// 0.05–0.35 MB — the long tail that makes footprint optimization a
    /// many-decision problem rather than a couple of big switches.
    pub fn cost_of(&self, name: &str) -> f64 {
        if let Some((_, mb)) = self.curated.iter().find(|(n, _)| *n == name) {
            return *mb;
        }
        // FNV-1a hash → bucket + uniform position inside it.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        if h % 100 < 15 {
            0.05 + u * 0.30
        } else {
            self.lo_mb + u * (self.hi_mb - self.lo_mb)
        }
    }

    /// The base footprint (everything that cannot be configured away).
    pub fn base_mb(&self) -> f64 {
        self.base_mb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_configspace::ParamSpec;

    fn space() -> ConfigSpace {
        let mut s = ConfigSpace::new();
        s.add(
            ParamSpec::new("DEBUG_INFO", ParamKind::Bool, Stage::CompileTime)
                .with_default(Value::Bool(false)),
        );
        s.add(
            ParamSpec::new("EXT4_FS", ParamKind::Bool, Stage::CompileTime)
                .with_default(Value::Bool(true)),
        );
        s.add(
            ParamSpec::new("CRYPTO_AES", ParamKind::Tristate, Stage::CompileTime)
                .with_default(Value::Tristate(Tristate::Module)),
        );
        s.add(
            ParamSpec::new("LOG_BUF_SHIFT", ParamKind::int(12, 25), Stage::CompileTime)
                .with_default(Value::Int(17)),
        );
        s.add(
            ParamSpec::new("vm.swappiness", ParamKind::int(0, 100), Stage::Runtime)
                .with_default(Value::Int(60)),
        );
        s
    }

    #[test]
    fn debug_info_costs_dozens_of_mb() {
        let m = FootprintModel::linux();
        let s = space();
        let off = s.default_config();
        let mut on = off.clone();
        on.set_by_name(&s, "DEBUG_INFO", Value::Bool(true));
        let delta = m.footprint_mb(&s, &on) - m.footprint_mb(&s, &off);
        assert!((delta - 38.0).abs() < 1e-9, "delta={delta}");
    }

    #[test]
    fn modules_cost_less_than_builtins() {
        let m = FootprintModel::linux();
        let s = space();
        let base = s.default_config();
        let mut builtin = base.clone();
        builtin.set_by_name(&s, "CRYPTO_AES", Value::Tristate(Tristate::Yes));
        let mut absent = base.clone();
        absent.set_by_name(&s, "CRYPTO_AES", Value::Tristate(Tristate::No));
        let fp_m = m.footprint_mb(&s, &base);
        let fp_y = m.footprint_mb(&s, &builtin);
        let fp_n = m.footprint_mb(&s, &absent);
        assert!(fp_n < fp_m && fp_m < fp_y, "{fp_n} {fp_m} {fp_y}");
    }

    #[test]
    fn runtime_params_do_not_affect_footprint() {
        let m = FootprintModel::linux();
        let s = space();
        let a = s.default_config();
        let mut b = a.clone();
        b.set_by_name(&s, "vm.swappiness", Value::Int(0));
        assert_eq!(m.footprint_mb(&s, &a), m.footprint_mb(&s, &b));
    }

    #[test]
    fn hash_costs_are_deterministic_and_bucketed() {
        let m = FootprintModel::linux();
        let mut tiny = 0;
        let mut medium = 0;
        for i in 0..1000 {
            let name = format!("DRV_FEATURE{i}");
            let c1 = m.cost_of(&name);
            assert_eq!(c1, m.cost_of(&name), "deterministic");
            if (0.002..=0.02).contains(&c1) {
                tiny += 1;
            } else if (0.05..=0.35).contains(&c1) {
                medium += 1;
            } else {
                panic!("{name}: cost {c1} in no bucket");
            }
        }
        assert_eq!(tiny + medium, 1000);
        assert!((100..250).contains(&medium), "medium share {medium}/1000");
    }

    #[test]
    fn calibration_hits_target_exactly() {
        let s = space();
        let d = s.default_config();
        let m = FootprintModel::linux().calibrated(&s, &d, 210.0);
        assert!((m.footprint_mb(&s, &d) - 210.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "unreachable")]
    fn impossible_calibration_panics() {
        let s = space();
        let d = s.default_config();
        let _ = FootprintModel::linux().calibrated(&s, &d, 1.0);
    }
}
