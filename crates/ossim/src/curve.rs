//! Effect curves and predicates over parameter values.
//!
//! The ground-truth performance model (see [`crate::perfmodel`]) composes
//! per-parameter multiplicative factors. A [`Curve`] maps a parameter's raw
//! numeric value (integer value, boolean as 0/1, tristate level, or enum
//! choice index) to a factor; curves are later normalized so the *default*
//! configuration always has factor 1.
//!
//! [`Cond`] is the predicate language shared by crash rules and interaction
//! bonuses: small conjunctions over raw values, deliberately simple enough
//! for a neural network to learn from observations.

/// A multiplicative effect as a function of a raw parameter value.
#[derive(Clone, Debug, PartialEq)]
pub enum Curve {
    /// Saturating log-shaped benefit: factor rises from 1 at or below
    /// `lo` to `1 + gain` at or above `hi`, linear in `log2(v)` between.
    /// Models "bigger buffer/backlog helps until it stops mattering".
    SaturatingLog {
        /// Value at which benefit starts.
        lo: f64,
        /// Value at which benefit saturates.
        hi: f64,
        /// Relative gain at saturation.
        gain: f64,
    },
    /// Bell curve in log-space around a best value. Models parameters with
    /// an interior optimum (granularities, buffer sizes with diminishing
    /// cache behaviour).
    OptimumLog {
        /// Optimal raw value.
        best: f64,
        /// Width in decades (1.0 = one order of magnitude std-dev).
        width: f64,
        /// Relative gain at the optimum versus the far tails.
        gain: f64,
    },
    /// Linear interpolation of the factor between `lo` → `lo_factor` and
    /// `hi` → `hi_factor`, clamped outside.
    Linear {
        /// Low input.
        lo: f64,
        /// High input.
        hi: f64,
        /// Factor at/below the low input.
        lo_factor: f64,
        /// Factor at/above the high input.
        hi_factor: f64,
    },
    /// Step: `below` factor strictly under the threshold, `above` at or
    /// over it.
    Step {
        /// Threshold on the raw value.
        at: f64,
        /// Factor below the threshold.
        below: f64,
        /// Factor at or above the threshold.
        above: f64,
    },
    /// Boolean factor: applied when the value is non-zero.
    BoolFactor {
        /// Factor when the parameter is on (off = 1).
        when_on: f64,
    },
    /// Per-choice factors for enum parameters (indexed by choice).
    PerChoice {
        /// One factor per enum choice.
        factors: Vec<f64>,
    },
}

impl Curve {
    /// The raw (un-normalized) factor at value `v`.
    pub fn raw_factor(&self, v: f64) -> f64 {
        match self {
            Curve::SaturatingLog { lo, hi, gain } => {
                debug_assert!(*lo > 0.0 && *hi > *lo);
                if v <= *lo {
                    1.0
                } else if v >= *hi {
                    1.0 + gain
                } else {
                    let t = (v.ln() - lo.ln()) / (hi.ln() - lo.ln());
                    1.0 + gain * t
                }
            }
            Curve::OptimumLog { best, width, gain } => {
                debug_assert!(*best > 0.0 && *width > 0.0);
                let x = (v.max(1e-9).log10() - best.log10()) / width;
                1.0 + gain * (-x * x).exp()
            }
            Curve::Linear {
                lo,
                hi,
                lo_factor,
                hi_factor,
            } => {
                if v <= *lo {
                    *lo_factor
                } else if v >= *hi {
                    *hi_factor
                } else {
                    let t = (v - lo) / (hi - lo);
                    lo_factor + t * (hi_factor - lo_factor)
                }
            }
            Curve::Step { at, below, above } => {
                if v < *at {
                    *below
                } else {
                    *above
                }
            }
            Curve::BoolFactor { when_on } => {
                if v != 0.0 {
                    *when_on
                } else {
                    1.0
                }
            }
            Curve::PerChoice { factors } => {
                let i = (v.max(0.0) as usize).min(factors.len().saturating_sub(1));
                factors.get(i).copied().unwrap_or(1.0)
            }
        }
    }
}

/// A predicate over one raw parameter value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Cond {
    /// `v >= x`.
    Ge(f64),
    /// `v <= x`.
    Le(f64),
    /// `v == x` (exact; used for enum choices and booleans).
    Eq(f64),
    /// `v != x`.
    Ne(f64),
}

impl Cond {
    /// Evaluates the predicate.
    pub fn holds(self, v: f64) -> bool {
        match self {
            Cond::Ge(x) => v >= x,
            Cond::Le(x) => v <= x,
            Cond::Eq(x) => v == x,
            Cond::Ne(x) => v != x,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturating_log_shape() {
        let c = Curve::SaturatingLog {
            lo: 128.0,
            hi: 4096.0,
            gain: 0.08,
        };
        assert_eq!(c.raw_factor(64.0), 1.0);
        assert_eq!(c.raw_factor(128.0), 1.0);
        assert!((c.raw_factor(4096.0) - 1.08).abs() < 1e-12);
        assert!((c.raw_factor(1_000_000.0) - 1.08).abs() < 1e-12);
        let mid = c.raw_factor(724.0); // ~ halfway in log space
        assert!(mid > 1.03 && mid < 1.05, "mid={mid}");
    }

    #[test]
    fn optimum_log_peaks_at_best() {
        let c = Curve::OptimumLog {
            best: 3_000_000.0,
            width: 0.7,
            gain: 0.05,
        };
        let peak = c.raw_factor(3_000_000.0);
        assert!((peak - 1.05).abs() < 1e-9);
        assert!(c.raw_factor(100.0) < 1.001);
        assert!(c.raw_factor(1e12) < 1.001);
        assert!(c.raw_factor(1_000_000.0) > c.raw_factor(10_000.0));
    }

    #[test]
    fn linear_clamps() {
        let c = Curve::Linear {
            lo: 0.0,
            hi: 10.0,
            lo_factor: 1.0,
            hi_factor: 0.8,
        };
        assert_eq!(c.raw_factor(-5.0), 1.0);
        assert_eq!(c.raw_factor(15.0), 0.8);
        assert!((c.raw_factor(5.0) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn step_and_bool() {
        let s = Curve::Step {
            at: 8.0,
            below: 1.0,
            above: 0.85,
        };
        assert_eq!(s.raw_factor(7.9), 1.0);
        assert_eq!(s.raw_factor(8.0), 0.85);
        let b = Curve::BoolFactor { when_on: 0.9 };
        assert_eq!(b.raw_factor(0.0), 1.0);
        assert_eq!(b.raw_factor(1.0), 0.9);
    }

    #[test]
    fn per_choice_indexes_safely() {
        let c = Curve::PerChoice {
            factors: vec![1.0, 1.02, 0.97],
        };
        assert_eq!(c.raw_factor(1.0), 1.02);
        // Out-of-range clamps to the last choice.
        assert_eq!(c.raw_factor(9.0), 0.97);
    }

    #[test]
    fn conds() {
        assert!(Cond::Ge(2.0).holds(2.0));
        assert!(!Cond::Ge(2.0).holds(1.9));
        assert!(Cond::Le(2.0).holds(2.0));
        assert!(Cond::Eq(1.0).holds(1.0));
        assert!(Cond::Ne(1.0).holds(0.0));
    }
}
