//! Drifting workloads: phase schedules over the SimOs response surface.
//!
//! Continuous specialization needs workloads that *change* — and a
//! ground truth that says what the best configuration is after each
//! change. A [`DriftSchedule`] is a piecewise-constant sequence of
//! [`WorkloadPhase`]s over virtual time: each phase is a full [`App`]
//! (its own performance model), so a shift both moves the response
//! surface's optimum and changes the observable level of the deployed
//! configuration's telemetry (which is what a drift detector sees).
//!
//! Three scenario families ship, mirroring ROADMAP item 3:
//!
//! * **step change** — one permanent shift at `shift_at_s`;
//! * **diurnal ramp** — a repeating base → busy → peak cycle;
//! * **flash crowd** — a transient overload that arrives and subsides.
//!
//! All phases derive from a base application via [`shifted_workload`],
//! which (a) scales the baseline metric so the shift is *detectable* and
//! (b) adds interior-optimum effect curves on top of the base model so
//! the post-shift optimum genuinely *moves* — re-specialization has
//! something to find. Everything is deterministic: schedules own no RNG;
//! callers pass per-sample seeded streams exactly as for a static
//! [`SimOs`](crate::SimOs) benchmark.

use crate::apps::{App, MetricDirection};
use crate::curve::Curve;
use crate::machine::Machine;
use crate::sim::SimOs;
use rand::Rng;
use wf_configspace::NamedConfig;

/// The built-in scenario families.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DriftScenario {
    /// One permanent workload shift.
    Step,
    /// A repeating base → busy → peak traffic cycle.
    Diurnal,
    /// A transient overload: steady → flash → steady.
    FlashCrowd,
}

impl DriftScenario {
    /// Job-file keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            DriftScenario::Step => "step",
            DriftScenario::Diurnal => "diurnal",
            DriftScenario::FlashCrowd => "flash-crowd",
        }
    }

    /// Parses a job-file keyword.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "step" => Some(DriftScenario::Step),
            "diurnal" => Some(DriftScenario::Diurnal),
            "flash-crowd" => Some(DriftScenario::FlashCrowd),
            _ => None,
        }
    }
}

/// One constant-workload segment of a schedule.
#[derive(Clone, Debug)]
pub struct WorkloadPhase {
    /// Phase name for reports (e.g. `peak`).
    pub name: String,
    /// Virtual time (within the cycle) the phase begins at.
    pub starts_at_s: f64,
    /// The workload during this phase.
    pub app: App,
}

/// A piecewise-constant workload over virtual time.
#[derive(Clone, Debug)]
pub struct DriftSchedule {
    name: String,
    phases: Vec<WorkloadPhase>,
    /// Cyclic schedules (diurnal) wrap with this period.
    period_s: Option<f64>,
    machine: Machine,
    defaults: NamedConfig,
}

impl DriftSchedule {
    /// Builds a schedule from explicit phases.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty, unsorted, does not start at 0, or a
    /// cyclic period does not cover every phase start.
    pub fn new(
        name: impl Into<String>,
        phases: Vec<WorkloadPhase>,
        period_s: Option<f64>,
        machine: Machine,
        defaults: NamedConfig,
    ) -> Self {
        assert!(!phases.is_empty(), "schedule needs at least one phase");
        assert_eq!(phases[0].starts_at_s, 0.0, "first phase must start at 0");
        assert!(
            phases
                .windows(2)
                .all(|w| w[0].starts_at_s < w[1].starts_at_s),
            "phases must be strictly sorted by start time"
        );
        if let Some(p) = period_s {
            assert!(
                phases.iter().all(|ph| ph.starts_at_s < p),
                "every phase must start within the period"
            );
        }
        Self {
            name: name.into(),
            phases,
            period_s,
            machine,
            defaults,
        }
    }

    /// A built-in scenario over `app` on `os`'s machine and defaults.
    ///
    /// `shift_at_s` is the scenario's characteristic time: the shift
    /// instant (step), the per-stage dwell of the cycle (diurnal), or
    /// the crowd's arrival time and duration (flash crowd).
    pub fn scenario(kind: DriftScenario, os: &SimOs, app: &App, shift_at_s: f64) -> Self {
        assert!(shift_at_s > 0.0, "shift_at_s must be positive");
        let phase = |name: &str, at: f64, app: App| WorkloadPhase {
            name: name.into(),
            starts_at_s: at,
            app,
        };
        let (name, phases, period) = match kind {
            DriftScenario::Step => (
                "step",
                vec![
                    phase("steady", 0.0, app.clone()),
                    phase("shifted", shift_at_s, shifted_workload(app, 1.0)),
                ],
                None,
            ),
            DriftScenario::Diurnal => (
                "diurnal",
                vec![
                    phase("night", 0.0, app.clone()),
                    phase("day", shift_at_s, shifted_workload(app, 0.55)),
                    phase("peak", 2.0 * shift_at_s, shifted_workload(app, 1.0)),
                ],
                Some(3.0 * shift_at_s),
            ),
            DriftScenario::FlashCrowd => (
                "flash-crowd",
                vec![
                    phase("steady", 0.0, app.clone()),
                    phase("flash", shift_at_s, flash_workload(app)),
                    phase("recovered", 2.0 * shift_at_s, app.clone()),
                ],
                None,
            ),
        };
        Self::new(
            name,
            phases,
            period,
            os.machine.clone(),
            os.defaults_view.clone(),
        )
    }

    /// Scenario name for reports.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The phases, in start order.
    pub fn phases(&self) -> &[WorkloadPhase] {
        &self.phases
    }

    /// The cycle period, if the schedule repeats.
    pub fn period_s(&self) -> Option<f64> {
        self.period_s
    }

    /// The default view phase oracles are computed against.
    pub fn defaults(&self) -> &NamedConfig {
        &self.defaults
    }

    /// Index of the phase active at virtual time `t_s`.
    pub fn phase_index_at(&self, t_s: f64) -> usize {
        let t = match self.period_s {
            Some(p) => t_s.rem_euclid(p),
            None => t_s,
        };
        self.phases
            .iter()
            .rposition(|ph| ph.starts_at_s <= t)
            .unwrap_or(0)
    }

    /// The phase active at virtual time `t_s`.
    pub fn phase_at(&self, t_s: f64) -> &WorkloadPhase {
        &self.phases[self.phase_index_at(t_s)]
    }

    /// One noisy metric measurement of `view` at virtual time `t_s`,
    /// under the phase active then. Same contract as [`App::measure`].
    pub fn measure_at(&self, t_s: f64, view: &NamedConfig, rng: &mut impl Rng) -> f64 {
        self.phase_at(t_s)
            .app
            .measure(view, &self.defaults, &self.machine, rng)
    }

    /// Ground-truth oracle for a phase: the mean metric of the best
    /// configuration the phase's model admits (coordinate-wise
    /// [`crate::PerfModel::headroom_bound`] — an upper bound that search
    /// approaches but, under interactions and noise, rarely attains).
    pub fn oracle_metric(&self, phase: usize) -> f64 {
        let app = &self.phases[phase].app;
        let bound = app.perf.headroom_bound(&self.defaults);
        let hw = app.hw_factor(&self.machine);
        match app.direction {
            MetricDirection::HigherBetter => app.base * bound * hw,
            MetricDirection::LowerBetter => app.base / (bound * hw),
        }
    }

    /// The oracle for the phase active at `t_s`.
    pub fn oracle_metric_at(&self, t_s: f64) -> f64 {
        self.oracle_metric(self.phase_index_at(t_s))
    }

    /// Mean (noise-free) metric of `view` at `t_s` — the deterministic
    /// level a drift detector's baseline converges to.
    pub fn mean_metric_at(&self, t_s: f64, view: &NamedConfig) -> f64 {
        let app = &self.phase_at(t_s).app;
        let factor = app.perf.mean_factor(view, &self.defaults);
        let hw = app.hw_factor(&self.machine);
        match app.direction {
            MetricDirection::HigherBetter => app.base * factor * hw,
            MetricDirection::LowerBetter => app.base / (factor * hw),
        }
    }
}

/// Derives a shifted variant of `app`: the workload mix changes.
///
/// `severity` in `[0, 1]` controls both how far the baseline level moves
/// (so detectors see the shift) and how strongly the response surface is
/// re-shaped. The reshaping adds interior-optimum curves *on top of* the
/// base model for a handful of high-leverage runtime parameters — the
/// product of old and new curves moves each parameter's optimum, so the
/// configuration that was best before the shift is measurably stale
/// after it. Curves are normalized at the defaults by
/// [`crate::PerfModel::mean_factor`], so the *default* configuration
/// only sees the baseline scale change.
pub fn shifted_workload(app: &App, severity: f64) -> App {
    assert!((0.0..=1.0).contains(&severity), "severity in [0,1]");
    let mut out = app.clone();
    // Load change: throughput drops / latency rises with the new mix.
    match out.direction {
        MetricDirection::HigherBetter => out.base *= 1.0 - 0.35 * severity,
        MetricDirection::LowerBetter => out.base *= 1.0 + 0.55 * severity,
    }
    let perf = out.perf.clone();
    out.perf = perf
        // Small objects now: the huge receive buffers that paid off
        // before thrash the cache under the new mix.
        .effect(
            "net.core.rmem_default",
            Curve::OptimumLog {
                best: 65_536.0,
                width: 0.8,
                gain: 0.05 * severity,
            },
        )
        // Short bursty connections: moderate backlogs win.
        .effect(
            "net.core.somaxconn",
            Curve::OptimumLog {
                best: 1_024.0,
                width: 0.9,
                gain: 0.04 * severity,
            },
        )
        .effect(
            "net.core.netdev_max_backlog",
            Curve::OptimumLog {
                best: 4_096.0,
                width: 0.9,
                gain: 0.035 * severity,
            },
        )
        // Latency-sensitive mix rewards finer scheduling granularity.
        .effect(
            "kernel.sched_min_granularity_ns",
            Curve::OptimumLog {
                best: 500_000.0,
                width: 0.8,
                gain: 0.03 * severity,
            },
        );
    out
}

/// The flash-crowd phase: a severity-1 mix shift plus a deeper load hit.
fn flash_workload(app: &App) -> App {
    let mut out = shifted_workload(app, 1.0);
    match out.direction {
        MetricDirection::HigherBetter => out.base *= 0.75,
        MetricDirection::LowerBetter => out.base *= 1.35,
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::AppId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wf_configspace::Value;
    use wf_kconfig::LinuxVersion;

    fn os() -> SimOs {
        SimOs::linux_runtime(LinuxVersion::V4_19, 56)
    }

    #[test]
    fn step_schedule_switches_phase_once() {
        let os = os();
        let s = DriftSchedule::scenario(DriftScenario::Step, &os, &App::nginx(), 1000.0);
        assert_eq!(s.phase_index_at(0.0), 0);
        assert_eq!(s.phase_index_at(999.9), 0);
        assert_eq!(s.phase_index_at(1000.0), 1);
        assert_eq!(s.phase_index_at(1e9), 1);
    }

    #[test]
    fn diurnal_schedule_wraps() {
        let os = os();
        let s = DriftSchedule::scenario(DriftScenario::Diurnal, &os, &App::nginx(), 100.0);
        assert_eq!(s.phase_index_at(0.0), 0);
        assert_eq!(s.phase_index_at(150.0), 1);
        assert_eq!(s.phase_index_at(250.0), 2);
        // Wraps back to night after one period.
        assert_eq!(s.phase_index_at(310.0), 0);
        assert_eq!(s.phase_index_at(160.0 + 300.0), 1);
    }

    #[test]
    fn flash_crowd_recovers() {
        let os = os();
        let s = DriftSchedule::scenario(DriftScenario::FlashCrowd, &os, &App::nginx(), 100.0);
        assert_eq!(s.phase_index_at(50.0), 0);
        assert_eq!(s.phase_index_at(150.0), 1);
        assert_eq!(s.phase_index_at(250.0), 2);
        // The recovered phase is the original workload again.
        let before = s.mean_metric_at(50.0, &NamedConfig::empty());
        let after = s.mean_metric_at(250.0, &NamedConfig::empty());
        assert!((before - after).abs() < 1e-9);
    }

    #[test]
    fn default_config_sees_only_the_level_shift() {
        let os = os();
        let s = DriftSchedule::scenario(DriftScenario::Step, &os, &App::nginx(), 1000.0);
        let d = NamedConfig::empty();
        let before = s.mean_metric_at(0.0, &d);
        let after = s.mean_metric_at(2000.0, &d);
        // base scaled by 0.65 at severity 1; added curves are normalized
        // out at the defaults.
        assert!(
            (after / before - 0.65).abs() < 1e-9,
            "before={before} after={after}"
        );
    }

    #[test]
    fn the_shift_moves_the_optimum_not_just_the_level() {
        let os = os();
        let s = DriftSchedule::scenario(DriftScenario::Step, &os, &App::nginx(), 1000.0);
        // A big-buffer config that the pre-shift nginx model loves.
        let mut big = NamedConfig::empty();
        big.set("net.core.rmem_default", Value::Int(4_194_304));
        let d = NamedConfig::empty();
        let pre_gain = s.mean_metric_at(0.0, &big) / s.mean_metric_at(0.0, &d);
        let post_gain = s.mean_metric_at(2000.0, &big) / s.mean_metric_at(2000.0, &d);
        assert!(pre_gain > 1.0, "pre_gain={pre_gain}");
        assert!(
            post_gain < pre_gain,
            "shift should penalize the stale optimum: pre={pre_gain} post={post_gain}"
        );
    }

    #[test]
    fn oracle_tracks_the_phase() {
        let os = os();
        let s = DriftSchedule::scenario(DriftScenario::Step, &os, &App::nginx(), 1000.0);
        let o0 = s.oracle_metric(0);
        let o1 = s.oracle_metric(1);
        assert!(o0 > 0.0 && o1 > 0.0);
        // The shifted phase's oracle is lower (throughput app, heavier
        // load) but above its own default level.
        assert!(o1 < o0, "o0={o0} o1={o1}");
        assert!(o1 > s.mean_metric_at(2000.0, &NamedConfig::empty()));
        assert_eq!(s.oracle_metric_at(500.0).to_bits(), o0.to_bits());
        assert_eq!(s.oracle_metric_at(1500.0).to_bits(), o1.to_bits());
    }

    #[test]
    fn measure_at_is_deterministic_per_rng_stream() {
        let os = os();
        let s = DriftSchedule::scenario(DriftScenario::Diurnal, &os, &App::redis(), 300.0);
        let v = NamedConfig::empty();
        let a = s.measure_at(450.0, &v, &mut StdRng::seed_from_u64(7));
        let b = s.measure_at(450.0, &v, &mut StdRng::seed_from_u64(7));
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn shifted_workload_severity_zero_keeps_the_level() {
        let app = App::nginx();
        let v = shifted_workload(&app, 0.0);
        assert_eq!(v.base, app.base);
    }

    #[test]
    fn by_id_apps_all_take_scenarios() {
        let os = os();
        for id in AppId::ALL {
            let app = App::by_id(id);
            for kind in [
                DriftScenario::Step,
                DriftScenario::Diurnal,
                DriftScenario::FlashCrowd,
            ] {
                let s = DriftSchedule::scenario(kind, &os, &app, 500.0);
                assert!(s.oracle_metric(0).is_finite());
                assert!(s.phases().len() >= 2);
            }
        }
    }
}
