//! The simulated OS target: build → boot → benchmark, with virtual time.
//!
//! [`SimOs`] plays the role of the QEMU/KVM testbed in Fig. 3: given a
//! configuration it "builds" a kernel image, "boots" it, applies runtime
//! parameters, runs the application's benchmark tool, and reports either a
//! measurement or a crash, charging realistic durations either way. The
//! platform layer (`wf-platform`) owns scheduling, caching, and budgets;
//! this type owns ground truth.

use crate::apps::App;
use crate::footprint::FootprintModel;
use crate::machine::Machine;
use crate::perfmodel::{first_crash, CrashRule, Phase};
use crate::timing::TimingModel;
use rand::Rng;
use wf_configspace::{ConfigSpace, Configuration, NamedConfig, Stage, Tristate, Value};

/// A built kernel image (the output of a build task).
#[derive(Clone, Debug, PartialEq)]
pub struct KernelImage {
    /// Fingerprint of the compile+boot stages that produced the image;
    /// equal fingerprints can share an image (§3.1's rebuild-skip).
    pub fingerprint: u64,
    /// Image size in MB (also the Fig. 10 footprint metric).
    pub image_mb: f64,
    /// Number of enabled compile-time options (drives build time).
    pub enabled_options: usize,
}

/// A successful benchmark run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BenchResult {
    /// The application's primary metric (req/s, µs/op, Mop/s, ...).
    pub metric: f64,
    /// Total resident memory: kernel + application (MB).
    pub memory_mb: f64,
}

/// A crash, in the §2.2 sense: build failure, boot failure, or runtime
/// crash/hang.
#[derive(Clone, Debug, PartialEq)]
pub struct CrashReport {
    /// The phase that failed.
    pub phase: Phase,
    /// The ground-truth rule that fired (diagnostic only — the search
    /// algorithms never see this).
    pub rule: String,
}

/// The outcome of evaluating one configuration.
#[derive(Clone, Debug)]
pub struct Evaluation {
    /// Measurement or crash.
    pub outcome: Result<BenchResult, CrashReport>,
    /// Virtual seconds spent building (0 when the image was reused).
    pub build_s: f64,
    /// Virtual seconds spent booting.
    pub boot_s: f64,
    /// Virtual seconds spent in the benchmark (including crash waste).
    pub bench_s: f64,
    /// The built (or reused) image, if the build phase completed.
    pub image: Option<KernelImage>,
}

impl Evaluation {
    /// Total virtual time charged.
    pub fn total_s(&self) -> f64 {
        self.build_s + self.boot_s + self.bench_s
    }
}

/// A simulated OS target.
///
/// Fields are public so that composition layers (e.g. the Cozart-reduced
/// target in `wf-cozart`) can assemble custom targets; invariants are
/// enforced by the methods, not the constructor.
#[derive(Clone, Debug)]
pub struct SimOs {
    /// Target name for reports (e.g. `linux-4.19`).
    pub name: String,
    /// The benchmark host.
    pub machine: Machine,
    /// The searchable configuration space.
    pub space: ConfigSpace,
    /// Default view of *all* parameters the ground-truth models reference,
    /// including ones outside `space`.
    pub defaults_view: NamedConfig,
    /// Crash rules (build + boot + run).
    pub crash_rules: Vec<CrashRule>,
    /// Image footprint model.
    pub footprint: FootprintModel,
    /// Virtual-time model.
    pub timing: TimingModel,
    /// Fraction of the image that stays resident after boot.
    pub resident_frac: f64,
    /// Kernel resident memory when the space has no compile-time
    /// parameters (the image is then a fixed default build).
    pub fixed_kernel_mb: f64,
}

impl SimOs {
    /// Linux with a runtime-focused search space of `total_params`
    /// parameters (the §4.1 performance experiments).
    pub fn linux_runtime(version: wf_kconfig::LinuxVersion, total_params: usize) -> SimOs {
        let space = crate::linux::runtime_space(version, total_params);
        let mut defaults_view = crate::linux::runtime_defaults();
        // Inert parameters default per the space.
        for spec in space.specs() {
            if defaults_view.get(&spec.name).is_none() {
                defaults_view.set(spec.name.clone(), spec.default);
            }
        }
        SimOs {
            name: format!("linux-{}-runtime", version.label().trim_start_matches('v')),
            machine: Machine::xeon_e5_2697_v2(),
            space,
            defaults_view,
            crash_rules: crate::linux::runtime_crash_rules(),
            footprint: FootprintModel::linux(),
            timing: TimingModel::linux(),
            resident_frac: 0.4,
            fixed_kernel_mb: 84.0,
        }
    }

    /// Linux with boot-time *and* runtime parameters in the search space
    /// (§2.1's full picture minus compile-time; compile-focused targets
    /// are [`SimOs::linux_riscv_footprint`]). Boot-time changes force a
    /// reboot but no rebuild; the image fingerprint covers the boot stage,
    /// so the cache still deduplicates identical boot configurations.
    pub fn linux_all_stages(version: wf_kconfig::LinuxVersion, runtime_params: usize) -> SimOs {
        let mut os = SimOs::linux_runtime(version, runtime_params);
        let mut space = ConfigSpace::new();
        for spec in wf_kconfig::cmdline::boot_options(version) {
            os.defaults_view.set(spec.name.clone(), spec.default);
            space.add(spec);
        }
        for spec in os.space.specs() {
            space.add(spec.clone());
        }
        os.space = space;
        os.name = format!(
            "linux-{}-boot+runtime",
            version.label().trim_start_matches('v')
        );
        os
    }

    /// RISC-V Linux with a compile-time search space (the Fig. 10 memory
    /// footprint experiment): default image calibrated to 210 MB.
    ///
    /// The searched space is a *reduced* compile space: the curated core
    /// plus a deterministic ~2 % sample of the generated symbols (≈ 450
    /// parameters). Exploring all 20 000 symbols one NN feature each would
    /// be exactly the inefficiency §4.4 describes ("this process can be
    /// inefficient ..."); the reduction plays the role of the relevance
    /// pre-pass a debloating tool provides, without fixing any values.
    pub fn linux_riscv_footprint() -> SimOs {
        let version = wf_kconfig::LinuxVersion::V5_13;
        let model = wf_kconfig::gen::synthesize(version);
        let full = wf_kconfig::space::compile_space(&model);
        let keep: Vec<&str> = full
            .specs()
            .iter()
            .map(|p| p.name.as_str())
            .filter(|name| is_curated_symbol(name) || fnv(name).is_multiple_of(47))
            .collect();
        let space = full.subset(&keep);
        let default = space.default_config();
        let footprint = FootprintModel::linux().calibrated(&space, &default, 210.0);
        let defaults_view = default.named(&space);
        SimOs {
            name: "linux-riscv-footprint".into(),
            machine: Machine::riscv_qemu(),
            space,
            defaults_view,
            crash_rules: crate::linux::compile_crash_rules(version, &model),
            footprint,
            timing: TimingModel::riscv_emulated(),
            // Fig. 10's metric is the boot memory of the image itself.
            resident_frac: 1.0,
            fixed_kernel_mb: 84.0,
        }
    }

    /// Unikraft building an Nginx image (§4.4, Fig. 9).
    pub fn unikraft_nginx() -> SimOs {
        let space = crate::unikraft::space();
        let defaults_view = space.default_config().named(&space);
        let footprint = FootprintModel::linux().calibrated(&space, &space.default_config(), 4.0);
        SimOs {
            name: "unikraft-nginx".into(),
            machine: Machine::xeon_e5_2697_v2(),
            space,
            defaults_view,
            crash_rules: crate::unikraft::crash_rules(),
            footprint,
            timing: TimingModel::unikraft(),
            resident_frac: 1.0,
            fixed_kernel_mb: 4.0,
        }
    }

    /// Whether evaluating a configuration requires a build phase.
    pub fn has_compile_stage(&self) -> bool {
        self.space
            .specs()
            .iter()
            .any(|p| p.stage == Stage::CompileTime)
    }

    /// The fingerprint identifying the image a configuration needs.
    pub fn image_fingerprint(&self, config: &Configuration) -> u64 {
        config.stage_fingerprint(&self.space, &[Stage::CompileTime, Stage::BootTime])
    }

    /// Number of enabled compile-time options (drives build time).
    pub fn enabled_options(&self, config: &Configuration) -> usize {
        self.space
            .specs()
            .iter()
            .enumerate()
            .filter(|(i, p)| {
                p.stage == Stage::CompileTime
                    && matches!(
                        config.get(*i),
                        Value::Bool(true)
                            | Value::Tristate(Tristate::Yes)
                            | Value::Tristate(Tristate::Module)
                    )
            })
            .count()
    }

    /// Builds the kernel image for `config`.
    ///
    /// Returns the image or a build-phase crash, plus the virtual seconds
    /// spent. Pass `reuse` when a previously built image has the same
    /// fingerprint — the build is then skipped at zero cost (§3.1). Pass
    /// `prev` (the last configuration built in this working tree) to get
    /// incremental-rebuild timing instead of a full build.
    pub fn build(
        &self,
        config: &Configuration,
        reuse: Option<&KernelImage>,
        prev: Option<&Configuration>,
        rng: &mut impl Rng,
    ) -> (Result<KernelImage, CrashReport>, f64) {
        let fingerprint = self.image_fingerprint(config);
        if let Some(img) = reuse {
            if img.fingerprint == fingerprint {
                return (Ok(img.clone()), 0.0);
            }
        }
        if !self.has_compile_stage() {
            // Fixed default image; nothing to compile.
            return (
                Ok(KernelImage {
                    fingerprint,
                    image_mb: self.fixed_kernel_mb / self.resident_frac.max(1e-6),
                    enabled_options: 0,
                }),
                0.0,
            );
        }
        let enabled = self.enabled_options(config);
        let nominal = match prev {
            Some(p) if p.len() == config.len() => {
                let changes = config.diff_indices(p).len();
                self.timing.incr_build_s(changes, rng)
            }
            _ => self.timing.full_build_s(enabled, rng),
        };
        let view = config.named(&self.space);
        if let Some(rule) = first_crash(&self.crash_rules, &view, &self.defaults_view) {
            if rule.phase == Phase::Build {
                let wasted = self.timing.crash_cost_s(Phase::Build, nominal, rng);
                return (
                    Err(CrashReport {
                        phase: Phase::Build,
                        rule: rule.name.clone(),
                    }),
                    wasted,
                );
            }
        }
        let image = KernelImage {
            fingerprint,
            image_mb: self.footprint.footprint_mb(&self.space, config),
            enabled_options: enabled,
        };
        (Ok(image), nominal)
    }

    /// Boots an image and applies the configuration's runtime parameters.
    pub fn boot(
        &self,
        image: &KernelImage,
        config: &Configuration,
        rng: &mut impl Rng,
    ) -> (Result<(), CrashReport>, f64) {
        let view = config.named(&self.space);
        if let Some(rule) = first_crash(&self.crash_rules, &view, &self.defaults_view) {
            if rule.phase == Phase::Boot {
                let wasted = self.timing.crash_cost_s(Phase::Boot, 0.0, rng);
                return (
                    Err(CrashReport {
                        phase: Phase::Boot,
                        rule: rule.name.clone(),
                    }),
                    wasted,
                );
            }
        }
        let t = self.timing.boot_s(image.image_mb, rng) + self.timing.sysctl_apply_s;
        (Ok(()), t)
    }

    /// Runs the application benchmark on a booted system.
    pub fn bench(
        &self,
        app: &App,
        image: &KernelImage,
        config: &Configuration,
        rng: &mut impl Rng,
    ) -> (Result<BenchResult, CrashReport>, f64) {
        let view = config.named(&self.space);
        let nominal = app.bench_duration_s;
        if let Some(rule) = first_crash(&self.crash_rules, &view, &self.defaults_view) {
            if rule.phase == Phase::Run {
                let wasted = self.timing.crash_cost_s(Phase::Run, nominal, rng);
                return (
                    Err(CrashReport {
                        phase: Phase::Run,
                        rule: rule.name.clone(),
                    }),
                    wasted,
                );
            }
        }
        let metric = app.measure(&view, &self.defaults_view, &self.machine, rng);
        let kernel_mb = if self.has_compile_stage() {
            image.image_mb * self.resident_frac
        } else {
            self.fixed_kernel_mb
        };
        let memory_mb = kernel_mb + app.memory_mb(&view, &self.defaults_view, rng);
        // Benchmarks run a fixed wall-clock window with small jitter.
        let t = nominal * (1.0 + 0.05 * (rng.random::<f64>() - 0.5));
        (Ok(BenchResult { metric, memory_mb }), t)
    }

    /// The full evaluation loop for one configuration: build (or reuse),
    /// boot, benchmark.
    pub fn evaluate(
        &self,
        app: &App,
        config: &Configuration,
        reuse: Option<&KernelImage>,
        rng: &mut impl Rng,
    ) -> Evaluation {
        let (built, build_s) = self.build(config, reuse, None, rng);
        let image = match built {
            Ok(img) => img,
            Err(crash) => {
                return Evaluation {
                    outcome: Err(crash),
                    build_s,
                    boot_s: 0.0,
                    bench_s: 0.0,
                    image: None,
                }
            }
        };
        let (booted, boot_s) = self.boot(&image, config, rng);
        if let Err(crash) = booted {
            return Evaluation {
                outcome: Err(crash),
                build_s,
                boot_s,
                bench_s: 0.0,
                image: Some(image),
            };
        }
        let (result, bench_s) = self.bench(app, &image, config, rng);
        Evaluation {
            outcome: result,
            build_s,
            boot_s,
            bench_s,
            image: Some(image),
        }
    }
}

/// FNV-1a hash used for deterministic symbol subsetting.
fn fnv(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Whether a symbol belongs to the curated real-named core (always kept in
/// reduced compile spaces so the crash rules and footprint heavies stay
/// searchable).
fn is_curated_symbol(name: &str) -> bool {
    const CURATED: &[&str] = &[
        "EXPERT",
        "SMP",
        "PM",
        "MMU",
        "NET",
        "PCI",
        "SND",
        "DRM",
        "USB",
        "BLOCK",
        "SECURITY",
        "CRYPTO",
        "LIBS",
        "DEBUG_KERNEL",
        "64BIT",
        "NUMA",
        "PREEMPT",
        "PREEMPT_VOLUNTARY",
        "HIGH_RES_TIMERS",
        "NO_HZ_IDLE",
        "CPU_FREQ",
        "CPU_IDLE",
        "SWAP",
        "SHMEM",
        "TRANSPARENT_HUGEPAGE",
        "COMPACTION",
        "KSM",
        "SLUB_DEBUG",
        "SLAB_FREELIST_RANDOM",
        "INET",
        "IPV6",
        "NETFILTER",
        "TCP_CONG_CUBIC",
        "TCP_CONG_BBR",
        "NET_RX_BUSY_POLL",
        "XPS",
        "RPS",
        "EXT4_FS",
        "BTRFS_FS",
        "XFS_FS",
        "TMPFS",
        "PROC_FS",
        "SYSFS",
        "BLK_DEV_IO_TRACE",
        "VIRTIO_NET",
        "VIRTIO_BLK",
        "E1000",
        "SERIAL_8250",
        "SECCOMP",
        "RANDOMIZE_BASE",
        "STACKPROTECTOR",
        "HARDENED_USERCOPY",
        "PRINTK",
        "PRINTK_TIME",
        "IKCONFIG",
        "KALLSYMS",
        "DEBUG_INFO",
        "KASAN",
        "UBSAN",
        "KCOV",
        "LOCKDEP",
        "PROVE_LOCKING",
        "DEBUG_PAGEALLOC",
        "FTRACE",
        "KPROBES",
        "BPF_SYSCALL",
        "EPOLL",
        "AIO",
        "IO_URING",
        "FUTEX",
        "MODULES",
        "NR_CPUS",
        "HZ",
        "LOG_BUF_SHIFT",
        "RCU_FANOUT",
        "DEFAULT_MMAP_MIN_ADDR",
        "PHYSICAL_START",
        "CMDLINE",
        "DEFAULT_HOSTNAME",
    ];
    CURATED.contains(&name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::{App, AppId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wf_kconfig::LinuxVersion;

    #[test]
    fn runtime_target_skips_builds() {
        let os = SimOs::linux_runtime(LinuxVersion::V4_19, 128);
        assert!(!os.has_compile_stage());
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = os.space.default_config();
        let e = os.evaluate(&App::by_id(AppId::Nginx), &cfg, None, &mut rng);
        assert_eq!(e.build_s, 0.0);
        assert!(e.outcome.is_ok());
        // §4: evaluating one configuration takes 60-80 s on average.
        assert!(
            (40.0..100.0).contains(&e.total_s()),
            "total={}",
            e.total_s()
        );
    }

    #[test]
    fn default_linux_runtime_hits_table2_baseline() {
        let os = SimOs::linux_runtime(LinuxVersion::V4_19, 128);
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = os.space.default_config();
        let app = App::by_id(AppId::Nginx);
        let n = 60;
        let mean: f64 = (0..n)
            .map(|_| {
                os.evaluate(&app, &cfg, None, &mut rng)
                    .outcome
                    .unwrap()
                    .metric
            })
            .sum::<f64>()
            / n as f64;
        assert!((mean - 15_731.0).abs() / 15_731.0 < 0.02, "mean={mean}");
    }

    #[test]
    fn riscv_default_footprint_is_210mb() {
        let os = SimOs::linux_riscv_footprint();
        assert!(os.has_compile_stage());
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = os.space.default_config();
        let (img, t) = os.build(&cfg, None, None, &mut rng);
        let img = img.expect("default builds");
        assert!((img.image_mb - 210.0).abs() < 1e-6, "mb={}", img.image_mb);
        assert!(t > 60.0, "builds take minutes, got {t}");
    }

    #[test]
    fn image_reuse_is_free_and_fingerprint_gated() {
        let os = SimOs::linux_riscv_footprint();
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = os.space.default_config();
        let (img, _) = os.build(&cfg, None, None, &mut rng);
        let img = img.unwrap();
        let (again, t) = os.build(&cfg, Some(&img), None, &mut rng);
        assert_eq!(again.unwrap(), img);
        assert_eq!(t, 0.0);
        // A config differing in a compile option must rebuild.
        let mut other = cfg.clone();
        let idx = os.space.index_of("KALLSYMS").unwrap();
        let flipped = match other.get(idx) {
            Value::Bool(b) => Value::Bool(!b),
            v => v,
        };
        other.set(idx, flipped);
        let (rebuilt, t2) = os.build(&other, Some(&img), None, &mut rng);
        assert!(t2 > 0.0);
        assert_ne!(rebuilt.unwrap().fingerprint, img.fingerprint);
    }

    #[test]
    fn crashes_waste_less_time_than_success() {
        let os = SimOs::linux_runtime(LinuxVersion::V4_19, 128);
        let mut rng = StdRng::seed_from_u64(5);
        let mut cfg = os.space.default_config();
        cfg.set_by_name(&os.space, "vm.nr_hugepages", Value::Int(4096));
        let app = App::by_id(AppId::Redis);
        let e = os.evaluate(&app, &cfg, None, &mut rng);
        let crash = e.outcome.clone().unwrap_err();
        assert_eq!(crash.phase, Phase::Run);
        assert_eq!(crash.rule, "oom:hugepage-eat-ram");
        let ok = os.evaluate(&app, &os.space.default_config(), None, &mut rng);
        assert!(e.total_s() < ok.total_s());
    }

    #[test]
    fn unikraft_iterations_are_much_faster_than_linux() {
        let uk = SimOs::unikraft_nginx();
        let mut rng = StdRng::seed_from_u64(6);
        let cfg = uk.space.default_config();
        let e = uk.evaluate(&crate::unikraft::nginx_app(), &cfg, None, &mut rng);
        assert!(e.outcome.is_ok());
        assert!(e.total_s() < 60.0, "unikraft iteration {}", e.total_s());
        assert!(e.build_s > 0.0, "unikernels rebuild per config");
    }

    #[test]
    fn memory_metric_includes_kernel_and_app() {
        let os = SimOs::linux_runtime(LinuxVersion::V4_19, 128);
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = os.space.default_config();
        let e = os.evaluate(&App::by_id(AppId::Nginx), &cfg, None, &mut rng);
        let r = e.outcome.unwrap();
        assert!(r.memory_mb > os.fixed_kernel_mb, "memory={}", r.memory_mb);
        assert!(r.memory_mb < 400.0);
    }
}
