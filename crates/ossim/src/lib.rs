//! `wf-ossim`: the simulated OS substrate.
//!
//! The paper evaluates Wayfinder against real Linux/Unikraft builds booted
//! under QEMU/KVM on a Xeon testbed. This crate substitutes that testbed
//! with a *ground-truth model* that exposes the same observable behaviour
//! to the search algorithms (see DESIGN.md §1 for the substitution
//! argument):
//!
//! * [`machine`] — hardware descriptions (the paper's Xeons, QEMU RISC-V);
//! * [`curve`] / [`perfmodel`] — per-parameter effect curves, interaction
//!   bonuses, measurement noise, and deterministic crash rules;
//! * [`sysctl`] — the virtual `/proc/sys` tree the §3.4 prober works on;
//! * [`footprint`] — deterministic image/memory footprint (Fig. 10/11);
//! * [`timing`] — the virtual-time cost of builds, boots, benchmarks,
//!   and crashes (Fig. 8);
//! * [`linux`] — the Linux targets: named+inert runtime sysctls, crash
//!   rules, per-version populations matching Table 1;
//! * [`apps`] — Nginx, Redis, SQLite, NPB with paper-calibrated
//!   sensitivities (Table 2, Fig. 5, Fig. 6);
//! * [`drift`] — drifting workloads: phase schedules (step / diurnal /
//!   flash crowd) over the response surface, with per-phase oracles;
//! * [`unikraft`] — the 33-parameter Unikraft+Nginx target (Fig. 9);
//! * [`sim`] — [`SimOs`]: build → boot → benchmark with virtual time.
//!
//! Everything is deterministic given a seed; the calibration suite in
//! `tests/calibration.rs` pins the model to the paper's numbers so drift
//! fails CI instead of silently bending experiments.

pub mod apps;
pub mod curve;
pub mod drift;
pub mod footprint;
pub mod linux;
pub mod machine;
pub mod perfmodel;
pub mod sim;
pub mod sysctl;
pub mod timing;
pub mod unikraft;

pub use apps::{App, AppId, MetricDirection};
pub use curve::{Cond, Curve};
pub use drift::{shifted_workload, DriftScenario, DriftSchedule, WorkloadPhase};
pub use footprint::FootprintModel;
pub use machine::Machine;
pub use perfmodel::{first_crash, CrashRule, Interaction, ParamEffect, PerfModel, Phase};
pub use sim::{BenchResult, CrashReport, Evaluation, KernelImage, SimOs};
pub use sysctl::{SysctlTree, WriteError};
pub use timing::TimingModel;
