//! Property tests: YAML emit/parse round-trips and job-schema robustness.

use proptest::prelude::*;
use wf_jobfile::yaml::{emit, parse, Yaml};
use wf_jobfile::Job;

/// Strategy for scalar YAML values (strings restricted to the plain set the
/// emitter quotes correctly).
fn scalar() -> impl Strategy<Value = Yaml> {
    prop_oneof![
        any::<i64>().prop_map(Yaml::Int),
        any::<bool>().prop_map(Yaml::Bool),
        (-1e9f64..1e9).prop_map(|v| Yaml::Float((v * 1e6).round() / 1e6)),
        "[a-zA-Z][a-zA-Z0-9 _.-]{0,12}".prop_map(|s| Yaml::Str(s.trim().to_string())),
        Just(Yaml::Null),
    ]
}

fn key() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,10}"
}

/// Recursive YAML documents up to depth 3.
fn yaml_value() -> impl Strategy<Value = Yaml> {
    scalar().prop_recursive(3, 32, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Yaml::Seq),
            proptest::collection::vec((key(), inner), 1..4).prop_map(|pairs| {
                // Deduplicate keys (the parser rejects duplicates).
                let mut seen = std::collections::HashSet::new();
                Yaml::Map(
                    pairs
                        .into_iter()
                        .filter(|(k, _)| seen.insert(k.clone()))
                        .collect(),
                )
            }),
        ]
    })
}

/// Emitted-then-parsed values are equal up to the documented Null caveat.
fn normalize(v: &Yaml) -> Yaml {
    match v {
        Yaml::Seq(items) => Yaml::Seq(items.iter().map(normalize).collect()),
        Yaml::Map(pairs) => Yaml::Map(
            pairs
                .iter()
                .map(|(k, v)| (k.clone(), normalize(v)))
                .collect(),
        ),
        Yaml::Float(f) if f.fract() == 0.0 => Yaml::Float(*f),
        other => other.clone(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn yaml_emit_parse_roundtrip(doc in yaml_value()) {
        // Only mappings/sequences form valid standalone documents here;
        // wrap scalars in a map.
        let doc = match doc {
            m @ Yaml::Map(_) => m,
            other => Yaml::Map(vec![("root".to_string(), other)]),
        };
        let text = emit(&doc);
        let back = parse(&text).expect("emitted YAML must parse");
        prop_assert_eq!(normalize(&back), normalize(&doc), "text:\n{}", text);
    }

    #[test]
    fn job_yaml_roundtrip_under_field_fuzz(
        seed in 0u64..1_000_000,
        iters in 1usize..100_000,
        reps in 1usize..32,
        name in "[a-z][a-z0-9-]{0,20}",
    ) {
        let mut job = Job {
            seed,
            repetitions: reps,
            name,
            ..Job::default()
        };
        job.budget.iterations = Some(iters);
        let text = job.to_yaml();
        let back = Job::parse(&text).expect("job round-trips");
        prop_assert_eq!(job, back);
    }

    #[test]
    fn arbitrary_input_never_panics(input in "\\PC{0,200}") {
        let _ = parse(&input);
        let _ = Job::parse(&input);
    }
}
