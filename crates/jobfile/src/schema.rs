//! The job-file schema (§3.1, §3.4, §3.5).
//!
//! A job file tells the platform what to specialize and how:
//!
//! ```yaml
//! name: nginx-linux419-throughput
//! os: linux-4.19
//! app: nginx
//! metric: throughput
//! direction: maximize
//! algorithm: deeptune
//! seed: 42
//! repetitions: 1
//! workers: 4                # VM workers evaluating candidates in parallel
//! runtime_params: 200       # probed runtime-space size (§3.4)
//! out: runs/nginx-tuning    # session-store directory (events + resume)
//! focus: runtime            # §3.5: favor one parameter stage
//! budget:
//!   iterations: 250
//!   time_seconds: 18000
//! pinned:                   # §3.5: fixed security-critical options
//!   - name: RANDOMIZE_BASE
//!     value: y
//! params:                   # optional explicit space (else the OS's own)
//!   - name: net.core.somaxconn
//!     type: int
//!     min: 16
//!     max: 65535
//!     log: true
//!     default: 128
//!     stage: runtime
//! ```

use crate::yaml::{self, Yaml, YamlError};
use std::fmt;
use wf_configspace::{ConfigSpace, ParamKind, ParamSpec, Stage, Tristate, Value};

/// Whether higher or lower metric values are better.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Direction {
    /// Larger is better (throughput, ops/s).
    #[default]
    Maximize,
    /// Smaller is better (latency, memory footprint).
    Minimize,
}

impl Direction {
    /// Returns `true` if `a` is strictly better than `b` under this
    /// direction.
    pub fn better(self, a: f64, b: f64) -> bool {
        match self {
            Direction::Maximize => a > b,
            Direction::Minimize => a < b,
        }
    }

    /// The job-file keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            Direction::Maximize => "maximize",
            Direction::Minimize => "minimize",
        }
    }
}

/// Which parameter stage the search should favor (§3.5).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Focus {
    /// Vary every stage.
    #[default]
    All,
    /// Favor compile-time options (the Fig. 10 footprint experiments).
    CompileTime,
    /// Favor boot-time options.
    BootTime,
    /// Favor runtime options (the §4.1 performance experiments).
    Runtime,
}

impl Focus {
    /// The stage this focus restricts to, if any.
    pub fn stage(self) -> Option<Stage> {
        match self {
            Focus::All => None,
            Focus::CompileTime => Some(Stage::CompileTime),
            Focus::BootTime => Some(Stage::BootTime),
            Focus::Runtime => Some(Stage::Runtime),
        }
    }

    /// The job-file keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            Focus::All => "all",
            Focus::CompileTime => "compile",
            Focus::BootTime => "boot",
            Focus::Runtime => "runtime",
        }
    }
}

/// Where candidate evaluations execute (the platform's `EvalBackend`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BackendChoice {
    /// Legacy per-wave scoped-thread spawning (kept as the benchmark
    /// baseline the persistent pools are measured against).
    Spawn,
    /// Persistent in-process worker threads with channel-fed queues.
    #[default]
    InProcess,
    /// Worker processes behind a Unix-socket protocol (`wf-evald`).
    Remote,
}

impl BackendChoice {
    /// The job-file keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            BackendChoice::Spawn => "spawn",
            BackendChoice::InProcess => "in-process",
            BackendChoice::Remote => "remote",
        }
    }

    /// Parses a job-file keyword (used by both the schema and CLI flags).
    pub fn parse_keyword(s: &str) -> Option<BackendChoice> {
        match s {
            "spawn" => Some(BackendChoice::Spawn),
            "in-process" | "inprocess" | "in_process" => Some(BackendChoice::InProcess),
            "remote" => Some(BackendChoice::Remote),
            _ => None,
        }
    }
}

/// How the platform's router assigns candidates to evaluator lanes
/// (the four wayfinder-core gateway strategies).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RoutingStrategy {
    /// Draw lanes from a dedicated RNG stream per wave.
    Random,
    /// Prefer the lanes with the lowest latency EWMA.
    Fastest,
    /// Cycle through healthy lanes with a persistent cursor. The default:
    /// under full-width waves it reduces to the identity assignment, so
    /// sessions behave exactly as they did before routing existed.
    #[default]
    RoundRobin,
    /// Always the lowest-numbered healthy lanes (lane 0 is "preferred"),
    /// falling back to the others only when lanes are unhealthy.
    Preferred,
}

impl RoutingStrategy {
    /// The job-file keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            RoutingStrategy::Random => "random",
            RoutingStrategy::Fastest => "fastest",
            RoutingStrategy::RoundRobin => "round-robin",
            RoutingStrategy::Preferred => "preferred",
        }
    }

    /// Parses a job-file keyword (used by both the schema and CLI flags).
    pub fn parse_keyword(s: &str) -> Option<RoutingStrategy> {
        match s {
            "random" => Some(RoutingStrategy::Random),
            "fastest" => Some(RoutingStrategy::Fastest),
            "round-robin" | "roundrobin" | "round_robin" => Some(RoutingStrategy::RoundRobin),
            "preferred" => Some(RoutingStrategy::Preferred),
            _ => None,
        }
    }
}

/// Session mode: specialize once, or keep adapting to a drifting
/// workload (continuous specialization).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Mode {
    /// Optimize a fixed workload and stop at the budget (the paper's
    /// experiments).
    #[default]
    OneShot,
    /// Watch deployed-reference telemetry for drift and re-specialize
    /// epoch by epoch; requires a `drift:` section.
    Continuous,
}

impl Mode {
    /// The job-file keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            Mode::OneShot => "one-shot",
            Mode::Continuous => "continuous",
        }
    }

    /// Parses a job-file keyword.
    pub fn parse_keyword(s: &str) -> Option<Mode> {
        match s {
            "one-shot" | "oneshot" | "one_shot" => Some(Mode::OneShot),
            "continuous" => Some(Mode::Continuous),
            _ => None,
        }
    }
}

/// Drifting-workload scenario family (mirrors `wf-ossim`'s scenarios).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DriftScenarioId {
    /// One permanent workload shift.
    #[default]
    Step,
    /// A repeating base → busy → peak traffic cycle.
    Diurnal,
    /// A transient overload: steady → flash → steady.
    FlashCrowd,
}

impl DriftScenarioId {
    /// The job-file keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            DriftScenarioId::Step => "step",
            DriftScenarioId::Diurnal => "diurnal",
            DriftScenarioId::FlashCrowd => "flash-crowd",
        }
    }

    /// Parses a job-file keyword.
    pub fn parse_keyword(s: &str) -> Option<DriftScenarioId> {
        match s {
            "step" => Some(DriftScenarioId::Step),
            "diurnal" => Some(DriftScenarioId::Diurnal),
            "flash-crowd" | "flash_crowd" | "flashcrowd" => Some(DriftScenarioId::FlashCrowd),
            _ => None,
        }
    }
}

/// Change-detector selection for continuous mode.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DetectorId {
    /// Sliding-window mean-shift detector.
    #[default]
    MeanShift,
    /// Page–Hinkley two-sided CUSUM detector.
    PageHinkley,
}

impl DetectorId {
    /// The job-file keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            DetectorId::MeanShift => "mean-shift",
            DetectorId::PageHinkley => "page-hinkley",
        }
    }

    /// Parses a job-file keyword.
    pub fn parse_keyword(s: &str) -> Option<DetectorId> {
        match s {
            "mean-shift" | "mean_shift" | "meanshift" => Some(DetectorId::MeanShift),
            "page-hinkley" | "page_hinkley" | "pagehinkley" => Some(DetectorId::PageHinkley),
            _ => None,
        }
    }
}

/// The `drift:` section of a continuous job: what drifts and how change
/// is confirmed.
#[derive(Clone, Debug, PartialEq)]
pub struct DriftSpec {
    /// Scenario family the simulated workload follows.
    pub scenario: DriftScenarioId,
    /// Change detector watching the deployed reference's telemetry.
    pub detector: DetectorId,
    /// Virtual seconds until the first workload shift (scenario phase
    /// length).
    pub shift_at_s: f64,
    /// Detector window (mean-shift) or warm-up length (page-hinkley),
    /// in samples.
    pub window: usize,
    /// Relative change magnitude that confirms a drift.
    pub threshold: f64,
    /// Minimum candidates an epoch runs before a verdict may close it.
    pub min_epoch: usize,
    /// Seed each new epoch's search from the closed epoch's model
    /// instead of restarting cold.
    pub transfer: bool,
}

impl Default for DriftSpec {
    fn default() -> Self {
        Self {
            scenario: DriftScenarioId::Step,
            detector: DetectorId::MeanShift,
            shift_at_s: 900.0,
            window: 6,
            threshold: 0.15,
            min_epoch: 8,
            transfer: true,
        }
    }
}

/// Search algorithm selection (§3.1 lists the supported plug-ins).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AlgorithmId {
    /// Random search baseline.
    Random,
    /// Exhaustive grid search.
    Grid,
    /// Gaussian-process Bayesian optimization.
    Bayesian,
    /// Unicorn-style causal search.
    Causal,
    /// The paper's DeepTune.
    #[default]
    DeepTune,
}

impl AlgorithmId {
    /// The job-file keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            AlgorithmId::Random => "random",
            AlgorithmId::Grid => "grid",
            AlgorithmId::Bayesian => "bayesian",
            AlgorithmId::Causal => "causal",
            AlgorithmId::DeepTune => "deeptune",
        }
    }
}

/// Exploration budget: iterations, virtual time, or both (§3.1).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Budget {
    /// Maximum number of configurations to evaluate.
    pub iterations: Option<usize>,
    /// Maximum virtual time in seconds.
    pub time_seconds: Option<f64>,
}

/// A pinned parameter (§3.5): fixed to `value`, never varied.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pin {
    /// Parameter name.
    pub name: String,
    /// Raw value text, interpreted against the parameter's kind.
    pub value: String,
}

/// An explicit parameter declaration in the job file.
#[derive(Clone, Debug, PartialEq)]
pub struct ParamDecl {
    /// The resulting spec.
    pub spec: ParamSpec,
}

/// A fully parsed job.
#[derive(Clone, Debug, PartialEq)]
pub struct Job {
    /// Job name (used in reports).
    pub name: String,
    /// Target OS keyword, resolved against the session's target registry
    /// (the five paper targets plus anything registered downstream).
    pub os: String,
    /// Target application keyword; the target's factory resolves it.
    /// `None` runs the target's default application.
    pub app: Option<String>,
    /// Metric name (e.g. `throughput`, `memory`); `None` optimizes the
    /// target's primary metric.
    pub metric: Option<String>,
    /// Optimization direction.
    pub direction: Direction,
    /// Stage focus.
    pub focus: Focus,
    /// Search algorithm.
    pub algorithm: AlgorithmId,
    /// RNG seed for the whole session.
    pub seed: u64,
    /// Benchmark repetitions per configuration.
    pub repetitions: usize,
    /// VM workers evaluating candidates in parallel (`None` = the
    /// platform default: `WF_WORKERS` from the environment, else 1).
    pub workers: Option<usize>,
    /// Evaluation backend: persistent in-process threads (default),
    /// remote `wf-evald` workers, or the legacy per-wave spawn path.
    pub backend: BackendChoice,
    /// Lane-routing strategy for the platform's router.
    pub routing: RoutingStrategy,
    /// Size of the probed runtime space for Linux-style targets (§3.4);
    /// `None` = the session default. Session-store manifests record it so
    /// a resumed session rebuilds the exact same space.
    pub runtime_params: Option<usize>,
    /// Session-store directory: when set, `wfctl run` persists the
    /// manifest and event log here (`None` = in-memory only).
    pub out: Option<String>,
    /// Daemon state root: `wfctl submit` sends this job to the `wfd`
    /// daemon serving this directory when no `--daemon` flag or
    /// `WF_DAEMON` variable overrides it (`None` = no default daemon).
    pub daemon: Option<String>,
    /// Budget.
    pub budget: Budget,
    /// Session mode: one-shot (default) or continuous re-specialization.
    pub mode: Mode,
    /// Continuous-mode drift section; present iff `mode: continuous`.
    pub drift: Option<DriftSpec>,
    /// Pinned parameters.
    pub pinned: Vec<Pin>,
    /// Explicit parameter declarations (empty = use the OS's own space).
    pub params: Vec<ParamDecl>,
}

impl Default for Job {
    fn default() -> Self {
        Self {
            name: "job".into(),
            os: "linux-4.19".into(),
            app: None,
            metric: None,
            direction: Direction::Maximize,
            focus: Focus::All,
            algorithm: AlgorithmId::DeepTune,
            seed: 1,
            repetitions: 1,
            workers: None,
            backend: BackendChoice::InProcess,
            routing: RoutingStrategy::RoundRobin,
            runtime_params: None,
            out: None,
            daemon: None,
            budget: Budget {
                iterations: Some(250),
                time_seconds: None,
            },
            mode: Mode::OneShot,
            drift: None,
            pinned: Vec::new(),
            params: Vec::new(),
        }
    }
}

/// A schema error: which field, what went wrong.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobError {
    /// Field path, e.g. `params[2].min`.
    pub field: String,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.field, self.message)
    }
}

impl std::error::Error for JobError {}

impl From<YamlError> for JobError {
    fn from(e: YamlError) -> Self {
        JobError {
            field: format!("(yaml line {})", e.line),
            message: e.message,
        }
    }
}

fn err(field: impl Into<String>, message: impl Into<String>) -> JobError {
    JobError {
        field: field.into(),
        message: message.into(),
    }
}

fn req_str(value: &Yaml, field: &str) -> Result<String, JobError> {
    value
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| err(field, "must be a string"))
}

impl Job {
    /// Parses a job from YAML text.
    ///
    /// # Examples
    ///
    /// ```
    /// use wf_jobfile::Job;
    ///
    /// let job = Job::parse("name: demo\nos: linux-4.19\napp: redis\nmetric: throughput\n").unwrap();
    /// assert_eq!(job.app.as_deref(), Some("redis"));
    /// assert_eq!(job.budget.iterations, Some(250)); // default
    /// ```
    pub fn parse(text: &str) -> Result<Job, JobError> {
        let doc = yaml::parse(text)?;
        Self::from_yaml(&doc)
    }

    /// Builds a job from a parsed YAML document.
    pub fn from_yaml(doc: &Yaml) -> Result<Job, JobError> {
        let mut job = Job::default();
        let map = doc
            .as_map()
            .ok_or_else(|| err("(root)", "job file must be a mapping"))?;
        for (key, value) in map {
            match key.as_str() {
                "name" => job.name = req_str(value, "name")?,
                "os" => job.os = req_str(value, "os")?,
                "app" => job.app = Some(req_str(value, "app")?),
                "metric" => job.metric = Some(req_str(value, "metric")?),
                "direction" => {
                    job.direction = match req_str(value, "direction")?.as_str() {
                        "maximize" | "max" => Direction::Maximize,
                        "minimize" | "min" => Direction::Minimize,
                        other => return Err(err("direction", format!("unknown {other:?}"))),
                    }
                }
                "focus" => {
                    job.focus = match req_str(value, "focus")?.as_str() {
                        "all" => Focus::All,
                        "compile" | "compile-time" => Focus::CompileTime,
                        "boot" | "boot-time" => Focus::BootTime,
                        "runtime" | "run-time" => Focus::Runtime,
                        other => return Err(err("focus", format!("unknown {other:?}"))),
                    }
                }
                "algorithm" => {
                    job.algorithm = match req_str(value, "algorithm")?.as_str() {
                        "random" => AlgorithmId::Random,
                        "grid" => AlgorithmId::Grid,
                        "bayesian" | "bayes" => AlgorithmId::Bayesian,
                        "causal" | "unicorn" => AlgorithmId::Causal,
                        "deeptune" => AlgorithmId::DeepTune,
                        other => return Err(err("algorithm", format!("unknown {other:?}"))),
                    }
                }
                "seed" => {
                    job.seed = value
                        .as_int()
                        .filter(|v| *v >= 0)
                        .ok_or_else(|| err("seed", "must be a non-negative integer"))?
                        as u64
                }
                "repetitions" => {
                    job.repetitions = value
                        .as_int()
                        .filter(|v| *v >= 1)
                        .ok_or_else(|| err("repetitions", "must be a positive integer"))?
                        as usize
                }
                "workers" => {
                    job.workers = Some(
                        value
                            .as_int()
                            .filter(|v| (1..=64).contains(v))
                            .ok_or_else(|| err("workers", "must be an integer in 1..=64"))?
                            as usize,
                    )
                }
                "backend" => {
                    let raw = req_str(value, "backend")?;
                    job.backend = BackendChoice::parse_keyword(&raw).ok_or_else(|| {
                        err(
                            "backend",
                            format!("unknown {raw:?} (expected spawn | in-process | remote)"),
                        )
                    })?
                }
                "routing" => {
                    let raw = req_str(value, "routing")?;
                    job.routing = RoutingStrategy::parse_keyword(&raw).ok_or_else(|| {
                        err(
                            "routing",
                            format!(
                                "unknown {raw:?} (expected random | fastest | round-robin | preferred)"
                            ),
                        )
                    })?
                }
                "runtime_params" => {
                    job.runtime_params =
                        Some(
                            value.as_int().filter(|v| *v >= 1).ok_or_else(|| {
                                err("runtime_params", "must be a positive integer")
                            })? as usize,
                        )
                }
                "out" => job.out = Some(req_str(value, "out")?),
                "daemon" => job.daemon = Some(req_str(value, "daemon")?),
                "budget" => {
                    let mut b = Budget::default();
                    for (bk, bv) in value
                        .as_map()
                        .ok_or_else(|| err("budget", "must be a mapping"))?
                    {
                        match bk.as_str() {
                            "iterations" => {
                                b.iterations =
                                    Some(bv.as_int().filter(|v| *v > 0).ok_or_else(|| {
                                        err("budget.iterations", "must be a positive integer")
                                    })? as usize)
                            }
                            "time_seconds" => {
                                b.time_seconds =
                                    Some(bv.as_float().filter(|v| *v > 0.0).ok_or_else(|| {
                                        err("budget.time_seconds", "must be a positive number")
                                    })?)
                            }
                            other => return Err(err("budget", format!("unknown key {other:?}"))),
                        }
                    }
                    job.budget = b;
                }
                "mode" => {
                    let raw = req_str(value, "mode")?;
                    job.mode = Mode::parse_keyword(&raw).ok_or_else(|| {
                        err(
                            "mode",
                            format!("unknown {raw:?} (expected one-shot | continuous)"),
                        )
                    })?
                }
                "drift" => {
                    let mut d = DriftSpec::default();
                    for (dk, dv) in value
                        .as_map()
                        .ok_or_else(|| err("drift", "must be a mapping"))?
                    {
                        match dk.as_str() {
                            "scenario" => {
                                let raw = req_str(dv, "drift.scenario")?;
                                d.scenario =
                                    DriftScenarioId::parse_keyword(&raw).ok_or_else(|| {
                                        err(
                                            "drift.scenario",
                                            format!(
                                                "unknown {raw:?} (expected step | diurnal | flash-crowd)"
                                            ),
                                        )
                                    })?
                            }
                            "detector" => {
                                let raw = req_str(dv, "drift.detector")?;
                                d.detector = DetectorId::parse_keyword(&raw).ok_or_else(|| {
                                    err(
                                        "drift.detector",
                                        format!(
                                            "unknown {raw:?} (expected mean-shift | page-hinkley)"
                                        ),
                                    )
                                })?
                            }
                            "shift_at_s" => {
                                d.shift_at_s =
                                    dv.as_float().filter(|v| *v > 0.0).ok_or_else(|| {
                                        err("drift.shift_at_s", "must be a positive number")
                                    })?
                            }
                            "window" => {
                                d.window = dv.as_int().filter(|v| *v >= 1).ok_or_else(|| {
                                    err("drift.window", "must be a positive integer")
                                })? as usize
                            }
                            "threshold" => {
                                d.threshold =
                                    dv.as_float().filter(|v| *v > 0.0).ok_or_else(|| {
                                        err("drift.threshold", "must be a positive number")
                                    })?
                            }
                            "min_epoch" => {
                                d.min_epoch = dv.as_int().filter(|v| *v >= 1).ok_or_else(|| {
                                    err("drift.min_epoch", "must be a positive integer")
                                })? as usize
                            }
                            "transfer" => {
                                d.transfer = dv
                                    .as_bool()
                                    .ok_or_else(|| err("drift.transfer", "must be a boolean"))?
                            }
                            other => return Err(err("drift", format!("unknown key {other:?}"))),
                        }
                    }
                    job.drift = Some(d);
                }
                "pinned" => {
                    let seq = value
                        .as_seq()
                        .ok_or_else(|| err("pinned", "must be a sequence"))?;
                    for (i, item) in seq.iter().enumerate() {
                        let name = item
                            .get("name")
                            .and_then(Yaml::as_str)
                            .ok_or_else(|| err(format!("pinned[{i}].name"), "missing"))?;
                        let value_text = item
                            .get("value")
                            .and_then(Yaml::scalar_text_ref)
                            .ok_or_else(|| err(format!("pinned[{i}].value"), "missing"))?;
                        job.pinned.push(Pin {
                            name: name.to_string(),
                            value: value_text,
                        });
                    }
                }
                "params" => {
                    let seq = value
                        .as_seq()
                        .ok_or_else(|| err("params", "must be a sequence"))?;
                    for (i, item) in seq.iter().enumerate() {
                        job.params.push(parse_param(item, i)?);
                    }
                }
                other => return Err(err("(root)", format!("unknown key {other:?}"))),
            }
        }
        match (job.mode, &job.drift) {
            (Mode::Continuous, None) => {
                return Err(err("mode", "continuous mode requires a drift: section"))
            }
            (Mode::OneShot, Some(_)) => {
                return Err(err("drift", "drift: requires mode: continuous"))
            }
            _ => {}
        }
        Ok(job)
    }

    /// Serializes the job back to YAML text (round-trip tested).
    pub fn to_yaml(&self) -> String {
        let mut root: Vec<(String, Yaml)> = vec![
            ("name".into(), Yaml::Str(self.name.clone())),
            ("os".into(), Yaml::Str(self.os.clone())),
            (
                "direction".into(),
                Yaml::Str(self.direction.keyword().into()),
            ),
            ("focus".into(), Yaml::Str(self.focus.keyword().into())),
            (
                "algorithm".into(),
                Yaml::Str(self.algorithm.keyword().into()),
            ),
            ("seed".into(), Yaml::Int(self.seed as i64)),
            ("repetitions".into(), Yaml::Int(self.repetitions as i64)),
        ];
        if let Some(app) = &self.app {
            root.insert(2, ("app".into(), Yaml::Str(app.clone())));
        }
        if let Some(metric) = &self.metric {
            let at = if self.app.is_some() { 3 } else { 2 };
            root.insert(at, ("metric".into(), Yaml::Str(metric.clone())));
        }
        if let Some(w) = self.workers {
            root.push(("workers".into(), Yaml::Int(w as i64)));
        }
        root.push(("backend".into(), Yaml::Str(self.backend.keyword().into())));
        root.push(("routing".into(), Yaml::Str(self.routing.keyword().into())));
        if let Some(n) = self.runtime_params {
            root.push(("runtime_params".into(), Yaml::Int(n as i64)));
        }
        if let Some(out) = &self.out {
            root.push(("out".into(), Yaml::Str(out.clone())));
        }
        if let Some(daemon) = &self.daemon {
            root.push(("daemon".into(), Yaml::Str(daemon.clone())));
        }
        let mut budget = Vec::new();
        if let Some(it) = self.budget.iterations {
            budget.push(("iterations".into(), Yaml::Int(it as i64)));
        }
        if let Some(t) = self.budget.time_seconds {
            budget.push(("time_seconds".into(), Yaml::Float(t)));
        }
        if !budget.is_empty() {
            root.push(("budget".into(), Yaml::Map(budget)));
        }
        if self.mode != Mode::OneShot {
            root.push(("mode".into(), Yaml::Str(self.mode.keyword().into())));
        }
        if let Some(d) = &self.drift {
            root.push((
                "drift".into(),
                Yaml::Map(vec![
                    ("scenario".into(), Yaml::Str(d.scenario.keyword().into())),
                    ("detector".into(), Yaml::Str(d.detector.keyword().into())),
                    ("shift_at_s".into(), Yaml::Float(d.shift_at_s)),
                    ("window".into(), Yaml::Int(d.window as i64)),
                    ("threshold".into(), Yaml::Float(d.threshold)),
                    ("min_epoch".into(), Yaml::Int(d.min_epoch as i64)),
                    ("transfer".into(), Yaml::Bool(d.transfer)),
                ]),
            ));
        }
        if !self.pinned.is_empty() {
            root.push((
                "pinned".into(),
                Yaml::Seq(
                    self.pinned
                        .iter()
                        .map(|p| {
                            Yaml::Map(vec![
                                ("name".into(), Yaml::Str(p.name.clone())),
                                ("value".into(), Yaml::Str(p.value.clone())),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        if !self.params.is_empty() {
            root.push((
                "params".into(),
                Yaml::Seq(self.params.iter().map(emit_param).collect()),
            ));
        }
        yaml::emit(&Yaml::Map(root))
    }

    /// Builds a configuration space from the explicit `params` section.
    ///
    /// Returns `None` when the job declares no explicit parameters (the
    /// platform then uses the OS's own space).
    pub fn param_space(&self) -> Option<ConfigSpace> {
        if self.params.is_empty() {
            return None;
        }
        let mut space = ConfigSpace::new();
        for p in &self.params {
            space.add(p.spec.clone());
        }
        Some(space)
    }

    /// Applies the `pinned` section to a space (§3.5 constrained search).
    ///
    /// Unknown names and uninterpretable values are errors: a pin the
    /// search silently ignored could ship an insecure configuration.
    pub fn apply_pins(&self, space: &mut ConfigSpace) -> Result<(), JobError> {
        for (i, pin) in self.pinned.iter().enumerate() {
            let idx = space.index_of(&pin.name).ok_or_else(|| {
                err(
                    format!("pinned[{i}].name"),
                    format!("unknown parameter {:?}", pin.name),
                )
            })?;
            let value = interpret_pin(&space.spec(idx).kind, &pin.value).ok_or_else(|| {
                err(
                    format!("pinned[{i}].value"),
                    format!(
                        "cannot interpret {:?} for {:?}",
                        pin.value,
                        space.spec(idx).kind
                    ),
                )
            })?;
            let ok = space.pin(&pin.name, value);
            debug_assert!(ok, "pin() cannot fail after the checks above");
        }
        Ok(())
    }
}

/// Interprets a pin's raw text against a parameter kind.
fn interpret_pin(kind: &ParamKind, raw: &str) -> Option<Value> {
    match kind {
        ParamKind::Bool => match raw {
            "true" | "1" | "y" | "on" => Some(Value::Bool(true)),
            "false" | "0" | "n" | "off" => Some(Value::Bool(false)),
            _ => None,
        },
        ParamKind::Tristate => Tristate::parse(raw).map(Value::Tristate),
        ParamKind::Int { min, max, .. } | ParamKind::Hex { min, max } => {
            let v = parse_int(raw)?;
            (v >= *min && v <= *max).then_some(Value::Int(v))
        }
        ParamKind::Enum { choices } => choices.iter().position(|c| c == raw).map(Value::Choice),
    }
}

fn parse_int(s: &str) -> Option<i64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn parse_param(item: &Yaml, i: usize) -> Result<ParamDecl, JobError> {
    let field = |suffix: &str| format!("params[{i}].{suffix}");
    let name = item
        .get("name")
        .and_then(Yaml::as_str)
        .ok_or_else(|| err(field("name"), "missing"))?;
    let ptype = item
        .get("type")
        .and_then(Yaml::as_str)
        .ok_or_else(|| err(field("type"), "missing"))?;
    let stage = match item
        .get("stage")
        .and_then(Yaml::as_str)
        .unwrap_or("runtime")
    {
        "compile" | "compile-time" => Stage::CompileTime,
        "boot" | "boot-time" => Stage::BootTime,
        "runtime" | "run-time" => Stage::Runtime,
        other => return Err(err(field("stage"), format!("unknown {other:?}"))),
    };
    let kind = match ptype {
        "bool" => ParamKind::Bool,
        "tristate" => ParamKind::Tristate,
        "int" | "hex" => {
            let min = item
                .get("min")
                .and_then(Yaml::as_int)
                .ok_or_else(|| err(field("min"), "missing for int/hex"))?;
            let max = item
                .get("max")
                .and_then(Yaml::as_int)
                .ok_or_else(|| err(field("max"), "missing for int/hex"))?;
            if min > max {
                return Err(err(field("min"), "min exceeds max"));
            }
            if ptype == "hex" {
                ParamKind::Hex { min, max }
            } else {
                let log = item.get("log").and_then(Yaml::as_bool).unwrap_or(false);
                if log {
                    if min < 0 {
                        return Err(err(field("log"), "log scale requires min >= 0"));
                    }
                    ParamKind::log_int(min, max)
                } else {
                    ParamKind::int(min, max)
                }
            }
        }
        "enum" => {
            let choices = item
                .get("choices")
                .and_then(Yaml::as_seq)
                .ok_or_else(|| err(field("choices"), "missing for enum"))?;
            if choices.is_empty() {
                return Err(err(field("choices"), "must not be empty"));
            }
            let strs: Vec<String> = choices
                .iter()
                .map(|c| c.scalar_text_ref().unwrap_or_default())
                .collect();
            ParamKind::choices(strs)
        }
        other => return Err(err(field("type"), format!("unknown {other:?}"))),
    };
    let mut spec = ParamSpec::new(name, kind.clone(), stage);
    if let Some(d) = item.get("default") {
        let raw = d
            .scalar_text_ref()
            .ok_or_else(|| err(field("default"), "must be a scalar"))?;
        let v = interpret_pin(&kind, &raw)
            .ok_or_else(|| err(field("default"), format!("cannot interpret {raw:?}")))?;
        spec = spec.with_default(v);
    }
    if let Some(doc) = item.get("doc").and_then(Yaml::as_str) {
        spec = spec.with_doc(doc);
    }
    Ok(ParamDecl { spec })
}

fn emit_param(p: &ParamDecl) -> Yaml {
    let spec = &p.spec;
    let mut pairs: Vec<(String, Yaml)> = vec![("name".into(), Yaml::Str(spec.name.clone()))];
    match &spec.kind {
        ParamKind::Bool => pairs.push(("type".into(), Yaml::Str("bool".into()))),
        ParamKind::Tristate => pairs.push(("type".into(), Yaml::Str("tristate".into()))),
        ParamKind::Int {
            min,
            max,
            log_scale,
        } => {
            pairs.push(("type".into(), Yaml::Str("int".into())));
            pairs.push(("min".into(), Yaml::Int(*min)));
            pairs.push(("max".into(), Yaml::Int(*max)));
            if *log_scale {
                pairs.push(("log".into(), Yaml::Bool(true)));
            }
        }
        ParamKind::Hex { min, max } => {
            pairs.push(("type".into(), Yaml::Str("hex".into())));
            pairs.push(("min".into(), Yaml::Int(*min)));
            pairs.push(("max".into(), Yaml::Int(*max)));
        }
        ParamKind::Enum { choices } => {
            pairs.push(("type".into(), Yaml::Str("enum".into())));
            pairs.push((
                "choices".into(),
                Yaml::Seq(choices.iter().map(|c| Yaml::Str(c.clone())).collect()),
            ));
        }
    }
    let default_text = match (&spec.kind, spec.default) {
        (_, Value::Bool(b)) => if b { "1" } else { "0" }.to_string(),
        (_, Value::Tristate(t)) => t.to_string(),
        (_, Value::Int(v)) => v.to_string(),
        (ParamKind::Enum { choices }, Value::Choice(c)) => choices[c].clone(),
        (_, Value::Choice(c)) => c.to_string(),
    };
    pairs.push(("default".into(), Yaml::Str(default_text)));
    pairs.push((
        "stage".into(),
        Yaml::Str(
            match spec.stage {
                Stage::CompileTime => "compile",
                Stage::BootTime => "boot",
                Stage::Runtime => "runtime",
            }
            .into(),
        ),
    ));
    if !spec.doc.is_empty() {
        pairs.push(("doc".into(), Yaml::Str(spec.doc.clone())));
    }
    Yaml::Map(pairs)
}

impl Yaml {
    /// Scalar text of a value, owned — helper for schema fields that accept
    /// any scalar (pin values may be `y`, `128`, `true`, ...).
    pub fn scalar_text_ref(&self) -> Option<String> {
        match self {
            Yaml::Str(s) => Some(s.clone()),
            Yaml::Bool(b) => Some(b.to_string()),
            Yaml::Int(v) => Some(v.to_string()),
            Yaml::Float(v) => Some(v.to_string()),
            Yaml::Null => None,
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FULL: &str = r#"
name: nginx-tuning
os: linux-4.19
app: nginx
metric: throughput
direction: maximize
focus: runtime
algorithm: deeptune
seed: 7
repetitions: 3
workers: 4
runtime_params: 120
out: runs/nginx-tuning
daemon: runs/wfd
budget:
  iterations: 250
  time_seconds: 18000
pinned:
  - name: aslr
    value: 1
params:
  - name: net.core.somaxconn
    type: int
    min: 16
    max: 65535
    log: true
    default: 128
    stage: runtime
  - name: qdisc
    type: enum
    choices: [pfifo, bfifo, fq_codel]
    default: bfifo
  - name: aslr
    type: bool
    default: 1
"#;

    #[test]
    fn parses_full_job() {
        let job = Job::parse(FULL).unwrap();
        assert_eq!(job.name, "nginx-tuning");
        assert_eq!(job.direction, Direction::Maximize);
        assert_eq!(job.focus, Focus::Runtime);
        assert_eq!(job.algorithm, AlgorithmId::DeepTune);
        assert_eq!(job.seed, 7);
        assert_eq!(job.repetitions, 3);
        assert_eq!(job.workers, Some(4));
        assert_eq!(job.runtime_params, Some(120));
        assert_eq!(job.out.as_deref(), Some("runs/nginx-tuning"));
        assert_eq!(job.daemon.as_deref(), Some("runs/wfd"));
        assert_eq!(job.budget.iterations, Some(250));
        assert_eq!(job.budget.time_seconds, Some(18000.0));
        assert_eq!(job.params.len(), 3);
        assert_eq!(job.pinned.len(), 1);
    }

    #[test]
    fn param_space_and_pins() {
        let job = Job::parse(FULL).unwrap();
        let mut space = job.param_space().expect("explicit params");
        assert_eq!(space.len(), 3);
        let qdisc = space.index_of("qdisc").unwrap();
        assert_eq!(space.spec(qdisc).default, Value::Choice(1));
        job.apply_pins(&mut space).unwrap();
        assert!(space.spec(space.index_of("aslr").unwrap()).fixed);
    }

    #[test]
    fn unknown_pin_is_an_error() {
        let mut job = Job::parse(FULL).unwrap();
        job.pinned.push(Pin {
            name: "nope".into(),
            value: "1".into(),
        });
        let mut space = job.param_space().unwrap();
        let e = job.apply_pins(&mut space).unwrap_err();
        assert!(e.message.contains("unknown parameter"));
    }

    #[test]
    fn bad_pin_value_is_an_error() {
        let job = Job::parse(
            "name: x\nparams:\n  - name: a\n    type: bool\npinned:\n  - name: a\n    value: maybe\n",
        )
        .unwrap();
        let mut space = job.param_space().unwrap();
        assert!(job.apply_pins(&mut space).is_err());
    }

    #[test]
    fn defaults_fill_in() {
        let job = Job::parse("name: x\n").unwrap();
        assert_eq!(job.algorithm, AlgorithmId::DeepTune);
        assert_eq!(job.budget.iterations, Some(250));
        assert_eq!(job.workers, None, "workers defaults to the platform's");
        assert!(job.param_space().is_none());
    }

    #[test]
    fn causal_algorithm_parses_under_both_keywords() {
        for kw in ["causal", "unicorn"] {
            let job = Job::parse(&format!("name: x\nalgorithm: {kw}\n")).unwrap();
            assert_eq!(job.algorithm, AlgorithmId::Causal);
        }
        assert_eq!(AlgorithmId::Causal.keyword(), "causal");
    }

    #[test]
    fn runtime_params_must_be_positive() {
        assert!(Job::parse("name: x\nruntime_params: 0\n").is_err());
        assert_eq!(
            Job::parse("name: x\nruntime_params: 64\n")
                .unwrap()
                .runtime_params,
            Some(64)
        );
    }

    #[test]
    fn workers_must_be_a_sane_count() {
        assert!(Job::parse("name: x\nworkers: 0\n").is_err());
        assert!(Job::parse("name: x\nworkers: 65\n").is_err());
        assert!(Job::parse("name: x\nworkers: many\n").is_err());
        assert_eq!(
            Job::parse("name: x\nworkers: 8\n").unwrap().workers,
            Some(8)
        );
    }

    #[test]
    fn backend_and_routing_parse_with_defaults() {
        let job = Job::parse("name: x\n").unwrap();
        assert_eq!(job.backend, BackendChoice::InProcess);
        assert_eq!(job.routing, RoutingStrategy::RoundRobin);

        let job = Job::parse("name: x\nbackend: remote\nrouting: fastest\n").unwrap();
        assert_eq!(job.backend, BackendChoice::Remote);
        assert_eq!(job.routing, RoutingStrategy::Fastest);

        let job = Job::parse("name: x\nbackend: spawn\nrouting: preferred\n").unwrap();
        assert_eq!(job.backend, BackendChoice::Spawn);
        assert_eq!(job.routing, RoutingStrategy::Preferred);

        assert!(Job::parse("name: x\nbackend: cloud\n").is_err());
        assert!(Job::parse("name: x\nrouting: slowest\n").is_err());
    }

    #[test]
    fn backend_and_routing_round_trip() {
        let mut job = Job::parse(FULL).unwrap();
        job.backend = BackendChoice::Remote;
        job.routing = RoutingStrategy::Preferred;
        let back = Job::parse(&job.to_yaml()).unwrap();
        assert_eq!(back.backend, BackendChoice::Remote);
        assert_eq!(back.routing, RoutingStrategy::Preferred);
    }

    #[test]
    fn unknown_root_key_is_rejected() {
        let e = Job::parse("name: x\nbanana: 1\n").unwrap_err();
        assert!(e.message.contains("banana"));
    }

    #[test]
    fn int_param_requires_bounds() {
        let e = Job::parse("params:\n  - name: a\n    type: int\n").unwrap_err();
        assert!(e.field.contains("min"));
    }

    #[test]
    fn enum_default_must_be_a_choice() {
        let e = Job::parse(
            "params:\n  - name: q\n    type: enum\n    choices: [a, b]\n    default: c\n",
        )
        .unwrap_err();
        assert!(e.field.contains("default"));
    }

    #[test]
    fn yaml_round_trip() {
        let job = Job::parse(FULL).unwrap();
        let text = job.to_yaml();
        let back = Job::parse(&text).expect("emitted job parses");
        assert_eq!(job, back, "emitted:\n{text}");
    }

    #[test]
    fn continuous_mode_parses_with_drift_section() {
        let job = Job::parse(
            "name: x\nmode: continuous\ndrift:\n  scenario: diurnal\n  detector: page-hinkley\n  shift_at_s: 600\n  window: 10\n  threshold: 0.2\n  min_epoch: 12\n  transfer: false\n",
        )
        .unwrap();
        assert_eq!(job.mode, Mode::Continuous);
        let d = job.drift.expect("drift section");
        assert_eq!(d.scenario, DriftScenarioId::Diurnal);
        assert_eq!(d.detector, DetectorId::PageHinkley);
        assert_eq!(d.shift_at_s, 600.0);
        assert_eq!(d.window, 10);
        assert_eq!(d.threshold, 0.2);
        assert_eq!(d.min_epoch, 12);
        assert!(!d.transfer);
    }

    #[test]
    fn drift_defaults_fill_in() {
        let job = Job::parse("name: x\nmode: continuous\ndrift:\n  scenario: step\n").unwrap();
        let d = job.drift.unwrap();
        assert_eq!(d, DriftSpec::default());
    }

    #[test]
    fn mode_and_drift_must_agree() {
        let e = Job::parse("name: x\nmode: continuous\n").unwrap_err();
        assert!(e.message.contains("drift"));
        let e = Job::parse("name: x\ndrift:\n  scenario: step\n").unwrap_err();
        assert!(e.message.contains("continuous"));
    }

    #[test]
    fn bad_drift_values_are_rejected() {
        assert!(Job::parse("name: x\nmode: continuous\ndrift:\n  scenario: tide\n").is_err());
        assert!(
            Job::parse("name: x\nmode: continuous\ndrift:\n  scenario: step\n  window: 0\n")
                .is_err()
        );
        assert!(Job::parse(
            "name: x\nmode: continuous\ndrift:\n  scenario: step\n  threshold: -1\n"
        )
        .is_err());
        assert!(Job::parse("name: x\nmode: frozen\n").is_err());
    }

    #[test]
    fn continuous_job_round_trips() {
        let mut job = Job::parse(FULL).unwrap();
        job.mode = Mode::Continuous;
        job.drift = Some(DriftSpec {
            scenario: DriftScenarioId::FlashCrowd,
            detector: DetectorId::PageHinkley,
            shift_at_s: 450.0,
            window: 9,
            threshold: 0.3,
            min_epoch: 6,
            transfer: false,
        });
        let text = job.to_yaml();
        let back = Job::parse(&text).expect("emitted job parses");
        assert_eq!(job, back, "emitted:\n{text}");
    }

    #[test]
    fn direction_better() {
        assert!(Direction::Maximize.better(2.0, 1.0));
        assert!(!Direction::Maximize.better(1.0, 1.0));
        assert!(Direction::Minimize.better(1.0, 2.0));
    }
}
