//! `wf-jobfile`: Wayfinder job files.
//!
//! The platform takes "YAML files representing the configuration space of
//! the target OS" plus the benchmark description (§3.1). This crate
//! provides:
//!
//! * [`yaml`] — a minimal YAML-subset parser and emitter (the sanctioned
//!   offline crate set has no YAML implementation);
//! * [`schema`] — the [`Job`] schema: OS/app/metric selection, budgets,
//!   stage focus, pinned security parameters (§3.5), and optional explicit
//!   parameter declarations, with conversion to `wf-configspace` spaces.

pub mod schema;
pub mod yaml;

pub use schema::{
    AlgorithmId, BackendChoice, Budget, DetectorId, Direction, DriftScenarioId, DriftSpec, Focus,
    Job, JobError, Mode, ParamDecl, Pin, RoutingStrategy,
};
pub use yaml::{Yaml, YamlError};
