//! A minimal YAML-subset parser.
//!
//! Wayfinder's job files (§3.1) are YAML. The sanctioned offline crate set
//! has no YAML implementation, so this module parses the subset the job
//! schema needs:
//!
//! * block mappings (`key: value` / nested blocks);
//! * block sequences (`- item`, including inline `- key: value` maps);
//! * flow sequences of scalars (`[a, b, c]`);
//! * scalars: booleans, integers (decimal/hex), floats, quoted and plain
//!   strings;
//! * `#` comments and blank lines.
//!
//! Anchors, aliases, multi-document streams, flow mappings, and block
//! scalars are intentionally *not* supported; encountering syntax outside
//! the subset is an error rather than silent misparsing.

use std::fmt;

/// A parsed YAML value.
#[derive(Clone, Debug, PartialEq)]
pub enum Yaml {
    /// Absent / empty value.
    Null,
    /// Boolean scalar (`true` / `false`).
    Bool(bool),
    /// Integer scalar (decimal or `0x` hex).
    Int(i64),
    /// Floating-point scalar.
    Float(f64),
    /// String scalar (quoted or plain).
    Str(String),
    /// Sequence.
    Seq(Vec<Yaml>),
    /// Mapping with preserved key order.
    Map(Vec<(String, Yaml)>),
}

impl Yaml {
    /// Looks up a key in a mapping.
    pub fn get(&self, key: &str) -> Option<&Yaml> {
        match self {
            Yaml::Map(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String view (only for `Str`).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Yaml::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Integer view (accepts `Int`; also `Bool` as 0/1 like YAML 1.1 tools).
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Yaml::Int(v) => Some(*v),
            Yaml::Bool(b) => Some(*b as i64),
            _ => None,
        }
    }

    /// Float view (accepts `Float` and `Int`).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Yaml::Float(v) => Some(*v),
            Yaml::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Yaml::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Sequence view.
    pub fn as_seq(&self) -> Option<&[Yaml]> {
        match self {
            Yaml::Seq(v) => Some(v),
            _ => None,
        }
    }

    /// Mapping view.
    pub fn as_map(&self) -> Option<&[(String, Yaml)]> {
        match self {
            Yaml::Map(v) => Some(v),
            _ => None,
        }
    }

    /// A scalar rendered back to text (used by the emitter).
    pub fn scalar_text(&self) -> Option<String> {
        match self {
            Yaml::Null => Some("null".into()),
            Yaml::Bool(b) => Some(b.to_string()),
            Yaml::Int(v) => Some(v.to_string()),
            Yaml::Float(v) => Some(format_float(*v)),
            Yaml::Str(s) => Some(quote_if_needed(s)),
            // Empty containers have flow/degraded scalar forms; non-empty
            // containers have none.
            Yaml::Seq(v) if v.is_empty() => Some("[]".into()),
            Yaml::Map(m) if m.is_empty() => Some("null".into()),
            _ => None,
        }
    }
}

/// A parse error with 1-based line information.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct YamlError {
    /// 1-based line number.
    pub line: usize,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for YamlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for YamlError {}

/// One significant (non-blank, non-comment) line.
struct Line<'a> {
    number: usize,
    indent: usize,
    content: &'a str,
}

/// Parses a YAML document.
///
/// # Examples
///
/// ```
/// use wf_jobfile::yaml::{parse, Yaml};
///
/// let doc = parse("name: demo\niterations: 250\n").unwrap();
/// assert_eq!(doc.get("name").and_then(Yaml::as_str), Some("demo"));
/// assert_eq!(doc.get("iterations").and_then(Yaml::as_int), Some(250));
/// ```
pub fn parse(input: &str) -> Result<Yaml, YamlError> {
    let mut lines = Vec::new();
    for (i, raw) in input.lines().enumerate() {
        let without_comment = strip_comment(raw);
        let trimmed_end = without_comment.trim_end();
        if trimmed_end.trim().is_empty() {
            continue;
        }
        if trimmed_end.contains('\t') {
            return Err(YamlError {
                line: i + 1,
                message: "tabs are not allowed in indentation".into(),
            });
        }
        let indent = trimmed_end.len() - trimmed_end.trim_start().len();
        lines.push(Line {
            number: i + 1,
            indent,
            content: trimmed_end.trim_start(),
        });
    }
    if lines.is_empty() {
        return Ok(Yaml::Null);
    }
    let mut pos = 0;
    let root_indent = lines[0].indent;
    let value = parse_block(&lines, &mut pos, root_indent)?;
    if pos != lines.len() {
        return Err(YamlError {
            line: lines[pos].number,
            message: format!("unexpected content at indent {}", lines[pos].indent),
        });
    }
    Ok(value)
}

fn parse_block(lines: &[Line], pos: &mut usize, indent: usize) -> Result<Yaml, YamlError> {
    if lines[*pos].content.starts_with("- ") || lines[*pos].content == "-" {
        parse_sequence(lines, pos, indent)
    } else {
        parse_mapping(lines, pos, indent)
    }
}

fn parse_sequence(lines: &[Line], pos: &mut usize, indent: usize) -> Result<Yaml, YamlError> {
    let mut items = Vec::new();
    while *pos < lines.len() && lines[*pos].indent == indent {
        let line = &lines[*pos];
        let rest = if line.content == "-" {
            ""
        } else if let Some(r) = line.content.strip_prefix("- ") {
            r
        } else {
            break;
        };
        let number = line.number;
        *pos += 1;
        if rest.is_empty() {
            // Item body is the following deeper block.
            if *pos < lines.len() && lines[*pos].indent > indent {
                let child_indent = lines[*pos].indent;
                items.push(parse_block(lines, pos, child_indent)?);
            } else {
                items.push(Yaml::Null);
            }
        } else if let Some((key, value_text)) = split_key(rest) {
            // Inline map item: `- key: value`, continued at deeper indent.
            // Continuation keys align under the first key (indent + 2).
            let mut pairs = vec![(
                key.to_string(),
                inline_value(value_text, lines, pos, indent, number)?,
            )];
            let cont_indent = indent + 2;
            while *pos < lines.len()
                && lines[*pos].indent == cont_indent
                && !lines[*pos].content.starts_with("- ")
            {
                let (k, v) = parse_mapping_entry(lines, pos)?;
                pairs.push((k, v));
            }
            items.push(Yaml::Map(pairs));
        } else {
            items.push(parse_scalar(rest, number)?);
        }
    }
    Ok(Yaml::Seq(items))
}

fn parse_mapping(lines: &[Line], pos: &mut usize, indent: usize) -> Result<Yaml, YamlError> {
    let mut pairs = Vec::new();
    while *pos < lines.len()
        && lines[*pos].indent == indent
        && !lines[*pos].content.starts_with("- ")
    {
        let (k, v) = parse_mapping_entry(lines, pos)?;
        if pairs.iter().any(|(prev, _)| *prev == k) {
            return Err(YamlError {
                line: lines[*pos - 1].number,
                message: format!("duplicate key {k:?}"),
            });
        }
        pairs.push((k, v));
    }
    if pairs.is_empty() {
        return Err(YamlError {
            line: lines[*pos].number,
            message: format!("expected `key: value`, got {:?}", lines[*pos].content),
        });
    }
    Ok(Yaml::Map(pairs))
}

/// Parses one `key: ...` entry (the line at `*pos`) and any nested block.
fn parse_mapping_entry(lines: &[Line], pos: &mut usize) -> Result<(String, Yaml), YamlError> {
    let line = &lines[*pos];
    let indent = line.indent;
    let number = line.number;
    let (key, value_text) = split_key(line.content).ok_or_else(|| YamlError {
        line: number,
        message: format!("expected `key: value`, got {:?}", line.content),
    })?;
    *pos += 1;
    let value = if value_text.is_empty() {
        if *pos < lines.len() && lines[*pos].indent > indent {
            let child_indent = lines[*pos].indent;
            parse_block(lines, pos, child_indent)?
        } else {
            Yaml::Null
        }
    } else {
        parse_scalar(value_text, number)?
    };
    Ok((key.to_string(), value))
}

/// Value of an inline `- key: value` head; empty means nested block.
fn inline_value(
    text: &str,
    lines: &[Line],
    pos: &mut usize,
    item_indent: usize,
    number: usize,
) -> Result<Yaml, YamlError> {
    if text.is_empty() {
        if *pos < lines.len() && lines[*pos].indent > item_indent + 2 {
            let child_indent = lines[*pos].indent;
            return parse_block(lines, pos, child_indent);
        }
        return Ok(Yaml::Null);
    }
    parse_scalar(text, number)
}

/// Splits `key: value` (colon must be followed by space or end of line).
fn split_key(s: &str) -> Option<(&str, &str)> {
    let mut in_str = false;
    for (i, c) in s.char_indices() {
        match c {
            '"' => in_str = !in_str,
            ':' if !in_str => {
                let rest = &s[i + 1..];
                if rest.is_empty() {
                    return Some((s[..i].trim(), ""));
                }
                if let Some(stripped) = rest.strip_prefix(' ') {
                    return Some((s[..i].trim(), stripped.trim()));
                }
            }
            _ => {}
        }
    }
    None
}

fn parse_scalar(s: &str, line: usize) -> Result<Yaml, YamlError> {
    let s = s.trim();
    if s.starts_with('[') {
        return parse_flow_seq(s, line);
    }
    if let Some(inner) = s.strip_prefix('"') {
        let inner = inner.strip_suffix('"').ok_or_else(|| YamlError {
            line,
            message: format!("unterminated string {s:?}"),
        })?;
        return Ok(Yaml::Str(inner.to_string()));
    }
    if let Some(inner) = s.strip_prefix('\'') {
        let inner = inner.strip_suffix('\'').ok_or_else(|| YamlError {
            line,
            message: format!("unterminated string {s:?}"),
        })?;
        return Ok(Yaml::Str(inner.to_string()));
    }
    Ok(plain_scalar(s))
}

fn plain_scalar(s: &str) -> Yaml {
    match s {
        "null" | "~" | "" => return Yaml::Null,
        "true" | "True" => return Yaml::Bool(true),
        "false" | "False" => return Yaml::Bool(false),
        _ => {}
    }
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        if let Ok(v) = i64::from_str_radix(hex, 16) {
            return Yaml::Int(v);
        }
    }
    if let Ok(v) = s.parse::<i64>() {
        return Yaml::Int(v);
    }
    // Floats must contain a digit to avoid swallowing words like `nan-x`.
    if s.chars().any(|c| c.is_ascii_digit()) {
        if let Ok(v) = s.parse::<f64>() {
            return Yaml::Float(v);
        }
    }
    Yaml::Str(s.to_string())
}

fn parse_flow_seq(s: &str, line: usize) -> Result<Yaml, YamlError> {
    let inner = s
        .strip_prefix('[')
        .and_then(|x| x.strip_suffix(']'))
        .ok_or_else(|| YamlError {
            line,
            message: format!("unterminated flow sequence {s:?}"),
        })?;
    let mut items = Vec::new();
    if inner.trim().is_empty() {
        return Ok(Yaml::Seq(items));
    }
    for part in split_flow_items(inner) {
        items.push(parse_scalar(part.trim(), line)?);
    }
    Ok(Yaml::Seq(items))
}

/// Splits flow-sequence items on commas outside quotes.
fn split_flow_items(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    for (i, c) in s.char_indices() {
        match c {
            '"' | '\'' => in_str = !in_str,
            ',' if !in_str => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&s[start..]);
    out
}

fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut quote = ' ';
    for (i, c) in line.char_indices() {
        match c {
            '"' | '\'' if !in_str => {
                in_str = true;
                quote = c;
            }
            c2 if in_str && c2 == quote => in_str = false,
            '#' if !in_str
                // `#` only starts a comment at line start or after a space.
                && (i == 0 || line.as_bytes()[i - 1] == b' ') =>
            {
                return &line[..i];
            }
            _ => {}
        }
    }
    line
}

/// Serializes a [`Yaml`] value back to text.
///
/// The output re-parses to an equal value (round-trip property tested),
/// with one caveat: `Null` map values print as explicit `null`.
pub fn emit(value: &Yaml) -> String {
    let mut out = String::new();
    emit_block(value, 0, &mut out);
    out
}

fn emit_block(value: &Yaml, indent: usize, out: &mut String) {
    let pad = " ".repeat(indent);
    match value {
        Yaml::Map(pairs) => {
            for (k, v) in pairs {
                match v {
                    Yaml::Map(_) | Yaml::Seq(_) if !is_empty_container(v) => {
                        out.push_str(&format!("{pad}{k}:\n"));
                        emit_block(v, indent + 2, out);
                    }
                    Yaml::Seq(items) if items.is_empty() => {
                        out.push_str(&format!("{pad}{k}: []\n"));
                    }
                    other => {
                        out.push_str(&format!(
                            "{pad}{k}: {}\n",
                            other.scalar_text().unwrap_or_else(|| "null".into())
                        ));
                    }
                }
            }
        }
        Yaml::Seq(items) => {
            for item in items {
                match item {
                    Yaml::Map(pairs) if !pairs.is_empty() => {
                        // `- key: value` head, remaining keys aligned below.
                        let (k0, v0) = &pairs[0];
                        match v0 {
                            Yaml::Map(_) | Yaml::Seq(_) if !is_empty_container(v0) => {
                                out.push_str(&format!("{pad}- {k0}:\n"));
                                emit_block(v0, indent + 4, out);
                            }
                            other => out.push_str(&format!(
                                "{pad}- {k0}: {}\n",
                                other.scalar_text().unwrap_or_else(|| "null".into())
                            )),
                        }
                        for (k, v) in &pairs[1..] {
                            match v {
                                Yaml::Map(_) | Yaml::Seq(_) if !is_empty_container(v) => {
                                    out.push_str(&format!("{pad}  {k}:\n"));
                                    emit_block(v, indent + 4, out);
                                }
                                other => out.push_str(&format!(
                                    "{pad}  {k}: {}\n",
                                    other.scalar_text().unwrap_or_else(|| "null".into())
                                )),
                            }
                        }
                    }
                    Yaml::Seq(items) if items.is_empty() => {
                        out.push_str(&format!("{pad}- []\n"));
                    }
                    // An empty mapping has no block representation in the
                    // subset; it degrades to null (documented caveat).
                    Yaml::Map(_) if is_empty_container(item) => {
                        out.push_str(&format!("{pad}- null\n"));
                    }
                    Yaml::Seq(_) | Yaml::Map(_) => {
                        out.push_str(&format!("{pad}-\n"));
                        emit_block(item, indent + 2, out);
                    }
                    scalar => out.push_str(&format!(
                        "{pad}- {}\n",
                        scalar.scalar_text().unwrap_or_else(|| "null".into())
                    )),
                }
            }
        }
        scalar => out.push_str(&format!(
            "{pad}{}\n",
            scalar.scalar_text().unwrap_or_else(|| "null".into())
        )),
    }
}

fn is_empty_container(v: &Yaml) -> bool {
    matches!(v, Yaml::Seq(items) if items.is_empty())
        || matches!(v, Yaml::Map(pairs) if pairs.is_empty())
}

fn quote_if_needed(s: &str) -> String {
    let needs = s.is_empty()
        || s.contains(':')
        || s.contains('#')
        || s.contains('[')
        || s.contains(',')
        || s.starts_with('-')
        || s.starts_with(' ')
        || s.ends_with(' ')
        || matches!(s, "true" | "false" | "null" | "~" | "True" | "False")
        || s.parse::<f64>().is_ok()
        || (s.starts_with("0x") && i64::from_str_radix(&s[2..], 16).is_ok());
    if needs {
        format!("\"{s}\"")
    } else {
        s.to_string()
    }
}

fn format_float(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        let doc = parse("a: 1\nb: 2.5\nc: true\nd: hello\ne: \"quoted: text\"\nf: 0x10\ng: null\n")
            .unwrap();
        assert_eq!(doc.get("a"), Some(&Yaml::Int(1)));
        assert_eq!(doc.get("b"), Some(&Yaml::Float(2.5)));
        assert_eq!(doc.get("c"), Some(&Yaml::Bool(true)));
        assert_eq!(doc.get("d").and_then(Yaml::as_str), Some("hello"));
        assert_eq!(doc.get("e").and_then(Yaml::as_str), Some("quoted: text"));
        assert_eq!(doc.get("f"), Some(&Yaml::Int(16)));
        assert_eq!(doc.get("g"), Some(&Yaml::Null));
    }

    #[test]
    fn parses_nested_maps() {
        let doc = parse("budget:\n  iterations: 250\n  time: 3600\nname: x\n").unwrap();
        let budget = doc.get("budget").unwrap();
        assert_eq!(budget.get("iterations"), Some(&Yaml::Int(250)));
        assert_eq!(doc.get("name").and_then(Yaml::as_str), Some("x"));
    }

    #[test]
    fn parses_sequences_of_scalars_and_maps() {
        let text = "\
params:
  - name: somaxconn
    min: 16
    max: 65535
  - name: quiet
    min: 0
    max: 1
tags:
  - fast
  - slow
";
        let doc = parse(text).unwrap();
        let params = doc.get("params").unwrap().as_seq().unwrap();
        assert_eq!(params.len(), 2);
        assert_eq!(
            params[0].get("name").and_then(Yaml::as_str),
            Some("somaxconn")
        );
        assert_eq!(params[0].get("max"), Some(&Yaml::Int(65535)));
        assert_eq!(params[1].get("name").and_then(Yaml::as_str), Some("quiet"));
        let tags = doc.get("tags").unwrap().as_seq().unwrap();
        assert_eq!(tags.len(), 2);
    }

    #[test]
    fn parses_flow_sequences() {
        let doc = parse("choices: [pfifo, bfifo, \"fq, codel\"]\nempty: []\n").unwrap();
        let c = doc.get("choices").unwrap().as_seq().unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c[2].as_str(), Some("fq, codel"));
        assert_eq!(doc.get("empty").unwrap().as_seq().unwrap().len(), 0);
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let doc = parse("# header\na: 1 # trailing\n\nb: \"#not a comment\"\n").unwrap();
        assert_eq!(doc.get("a"), Some(&Yaml::Int(1)));
        assert_eq!(doc.get("b").and_then(Yaml::as_str), Some("#not a comment"));
    }

    #[test]
    fn rejects_tabs_and_duplicates() {
        assert!(parse("a:\n\tb: 1\n").is_err());
        let err = parse("a: 1\na: 2\n").unwrap_err();
        assert!(err.message.contains("duplicate"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        // A dedent below the root indent cannot be valid.
        let err = parse("  a: 1\nb: 2\n").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn emit_round_trips() {
        let text = "\
name: nginx
budget:
  iterations: 250
params:
  - name: somaxconn
    min: 16
    log: true
  - name: qdisc
    choices: [pfifo, bfifo]
tags:
  - a
  - 3
";
        let doc = parse(text).unwrap();
        let emitted = emit(&doc);
        let back = parse(&emitted).unwrap();
        assert_eq!(doc, back, "emitted:\n{emitted}");
    }

    #[test]
    fn deep_nesting_round_trips() {
        let text = "a:\n  b:\n    c:\n      - d: 1\n      - e: [x, y]\n";
        let doc = parse(text).unwrap();
        assert_eq!(parse(&emit(&doc)).unwrap(), doc);
    }

    #[test]
    fn strings_that_look_like_numbers_survive() {
        let doc = Yaml::Map(vec![("v".into(), Yaml::Str("1.5".into()))]);
        let back = parse(&emit(&doc)).unwrap();
        assert_eq!(back.get("v").and_then(Yaml::as_str), Some("1.5"));
    }
}
