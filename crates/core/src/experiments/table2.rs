//! Table 2: best-performing configurations found after the §4.1 sessions.

use crate::experiments::fig06::{redis_checkpoint, run_app_search};
use crate::scale::Scale;
use rand::rngs::StdRng;
use rand::SeedableRng;
use wf_kconfig::LinuxVersion;
use wf_ossim::{App, AppId, SimOs};

/// One row of Table 2.
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// Application.
    pub app: AppId,
    /// Default ("Lupine Linux") performance.
    pub baseline: f64,
    /// Best configuration Wayfinder found.
    pub wayfinder: f64,
    /// Metric unit.
    pub unit: &'static str,
    /// `wayfinder / baseline`, direction-adjusted so > 1 is better.
    pub relative: f64,
    /// Mean time between improvements without transfer learning (s).
    pub time_to_find_no_tl_s: Option<f64>,
    /// The same with transfer learning.
    pub time_to_find_tl_s: Option<f64>,
}

/// Measures the default configuration's metric (the table's baseline).
fn baseline_metric(app: AppId, scale: &Scale, seed: u64) -> f64 {
    let os = SimOs::linux_runtime(LinuxVersion::V4_19, scale.runtime_params);
    let a = App::by_id(app);
    let cfg = os.space.default_config();
    let mut rng = StdRng::seed_from_u64(seed);
    let n = 40;
    (0..n)
        .map(|_| {
            os.evaluate(&a, &cfg, None, &mut rng)
                .outcome
                .expect("default never crashes")
                .metric
        })
        .sum::<f64>()
        / n as f64
}

/// Builds Table 2 by running the Fig. 6 sessions.
pub fn table2(scale: &Scale, seed: u64) -> Vec<Table2Row> {
    let ckpt = redis_checkpoint(scale, seed ^ 0x7e15);
    AppId::ALL
        .iter()
        .map(|app| {
            let result = run_app_search(*app, scale, &ckpt, seed);
            let meta = App::by_id(*app);
            let baseline = baseline_metric(*app, scale, seed ^ 0xba5e);
            // Best over the DeepTune runs (curve index 1).
            let deeptune = &result.runs[1];
            let transfer = &result.runs[2];
            let best = deeptune.iter().filter_map(|r| r.summary.best_metric).fold(
                if result.higher_better {
                    f64::MIN
                } else {
                    f64::MAX
                },
                |acc, v| {
                    if result.higher_better {
                        acc.max(v)
                    } else {
                        acc.min(v)
                    }
                },
            );
            let relative = if result.higher_better {
                best / baseline
            } else {
                baseline / best
            };
            let mean_time = |runs: &[crate::experiments::fig06::SessionRunData]| {
                let v: Vec<f64> = runs.iter().filter_map(|r| r.time_to_find_s).collect();
                if v.is_empty() {
                    None
                } else {
                    Some(v.iter().sum::<f64>() / v.len() as f64)
                }
            };
            Table2Row {
                app: *app,
                baseline,
                wayfinder: best,
                unit: meta.unit,
                relative,
                time_to_find_no_tl_s: mean_time(deeptune),
                time_to_find_tl_s: mean_time(transfer),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_table2() {
        let scale = Scale {
            search_iterations: 40,
            runs: 1,
            runtime_params: 56,
            ..Scale::tiny()
        };
        let rows = table2(&scale, 3);
        assert_eq!(rows.len(), 4);
        let by_app = |a: AppId| rows.iter().find(|r| r.app == a).unwrap();
        // Nginx improves the most; NPB barely; SQLite not at all
        // (relative is direction-adjusted: >= 1 means no regression).
        let nginx = by_app(AppId::Nginx);
        assert!(nginx.relative > 1.05, "nginx {:.3}", nginx.relative);
        let npb = by_app(AppId::Npb);
        assert!(npb.relative < 1.06, "npb {:.3}", npb.relative);
        let sqlite = by_app(AppId::Sqlite);
        assert!(
            (0.93..1.05).contains(&sqlite.relative),
            "sqlite {:.3}",
            sqlite.relative
        );
        assert!(nginx.relative > npb.relative);
        // Baselines near the Table 2 values.
        assert!((nginx.baseline - 15_731.0).abs() / 15_731.0 < 0.03);
        assert!((by_app(AppId::Redis).baseline - 58_000.0).abs() / 58_000.0 < 0.03);
    }
}
