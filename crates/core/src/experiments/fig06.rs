//! Fig. 6: search evolution for Nginx/Redis/SQLite/NPB — Random vs
//! DeepTune vs DeepTune+TL, performance (solid) and crash rate (dashed).

use crate::scale::Scale;
use crate::session::{AlgorithmChoice, SessionBuilder, SpecializationSession};
use wf_deeptune::Checkpoint;
use wf_ossim::AppId;
use wf_platform::{rolling_crash_rate, Series, SessionSummary};

/// One plotted curve pair: performance + crash rate.
#[derive(Clone, Debug)]
pub struct CurveSet {
    /// Legend label (`Random`, `DeepTune`, `DeepTune+TL`).
    pub label: String,
    /// Smoothed mean performance of the configurations found, vs time.
    pub perf: Series,
    /// Rolling crash rate, vs time.
    pub crash: Series,
}

/// Per-run data retained for Tables 2 and 3.
#[derive(Clone, Debug)]
pub struct SessionRunData {
    /// Final summary.
    pub summary: SessionSummary,
    /// Table 2's "avg time to find": mean seconds between best-so-far
    /// improvements.
    pub time_to_find_s: Option<f64>,
    /// Crash rate over the last third of the session.
    pub late_crash_rate: f64,
}

/// All Fig. 6 data for one application.
#[derive(Clone, Debug)]
pub struct AppSearchResult {
    /// The application.
    pub app: AppId,
    /// Metric unit for labelling.
    pub unit: &'static str,
    /// Whether larger metric values are better.
    pub higher_better: bool,
    /// Curves in Random / DeepTune / DeepTune+TL order.
    pub curves: Vec<CurveSet>,
    /// Per-run data per algorithm (same order as `curves`).
    pub runs: Vec<Vec<SessionRunData>>,
}

/// Points used when resampling run series onto a common time axis.
const RESAMPLE_POINTS: usize = 64;
/// Smoothing window ("results of 5 runs smoothed for readability").
const SMOOTH_WINDOW: usize = 7;
/// Rolling window for the crash-rate series.
const CRASH_WINDOW: usize = 12;

fn build_session(
    app: AppId,
    algorithm: AlgorithmChoice,
    scale: &Scale,
    seed: u64,
) -> SpecializationSession {
    SessionBuilder::new()
        .app(app)
        .algorithm(algorithm)
        .runtime_params(scale.runtime_params)
        .iterations(scale.search_iterations)
        .seed(seed)
        // Figure regenerations replay the paper's sequential pipeline.
        .workers(1)
        .build()
        .expect("fig6 session is well-formed")
}

/// Runs one session and extracts its series and run data.
fn run_session(mut session: SpecializationSession) -> (SessionRunData, Series, Series) {
    let summary = session.run().summary;
    let history = session.platform().history();
    let direction = session.platform().direction();

    let mut perf = Series::new();
    let mut times = Vec::new();
    let mut crashes = Vec::new();
    for r in history.records() {
        times.push(r.finished_at_s);
        crashes.push(r.crashed());
        if let Some(m) = r.metric {
            perf.push(r.finished_at_s, m);
        }
    }
    let crash = rolling_crash_rate(&times, &crashes, CRASH_WINDOW);
    let n = history.len();
    let late = &history.records()[n - (n / 3).max(1)..];
    let late_crash_rate =
        late.iter().filter(|r| r.crashed()).count() as f64 / late.len().max(1) as f64;
    let data = SessionRunData {
        time_to_find_s: history.mean_improvement_interval_s(direction),
        late_crash_rate,
        summary,
    };
    (data, perf, crash)
}

/// Averages several runs' series onto a common axis and smooths.
fn mean_curve(series: Vec<Series>, t_end: f64, smooth: usize) -> Series {
    let resampled: Vec<Series> = series
        .into_iter()
        .map(|s| s.resample(t_end, RESAMPLE_POINTS))
        .collect();
    Series::mean_of(&resampled).smoothed(smooth)
}

/// Trains DeepTune on Redis and extracts the §3.3 transfer checkpoint
/// ("we trained a model with DeepTune on Redis for 250 iterations").
pub fn redis_checkpoint(scale: &Scale, seed: u64) -> Checkpoint {
    let mut session = build_session(AppId::Redis, AlgorithmChoice::DeepTune, scale, seed);
    let _ = session.run();
    session
        .transfer_checkpoint()
        .expect("a completed DeepTune session has a checkpoint")
}

/// Runs the full Random / DeepTune / DeepTune+TL comparison for one
/// application.
pub fn run_app_search(
    app: AppId,
    scale: &Scale,
    redis_ckpt: &Checkpoint,
    seed: u64,
) -> AppSearchResult {
    let meta = wf_ossim::App::by_id(app);
    let mut curves = Vec::new();
    let mut runs = Vec::new();
    for label in ["Random", "DeepTune", "DeepTune+TL"] {
        let mut datas = Vec::new();
        let mut perfs = Vec::new();
        let mut crashes = Vec::new();
        let mut t_end = 0.0f64;
        for run in 0..scale.runs {
            let run_seed = seed ^ (run as u64 * 0x51ed) ^ fnv(label);
            let session = match label {
                "Random" => build_session(app, AlgorithmChoice::Random, scale, run_seed),
                "DeepTune" => build_session(app, AlgorithmChoice::DeepTune, scale, run_seed),
                _ => build_session(
                    app,
                    AlgorithmChoice::DeepTuneTransfer(redis_ckpt.clone()),
                    scale,
                    run_seed,
                ),
            };
            let (data, perf, crash) = run_session(session);
            t_end = t_end.max(data.summary.elapsed_s);
            datas.push(data);
            perfs.push(perf);
            crashes.push(crash);
        }
        curves.push(CurveSet {
            label: label.to_string(),
            perf: mean_curve(perfs, t_end, SMOOTH_WINDOW),
            crash: mean_curve(crashes, t_end, SMOOTH_WINDOW),
        });
        runs.push(datas);
    }
    AppSearchResult {
        app,
        unit: meta.unit,
        higher_better: matches!(meta.direction, wf_ossim::MetricDirection::HigherBetter),
        curves,
        runs,
    }
}

/// Runs the Fig. 6 study for all four applications.
pub fn fig6(scale: &Scale, seed: u64) -> Vec<AppSearchResult> {
    let ckpt = redis_checkpoint(scale, seed ^ 0x7e15);
    AppId::ALL
        .iter()
        .map(|app| run_app_search(*app, scale, &ckpt, seed))
        .collect()
}

fn fnv(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nginx_deeptune_beats_random_and_lowers_crashes() {
        let scale = Scale {
            search_iterations: 40,
            runs: 3,
            runtime_params: 56,
            ..Scale::tiny()
        };
        let ckpt = redis_checkpoint(&scale, 11);
        let r = run_app_search(AppId::Nginx, &scale, &ckpt, 21);
        assert_eq!(r.curves.len(), 3);
        let random = &r.runs[0];
        let deeptune = &r.runs[1];
        let transfer = &r.runs[2];
        let mean_best = |runs: &[SessionRunData]| {
            runs.iter()
                .map(|d| d.summary.best_metric.unwrap())
                .sum::<f64>()
                / runs.len() as f64
        };
        let mean_crash = |runs: &[SessionRunData]| {
            runs.iter().map(|d| d.summary.crash_rate).sum::<f64>() / runs.len() as f64
        };
        // DeepTune's best is at least random's (usually better).
        let rb = mean_best(random);
        let db = mean_best(deeptune);
        // At this tiny budget we only require rough parity; the decisive
        // win is asserted at the reduced/full scales in tests/experiments.
        assert!(db > rb * 0.90, "deeptune {db} vs random {rb}");
        // Transfer keeps the crash rate low from the start (§3.3). A
        // single 40-iteration run quantizes crash rate in steps of 0.025
        // and can tie; the mean over the replicate runs separates cleanly.
        assert!(
            mean_crash(transfer) < mean_crash(random),
            "tl={} random={}",
            mean_crash(transfer),
            mean_crash(random)
        );
        // Curves resampled to a shared axis.
        assert_eq!(r.curves[0].perf.len(), RESAMPLE_POINTS);
        assert_eq!(r.curves[0].crash.len(), RESAMPLE_POINTS);
    }
}
