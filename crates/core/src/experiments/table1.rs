//! Table 1: the Linux 6.0 configuration-space census.

use wf_kconfig::gen::{synthesize, LinuxVersion};

/// The full census row of Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Table1 {
    /// Compile-time `bool` options.
    pub bool_: usize,
    /// Compile-time `tristate` options.
    pub tristate: usize,
    /// Compile-time `string` options.
    pub string: usize,
    /// Compile-time `hex` options.
    pub hex: usize,
    /// Compile-time `int` options.
    pub int: usize,
    /// Boot-time options (kernel command line).
    pub boot: usize,
    /// Runtime options (writable /proc/sys and /sys files).
    pub runtime: usize,
}

impl Table1 {
    /// Total compile-time options.
    pub fn compile_total(&self) -> usize {
        self.bool_ + self.tristate + self.string + self.hex + self.int
    }
}

/// Builds the census by synthesizing the v6.0 model and counting the
/// boot/runtime populations.
pub fn table1() -> Table1 {
    let v = LinuxVersion::V6_0;
    let model = synthesize(v);
    let c = model.type_census();
    Table1 {
        bool_: c.bool_,
        tristate: c.tristate,
        string: c.string,
        hex: c.hex,
        int: c.int,
        boot: wf_kconfig::cmdline::boot_options(v).len(),
        runtime: wf_ossim::linux::full_runtime_space(v).len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn census_matches_table1_exactly() {
        let t = table1();
        assert_eq!(t.bool_, 7_585);
        assert_eq!(t.tristate, 10_034);
        assert_eq!(t.string, 154);
        assert_eq!(t.hex, 94);
        assert_eq!(t.int, 3_405);
        assert_eq!(t.boot, 231);
        assert_eq!(t.runtime, 13_328);
        assert_eq!(t.compile_total(), 21_272);
    }
}
