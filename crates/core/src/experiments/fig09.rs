//! Fig. 9: Nginx on Unikraft — Wayfinder vs random search vs Bayesian
//! optimization over a 3-hour budget.
//!
//! "Wayfinder quickly converges on a specialized configuration, reached
//! after 100 minutes. Bayesian optimization takes more than 160 minutes
//! to reach configurations that perform similarly. ... random search is
//! not able to find high-performance configurations."

use crate::experiments::fig06::CurveSet;
use crate::scale::Scale;
use crate::session::{AlgorithmChoice, SessionBuilder};
use wf_ossim::AppId;
use wf_platform::{rolling_crash_rate, Series};

/// The Fig. 9 dataset.
#[derive(Clone, Debug)]
pub struct Fig9Result {
    /// Curves in Random / Bayesian / Wayfinder order (mean of runs).
    pub curves: Vec<CurveSet>,
    /// Best throughput found per algorithm (same order).
    pub best: Vec<f64>,
    /// Virtual seconds to reach 3× the default throughput per algorithm
    /// (None = never reached within the budget).
    pub time_to_3x_s: Vec<Option<f64>>,
    /// The default configuration's throughput.
    pub default_throughput: f64,
}

const RESAMPLE_POINTS: usize = 64;

/// Runs the Unikraft comparison.
pub fn fig9(scale: &Scale, seed: u64) -> Fig9Result {
    let default_throughput = 9_800.0;
    let threshold = default_throughput * 3.0;
    let mut curves = Vec::new();
    let mut best = Vec::new();
    let mut time_to = Vec::new();
    for (label, algorithm) in [("Random", 0u8), ("Bayesian-opt", 1u8), ("Wayfinder", 2u8)] {
        let mut perfs = Vec::new();
        let mut crashes = Vec::new();
        let mut t_end = 0.0f64;
        let mut label_best = f64::MIN;
        let mut label_first_hit: Option<f64> = None;
        for run in 0..scale.runs {
            let choice = match algorithm {
                0 => AlgorithmChoice::Random,
                1 => AlgorithmChoice::Bayesian,
                _ => AlgorithmChoice::DeepTune,
            };
            let mut session = SessionBuilder::new()
                .os(crate::session::OsFlavor::Unikraft)
                .app(AppId::Nginx)
                .algorithm(choice)
                .time_budget_s(scale.unikraft_budget_s)
                .seed(seed ^ (run as u64 * 0xab1) ^ algorithm as u64)
                // Figure regenerations replay the sequential pipeline.
                .workers(1)
                .build()
                .expect("fig9 session");
            let summary = session.run().summary;
            t_end = t_end.max(summary.elapsed_s);
            label_best = label_best.max(summary.best_metric.unwrap_or(f64::MIN));
            let mut perf = Series::new();
            let mut times = Vec::new();
            let mut crashed = Vec::new();
            for r in session.platform().history().records() {
                times.push(r.finished_at_s);
                crashed.push(r.crashed());
                if let Some(m) = r.metric {
                    perf.push(r.finished_at_s, m);
                    if m >= threshold && label_first_hit.is_none_or(|t| r.finished_at_s < t) {
                        label_first_hit = Some(r.finished_at_s);
                    }
                }
            }
            perfs.push(perf);
            crashes.push(rolling_crash_rate(&times, &crashed, 12));
        }
        let mean = |series: Vec<Series>| {
            let resampled: Vec<Series> = series
                .into_iter()
                .map(|s| s.resample(t_end, RESAMPLE_POINTS))
                .collect();
            Series::mean_of(&resampled).smoothed(7)
        };
        curves.push(CurveSet {
            label: label.to_string(),
            perf: mean(perfs),
            crash: mean(crashes),
        });
        best.push(label_best);
        time_to.push(label_first_hit);
    }
    Fig9Result {
        curves,
        best,
        time_to_3x_s: time_to,
        default_throughput,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wayfinder_converges_first_and_random_never() {
        let scale = Scale {
            runs: 1,
            unikraft_budget_s: 5_200.0,
            ..Scale::tiny()
        };
        let r = fig9(&scale, 13);
        let (random, bayes, wayfinder) = (r.best[0], r.best[1], r.best[2]);
        // Wayfinder finds high-performance configurations.
        assert!(
            wayfinder > r.default_throughput * 2.0,
            "wayfinder best {wayfinder}"
        );
        // ... and beats random search decisively.
        assert!(
            wayfinder > random * 1.15,
            "wayfinder {wayfinder} vs random {random}"
        );
        // Bayesian lands between (or at least does not dominate).
        assert!(wayfinder >= bayes * 0.9, "bayes {bayes}");
        // Random never reaches high-performance configurations (Fig. 9).
        assert!(
            random < r.default_throughput * 2.5,
            "random found the conjunction region: {random}"
        );
        assert!(
            r.time_to_3x_s[0].is_none(),
            "random hit 3x: {:?}",
            r.time_to_3x_s[0]
        );
    }
}
