//! Fig. 11 + Table 4: throughput–memory co-optimization on top of a
//! Cozart baseline.
//!
//! Cozart's dynamic analysis debloats the kernel (≈ +31 % throughput,
//! smaller footprint); Wayfinder then explores the *runtime* parameters on
//! top of that fixed compile-time baseline, optimizing the Eq. 4 score.
//! Table 4's note applies here too: this setup (4 CPU cores, the Cozart
//! paper's baseline numbers) is not comparable with Table 2.

use crate::experiments::fig06::CurveSet;
use crate::scale::Scale;
use rand::rngs::StdRng;
use rand::SeedableRng;
use wf_cozart::{debloat, performance_uplift, WorkloadTrace};
use wf_deeptune::{DeepTune, DeepTuneConfig};
use wf_jobfile::{Budget, Direction};
use wf_kconfig::gen::synthesize;
use wf_kconfig::LinuxVersion;
use wf_ossim::{App, Machine, SimOs};
use wf_platform::{
    rolling_crash_rate, throughput_memory_score, Objective, Series, Session, SessionSpec,
};
use wf_search::{RandomSearch, SamplePolicy, SearchAlgorithm};

/// The composed Cozart-baseline target.
pub struct CozartTarget {
    /// The runtime-focused OS target on the debloated baseline.
    pub os: SimOs,
    /// The Nginx variant matching the Cozart paper's setup (4 cores).
    pub app: App,
    /// Fraction of compile options the debloat kept.
    pub kept_fraction: f64,
    /// Cozart baseline throughput (Table 4's last row).
    pub baseline_throughput: f64,
    /// Cozart baseline memory (MB).
    pub baseline_memory_mb: f64,
    /// Estimated throughput of the *un-debloated* default (the +31 %
    /// claim's denominator).
    pub undebloated_throughput: f64,
}

/// Builds the Cozart target: trace → debloat → runtime space on top.
pub fn cozart_target(scale: &Scale) -> CozartTarget {
    let model = synthesize(LinuxVersion::V4_19);
    let trace = WorkloadTrace::record(&model, "nginx");
    let d = debloat(&model, &trace);

    // The Cozart-paper setup: 4 cores, Nginx with the debloated baseline.
    let baseline_throughput = 46_855.0;
    let uplift = performance_uplift(d.kept_fraction);
    let mut app = App::nginx();
    app.base = baseline_throughput;
    app.cores = 4;
    let machine = Machine {
        cores: 4,
        ..Machine::xeon_e5_2697_v2()
    };

    let mut os = SimOs::linux_runtime(LinuxVersion::V4_19, scale.runtime_params);
    os.name = "linux-4.19-cozart".into();
    os.machine = machine;
    // Baseline memory: Cozart image resident + application.
    let baseline_memory_mb = 331.77;
    os.fixed_kernel_mb = baseline_memory_mb - app.mem_base_mb;
    CozartTarget {
        os,
        app,
        kept_fraction: d.kept_fraction,
        baseline_throughput,
        baseline_memory_mb,
        undebloated_throughput: baseline_throughput / uplift,
    }
}

/// The Fig. 11 dataset.
#[derive(Clone, Debug)]
pub struct Fig11Result {
    /// Curves in Random / DeepTune order: Eq. 4 score vs time.
    pub curves: Vec<CurveSet>,
    /// Per-algorithm (throughput, memory, time) triples of every
    /// successful evaluation (DeepTune's reused by Table 4).
    pub observations: Vec<Vec<(f64, f64, f64)>>,
    /// The +31 % context: baseline vs un-debloated throughput.
    pub baseline_throughput: f64,
    /// Estimated un-debloated throughput.
    pub undebloated_throughput: f64,
}

const RESAMPLE_POINTS: usize = 64;

/// Runs the co-optimization study.
pub fn fig11(scale: &Scale, seed: u64) -> Fig11Result {
    let mut curves = Vec::new();
    let mut observations = Vec::new();
    let target = cozart_target(scale);
    for (label, is_deeptune) in [("Random", false), ("DeepTune", true)] {
        let mut score_series = Vec::new();
        let mut crash_series = Vec::new();
        let mut t_end = 0.0f64;
        let mut triples = Vec::new();
        for run in 0..scale.runs {
            let algorithm: Box<dyn SearchAlgorithm> = if is_deeptune {
                Box::new(DeepTune::new(DeepTuneConfig::default()))
            } else {
                Box::new(RandomSearch::new())
            };
            let spec = SessionSpec {
                objective: Objective::ThroughputMemoryScore,
                direction: Direction::Maximize,
                policy: SamplePolicy::Uniform,
                budget: Budget {
                    iterations: None,
                    time_seconds: Some(scale.cozart_budget_s),
                },
                repetitions: 1,
                seed: seed ^ (run as u64 * 0xc0) ^ is_deeptune as u64,
                // Figure regenerations replay the paper's sequential
                // pipeline: one evaluation at a time, whatever WF_WORKERS
                // says.
                workers: 1,
                ..SessionSpec::default()
            };
            let mut session = Session::new(target.os.clone(), target.app.clone(), algorithm, spec);
            let _ = session.run();
            t_end = t_end.max(session.now_s());
            // Post-hoc Eq. 4 score over the whole run (stable min-max).
            let mut ts = Vec::new();
            let mut thr = Vec::new();
            let mut mem = Vec::new();
            let mut crash_t = Vec::new();
            let mut crashed = Vec::new();
            for r in session.history().records() {
                crash_t.push(r.finished_at_s);
                crashed.push(r.crashed());
                if let (Some(m), Some(mm)) = (r.metric, r.memory_mb) {
                    ts.push(r.finished_at_s);
                    thr.push(m);
                    mem.push(mm);
                }
            }
            let scores = throughput_memory_score(&thr, &mem);
            let mut s = Series::new();
            for (t, v) in ts.iter().zip(scores.iter()) {
                s.push(*t, *v);
            }
            score_series.push(s);
            crash_series.push(rolling_crash_rate(&crash_t, &crashed, 12));
            if run == 0 {
                triples = ts
                    .iter()
                    .zip(thr.iter().zip(mem.iter()))
                    .map(|(t, (th, me))| (*th, *me, *t))
                    .collect();
            }
        }
        let mean = |series: Vec<Series>| {
            let resampled: Vec<Series> = series
                .into_iter()
                .map(|s| s.resample(t_end, RESAMPLE_POINTS))
                .collect();
            Series::mean_of(&resampled).smoothed(7)
        };
        curves.push(CurveSet {
            label: label.to_string(),
            perf: mean(score_series),
            crash: mean(crash_series),
        });
        observations.push(triples);
    }
    Fig11Result {
        curves,
        observations,
        baseline_throughput: target.baseline_throughput,
        undebloated_throughput: target.undebloated_throughput,
    }
}

/// One row of Table 4.
#[derive(Clone, Debug)]
pub struct Table4 {
    /// Ranked (score, memory MB, throughput req/s) rows, best first.
    pub rows: Vec<(f64, f64, f64)>,
    /// The Cozart baseline (memory, throughput).
    pub baseline: (f64, f64),
}

/// Builds Table 4 from the DeepTune co-optimization run.
pub fn table4(scale: &Scale, seed: u64) -> Table4 {
    let fig = fig11(scale, seed);
    let deeptune = &fig.observations[1];
    let thr: Vec<f64> = deeptune.iter().map(|(t, _, _)| *t).collect();
    let mem: Vec<f64> = deeptune.iter().map(|(_, m, _)| *m).collect();
    let scores = throughput_memory_score(&thr, &mem);
    let mut rows: Vec<(f64, f64, f64)> = scores
        .iter()
        .zip(thr.iter().zip(mem.iter()))
        .map(|(s, (t, m))| (*s, *m, *t))
        .collect();
    rows.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    rows.truncate(5);

    // Measure the Cozart baseline itself.
    let target = cozart_target(scale);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xbabe);
    let cfg = target.os.space.default_config();
    let n = 20;
    let (mut t_sum, mut m_sum) = (0.0, 0.0);
    for _ in 0..n {
        let r = target
            .os
            .evaluate(&target.app, &cfg, None, &mut rng)
            .outcome
            .expect("baseline never crashes");
        t_sum += r.metric;
        m_sum += r.memory_mb;
    }
    Table4 {
        rows,
        baseline: (m_sum / n as f64, t_sum / n as f64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cozart_baseline_matches_table4_note() {
        let target = cozart_target(&Scale::tiny());
        assert!((0.15..0.5).contains(&target.kept_fraction));
        // The +31% claim: baseline over un-debloated default.
        let uplift = target.baseline_throughput / target.undebloated_throughput;
        assert!((1.25..1.40).contains(&uplift), "uplift {uplift}");
        assert!((target.baseline_memory_mb - 331.77).abs() < 1e-9);
    }

    #[test]
    fn co_optimization_beats_the_baseline_score() {
        let scale = Scale {
            runs: 1,
            cozart_budget_s: 2_200.0,
            ..Scale::tiny()
        };
        let t = table4(&scale, 23);
        assert!(!t.rows.is_empty());
        let (baseline_mem, baseline_thr) = t.baseline;
        assert!(
            (baseline_thr - 46_855.0).abs() / 46_855.0 < 0.05,
            "thr {baseline_thr}"
        );
        assert!(
            (baseline_mem - 331.77).abs() / 331.77 < 0.08,
            "mem {baseline_mem}"
        );
        // The top row dominates on score; rows are sorted.
        assert!(t.rows.windows(2).all(|w| w[0].0 >= w[1].0));
    }
}
