//! Per-figure / per-table experiment runners (the DESIGN.md §3 index).
//!
//! Every runner returns structured data; the `wf-bench` binaries print the
//! same rows/series the paper reports, and the integration tests assert
//! the *shapes* (who wins, by roughly what factor, where crossovers fall)
//! rather than absolute numbers.

pub mod fig01;
pub mod fig02;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod table1;
pub mod table2;
pub mod table3;

pub use fig01::{fig1, Fig1Row};
pub use fig02::{fig2, Fig2Result};
pub use fig05::{fig5, Fig5Result};
pub use fig06::{fig6, redis_checkpoint, run_app_search, AppSearchResult, CurveSet};
pub use fig07::{fig7, Fig7Result, ScalingPoint};
pub use fig08::{fig8, Fig8Result};
pub use fig09::{fig9, Fig9Result};
pub use fig10::{fig10, Fig10Result};
pub use fig11::{fig11, table4, CozartTarget, Fig11Result, Table4};
pub use table1::{table1, Table1};
pub use table2::{table2, Table2Row};
pub use table3::{table3, Table3Row};
