//! Fig. 2: Nginx throughput for N random Linux configurations.
//!
//! "We want to obtain 800 valid configurations so when one fails ... we
//! re-generate a random configuration until we obtain a valid one."
//! Configurations are sorted in ascending performance order and compared
//! to the default's throughput.

use crate::scale::Scale;
use rand::rngs::StdRng;
use rand::SeedableRng;
use wf_kconfig::LinuxVersion;
use wf_ossim::{App, AppId, SimOs};

/// The Fig. 2 dataset.
#[derive(Clone, Debug)]
pub struct Fig2Result {
    /// Per-configuration throughput, sorted ascending.
    pub sorted_throughput: Vec<f64>,
    /// The default configuration's throughput.
    pub default_throughput: f64,
    /// Fraction of configurations below the default.
    pub share_below_default: f64,
    /// Best random / default ratio.
    pub best_ratio: f64,
    /// Configurations that crashed and were re-generated.
    pub crashes_discarded: usize,
}

/// Runs the random-sampling study.
pub fn fig2(scale: &Scale, seed: u64) -> Fig2Result {
    let os = SimOs::linux_runtime(LinuxVersion::V4_19, scale.runtime_params);
    let app = App::by_id(AppId::Nginx);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut throughput = Vec::with_capacity(scale.fig2_samples);
    let mut crashes = 0;
    while throughput.len() < scale.fig2_samples {
        let cfg = os.space.sample(&mut rng);
        match os.evaluate(&app, &cfg, None, &mut rng).outcome {
            Ok(r) => throughput.push(r.metric),
            Err(_) => crashes += 1,
        }
    }
    let n = 40;
    let default_throughput = {
        let cfg = os.space.default_config();
        (0..n)
            .map(|_| {
                os.evaluate(&app, &cfg, None, &mut rng)
                    .outcome
                    .expect("default never crashes")
                    .metric
            })
            .sum::<f64>()
            / n as f64
    };
    throughput.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let below = throughput
        .iter()
        .filter(|t| **t < default_throughput)
        .count() as f64
        / throughput.len() as f64;
    let best_ratio = throughput.last().unwrap() / default_throughput;
    Fig2Result {
        sorted_throughput: throughput,
        default_throughput,
        share_below_default: below,
        best_ratio,
        crashes_discarded: crashes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_the_paper() {
        let r = fig2(&Scale::tiny(), 2);
        assert_eq!(r.sorted_throughput.len(), 40);
        // Sorted ascending.
        assert!(r.sorted_throughput.windows(2).all(|w| w[0] <= w[1]));
        // Default around 15.7K req/s; best random above it; most below.
        assert!((14_000.0..17_500.0).contains(&r.default_throughput));
        assert!(r.best_ratio > 1.0, "best ratio {}", r.best_ratio);
        assert!(r.share_below_default > 0.4);
        // About a third of raw samples crash and are re-generated.
        assert!(r.crashes_discarded > 5, "{}", r.crashes_discarded);
    }
}
