//! Fig. 7: per-iteration cost of DeepTune vs a Unicorn-style causal
//! search on a synthetic dataset.
//!
//! "As Unicorn cannot scale to the size of Linux's configuration, we
//! create a synthetic dataset with known local and global maxima ... with
//! a total number of parameters that match those used in the original
//! Unicorn paper." Unicorn's evaluation targets systems with tens of
//! options; the synthetic space here has 30 integer parameters, a global
//! optimum, and a decoy local optimum.

use crate::scale::Scale;
use rand::rngs::StdRng;
use rand::SeedableRng;
use wf_configspace::{ConfigSpace, Configuration, Encoder, ParamKind, ParamSpec, Stage};
use wf_deeptune::{DeepTune, DeepTuneConfig};
use wf_jobfile::Direction;
use wf_search::{CausalSearch, Observation, SamplePolicy, SearchAlgorithm, SearchContext};

/// One measurement of an algorithm's per-iteration cost.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScalingPoint {
    /// Iteration index.
    pub iteration: usize,
    /// Real seconds of algorithm compute this iteration.
    pub time_s: f64,
    /// Live bytes attributed to the algorithm.
    pub memory_bytes: usize,
}

/// The Fig. 7 dataset.
#[derive(Clone, Debug)]
pub struct Fig7Result {
    /// Unicorn-style causal search costs.
    pub unicorn: Vec<ScalingPoint>,
    /// DeepTune costs.
    pub deeptune: Vec<ScalingPoint>,
}

/// The synthetic space: 30 integer parameters in [0, 100].
fn synthetic_space() -> ConfigSpace {
    let mut s = ConfigSpace::new();
    for i in 0..30 {
        s.add(ParamSpec::new(
            format!("p{i}"),
            ParamKind::int(0, 100),
            Stage::Runtime,
        ));
    }
    s
}

/// Objective with a known global maximum (p0 = 80, p1 = 20) and a decoy
/// local maximum (p0 = 20, p1 = 80).
fn objective(c: &Configuration, space: &ConfigSpace) -> f64 {
    let v = |name: &str| c.by_name(space, name).unwrap().as_f64();
    let bump = |x: f64, y: f64, cx: f64, cy: f64, h: f64| {
        let d2 = (x - cx) * (x - cx) + (y - cy) * (y - cy);
        h * (-d2 / 800.0).exp()
    };
    let (x, y) = (v("p0"), v("p1"));
    bump(x, y, 80.0, 20.0, 100.0) + bump(x, y, 20.0, 80.0, 60.0)
}

/// Drives one algorithm over the synthetic dataset, recording costs.
fn drive(alg: &mut dyn SearchAlgorithm, iterations: usize, seed: u64) -> Vec<ScalingPoint> {
    let space = synthetic_space();
    let encoder = Encoder::new(&space);
    let policy = SamplePolicy::Uniform;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut history: Vec<Observation> = Vec::new();
    let mut out = Vec::with_capacity(iterations);
    for i in 0..iterations {
        let c = {
            let ctx = SearchContext {
                space: &space,
                encoder: &encoder,
                direction: Direction::Maximize,
                policy: &policy,
                history: &history,
                iteration: i,
            };
            alg.propose(&ctx, &mut rng)
        };
        let y = objective(&c, &space);
        let obs = Observation::ok(c, y, 1.0);
        let ctx = SearchContext {
            space: &space,
            encoder: &encoder,
            direction: Direction::Maximize,
            policy: &policy,
            history: &history,
            iteration: i,
        };
        alg.observe(&ctx, &obs);
        history.push(obs);
        let stats = alg.stats();
        out.push(ScalingPoint {
            iteration: i,
            time_s: stats.last_update_seconds,
            memory_bytes: stats.memory_bytes,
        });
    }
    out
}

/// Runs the scalability comparison.
pub fn fig7(scale: &Scale, seed: u64) -> Fig7Result {
    // Fig. 7 measures Unicorn *as published*: column statistics rescanned
    // over the full history on every rebuild. The platform's `causal`
    // algorithm defaults to the bit-identical incremental-sums variant;
    // `with_scratch_stats(true)` pins the paper's cost profile here so
    // the figure keeps showing the blow-up the paper critiques.
    let mut unicorn = CausalSearch::new().with_scratch_stats(true);
    let unicorn_points = drive(&mut unicorn, scale.fig7_iterations, seed);
    let mut deeptune = DeepTune::new(DeepTuneConfig {
        warmup: 8,
        epochs_per_observe: 2,
        ..DeepTuneConfig::default()
    });
    let deeptune_points = drive(&mut deeptune, scale.fig7_iterations, seed);
    Fig7Result {
        unicorn: unicorn_points,
        deeptune: deeptune_points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unicorn_costs_blow_up_while_deeptune_stays_flat() {
        let r = fig7(
            &Scale {
                fig7_iterations: 40,
                ..Scale::tiny()
            },
            4,
        );
        let n = r.unicorn.len();
        assert_eq!(n, 40);
        // Memory: Unicorn grows superlinearly (cache + data), DeepTune
        // linearly (replay buffer only).
        let u_growth = r.unicorn[n - 1].memory_bytes as f64 / r.unicorn[n / 2].memory_bytes as f64;
        let d_growth =
            r.deeptune[n - 1].memory_bytes as f64 / r.deeptune[n / 2].memory_bytes as f64;
        assert!(
            u_growth > d_growth,
            "unicorn {u_growth:.2}x vs deeptune {d_growth:.2}x"
        );
        // DeepTune's model dominates its memory; doubling the data must
        // not double its footprint.
        assert!(d_growth < 1.5, "deeptune growth {d_growth}");
        // Late-stage Unicorn iterations cost more than early ones.
        let early: f64 = r.unicorn[5..15].iter().map(|p| p.time_s).sum();
        let late: f64 = r.unicorn[n - 10..].iter().map(|p| p.time_s).sum();
        assert!(late > early, "late {late} vs early {early}");
    }
}
