//! Table 3: DeepTune's prediction accuracy on held-out configurations.
//!
//! After a search session, the trained DTM is evaluated on fresh random
//! configurations: *failure accuracy* is the fraction of actually crashing
//! configurations predicted to crash; *run accuracy* the fraction of
//! actually working configurations predicted to work; the normalized MAE
//! compares predicted and measured performance on working configurations,
//! divided by the observed performance range.

use crate::scale::Scale;
use crate::session::{AlgorithmChoice, SessionBuilder};
use rand::rngs::StdRng;
use rand::SeedableRng;
use wf_configspace::Encoder;
use wf_deeptune::DeepTune;
use wf_jobfile::Direction;
use wf_ossim::AppId;

/// One row of Table 3.
#[derive(Clone, Debug)]
pub struct Table3Row {
    /// Application.
    pub app: AppId,
    /// Recall on crashing configurations.
    pub failure_accuracy: f64,
    /// Recall on working configurations.
    pub run_accuracy: f64,
    /// Normalized mean absolute error of performance predictions.
    pub mae_normalized: f64,
}

/// Trains a session per application and evaluates its model.
pub fn table3(scale: &Scale, seed: u64) -> Vec<Table3Row> {
    AppId::ALL
        .iter()
        .map(|app| evaluate_app(*app, scale, seed))
        .collect()
}

fn train_session(app: AppId, scale: &Scale, seed: u64) -> crate::session::SpecializationSession {
    let mut session = SessionBuilder::new()
        .app(app)
        .algorithm(AlgorithmChoice::DeepTune)
        .runtime_params(scale.runtime_params)
        .iterations(scale.search_iterations)
        .seed(seed)
        // Table regenerations replay the paper's sequential pipeline.
        .workers(1)
        .build()
        .expect("table3 session");
    let _ = session.run();
    session
}

fn evaluate_app(app: AppId, scale: &Scale, seed: u64) -> Table3Row {
    let mut session = train_session(app, scale, seed);
    evaluate_trained(&mut session, app, scale, seed)
}

fn evaluate_trained(
    session: &mut crate::session::SpecializationSession,
    app: AppId,
    scale: &Scale,
    seed: u64,
) -> Table3Row {
    let direction = session.platform().direction();

    // Held-out set: fresh random configurations with ground-truth labels,
    // sampled straight from the simulated target's models.
    let sim = session
        .platform()
        .target()
        .as_any()
        .downcast_ref::<wf_platform::SimTarget>()
        .expect("table3 runs on simulated targets");
    let os = sim.os().clone();
    let meta = sim.app().clone();
    let encoder = Encoder::new(&os.space);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x3e1d);
    let mut features = Vec::with_capacity(scale.table3_samples);
    let mut actual_crash = Vec::with_capacity(scale.table3_samples);
    let mut actual_value = Vec::with_capacity(scale.table3_samples);
    for _ in 0..scale.table3_samples {
        let cfg = os.space.sample(&mut rng);
        let view = cfg.named(&os.space);
        let crash = wf_ossim::first_crash(&os.crash_rules, &view, &os.defaults_view).is_some();
        actual_crash.push(crash);
        actual_value.push(if crash {
            None
        } else {
            Some(meta.measure(&view, &os.defaults_view, &os.machine, &mut rng))
        });
        features.push(encoder.encode(&os.space, &cfg));
    }

    let dt = session
        .platform_mut()
        .algorithm_mut()
        .as_any_mut()
        .expect("DeepTune supports downcasts")
        .downcast_mut::<DeepTune>()
        .expect("session was built with DeepTune");
    let preds = dt
        .predict_goodness(&features)
        .expect("session trained the model");

    let mut crash_hits = 0usize;
    let mut crash_total = 0usize;
    let mut run_hits = 0usize;
    let mut run_total = 0usize;
    let mut abs_err = Vec::new();
    let mut observed = Vec::new();
    for i in 0..preds.len() {
        let predicted_crash = preds[i].crash_prob > 0.5;
        if actual_crash[i] {
            crash_total += 1;
            if predicted_crash {
                crash_hits += 1;
            }
        } else {
            run_total += 1;
            if !predicted_crash {
                run_hits += 1;
            }
            let actual = actual_value[i].expect("non-crashed sample has a value");
            let predicted = match direction {
                Direction::Maximize => preds[i].mu,
                Direction::Minimize => -preds[i].mu,
            };
            abs_err.push((predicted - actual).abs());
            observed.push(actual);
        }
    }
    let range = {
        let lo = observed.iter().cloned().fold(f64::MAX, f64::min);
        let hi = observed.iter().cloned().fold(f64::MIN, f64::max);
        (hi - lo).max(1e-9)
    };
    Table3Row {
        app,
        failure_accuracy: crash_hits as f64 / crash_total.max(1) as f64,
        run_accuracy: run_hits as f64 / run_total.max(1) as f64,
        mae_normalized: abs_err.iter().sum::<f64>() / abs_err.len().max(1) as f64 / range,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_bounds_and_crash_signal() {
        let scale = Scale {
            search_iterations: 45,
            table3_samples: 80,
            runtime_params: 56,
            ..Scale::tiny()
        };
        let mut session = train_session(AppId::Redis, &scale, 9);
        let row = evaluate_trained(&mut session, AppId::Redis, &scale, 9);
        assert!((0.0..=1.0).contains(&row.failure_accuracy));
        assert!((0.0..=1.0).contains(&row.run_accuracy));
        assert!(row.mae_normalized >= 0.0);

        // The paper's headline (0.74-0.80 failure accuracy) needs its full
        // search budgets; a 45-iteration session cannot generalize to
        // uniform held-out configurations from ~45 search-biased samples.
        // What *must* hold at any scale is that the crash head learns the
        // crash boundary it actually observed: recall on the session's own
        // crashing observations (reusing the session trained above) has to
        // beat coin-flipping by a wide margin.
        let os = session
            .platform()
            .target()
            .as_any()
            .downcast_ref::<wf_platform::SimTarget>()
            .expect("table3 runs on simulated targets")
            .os()
            .clone();
        let encoder = Encoder::new(&os.space);
        // Own the slice: the DeepTune downcast below needs the platform
        // mutably while the observations are still in use.
        let observations = session.platform().history().observations().to_vec();
        let features: Vec<Vec<f64>> = observations
            .iter()
            .map(|o| encoder.encode(&os.space, &o.config))
            .collect();
        let dt = session
            .platform_mut()
            .algorithm_mut()
            .as_any_mut()
            .expect("DeepTune supports downcasts")
            .downcast_mut::<DeepTune>()
            .expect("session was built with DeepTune");
        let preds = dt.predict_goodness(&features).expect("trained model");
        let mut crash_hits = 0usize;
        let mut crash_total = 0usize;
        for (pred, obs) in preds.iter().zip(&observations) {
            if obs.crashed {
                crash_total += 1;
                if pred.crash_prob > 0.5 {
                    crash_hits += 1;
                }
            }
        }
        assert!(crash_total > 0, "warmup always explores into crash regions");
        let recall = crash_hits as f64 / crash_total as f64;
        assert!(
            recall > 0.5,
            "observed-crash recall {recall} ({crash_hits}/{crash_total})"
        );
    }
}
