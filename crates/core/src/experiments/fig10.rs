//! Fig. 10: RISC-V Linux memory footprint minimization over compile-time
//! options — Wayfinder vs random search, 3-hour budget.
//!
//! "The default configuration has a 210 MB memory footprint. After 3
//! hours, Wayfinder finds a configuration having a memory footprint of
//! 192 MB (8.5 % reduction) ... random search['s best] is 203 MB (5.5 %)."

use crate::experiments::fig06::CurveSet;
use crate::scale::Scale;
use crate::session::{AlgorithmChoice, OsFlavor, SessionBuilder};
use wf_deeptune::{DeepTuneConfig, PoolConfig};
use wf_platform::{rolling_crash_rate, Objective, Series};

/// The Fig. 10 dataset.
#[derive(Clone, Debug)]
pub struct Fig10Result {
    /// Curves in Random / DeepTune order: best-so-far footprint (MB).
    pub curves: Vec<CurveSet>,
    /// Default footprint (MB).
    pub default_mb: f64,
    /// Best footprint per algorithm (same order as curves).
    pub best_mb: Vec<f64>,
    /// Crashes per algorithm over the whole session.
    pub crashes: Vec<usize>,
    /// Crashes per algorithm in the last third of the session (the
    /// paper: "only four crashes happen in the last 100 minutes").
    pub late_crashes: Vec<usize>,
}

const RESAMPLE_POINTS: usize = 48;

/// Runs the footprint study.
pub fn fig10(scale: &Scale, seed: u64) -> Fig10Result {
    let mut curves = Vec::new();
    let mut best_mb = Vec::new();
    let mut crashes = Vec::new();
    let mut late_crashes = Vec::new();
    for (label, is_deeptune) in [("Random", false), ("DeepTune", true)] {
        let mut footprints = Vec::new();
        let mut crash_series = Vec::new();
        let mut t_end = 0.0f64;
        let mut label_best = f64::MAX;
        let mut label_crashes = 0usize;
        let mut label_late = 0usize;
        for run in 0..scale.runs {
            let mut builder = SessionBuilder::new()
                .os(OsFlavor::LinuxRiscv)
                .objective(Objective::MemoryMb)
                .time_budget_s(scale.footprint_budget_s)
                // Figure regenerations replay the sequential pipeline.
                .workers(1)
                .seed(seed ^ (run as u64 * 0xd7) ^ is_deeptune as u64);
            builder = if is_deeptune {
                builder
                    .algorithm(AlgorithmChoice::DeepTune)
                    .deeptune_config(DeepTuneConfig {
                        // Builds are expensive: act on the model early and
                        // exploit mutations of the incumbent aggressively.
                        warmup: 6,
                        pool: PoolConfig {
                            random: 32,
                            mutants: 64,
                            max_changes: 32,
                        },
                        ..DeepTuneConfig::default()
                    })
            } else {
                builder.algorithm(AlgorithmChoice::Random)
            };
            let mut session = builder.build().expect("fig10 session");
            let summary = session.run().summary;
            t_end = t_end.max(summary.elapsed_s);
            label_best = label_best.min(summary.best_objective.unwrap_or(f64::MAX));
            let records = session.platform().history().records().to_vec();
            label_crashes += records.iter().filter(|r| r.crashed()).count();
            let n = records.len();
            label_late += records[n - (n / 3).max(1)..]
                .iter()
                .filter(|r| r.crashed())
                .count();
            let mut fp = Series::new();
            let mut times = Vec::new();
            let mut crashed = Vec::new();
            for r in &records {
                times.push(r.finished_at_s);
                crashed.push(r.crashed());
                if let Some(m) = r.memory_mb {
                    fp.push(r.finished_at_s, m);
                }
            }
            footprints.push(fp.best_so_far(false));
            crash_series.push(rolling_crash_rate(&times, &crashed, 8));
        }
        let mean = |series: Vec<Series>| {
            let resampled: Vec<Series> = series
                .into_iter()
                .map(|s| s.resample(t_end, RESAMPLE_POINTS))
                .collect();
            Series::mean_of(&resampled)
        };
        curves.push(CurveSet {
            label: label.to_string(),
            perf: mean(footprints),
            crash: mean(crash_series).smoothed(5),
        });
        best_mb.push(label_best);
        crashes.push(label_crashes);
        late_crashes.push(label_late);
    }
    Fig10Result {
        curves,
        default_mb: 210.0,
        best_mb,
        crashes,
        late_crashes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deeptune_reduces_footprint_more_than_random() {
        let scale = Scale {
            runs: 1,
            footprint_budget_s: 4_200.0,
            ..Scale::tiny()
        };
        let r = fig10(&scale, 18);
        let (random_mb, deeptune_mb) = (r.best_mb[0], r.best_mb[1]);
        // Both find something below the default.
        assert!(deeptune_mb < r.default_mb, "deeptune {deeptune_mb}");
        // DeepTune at least matches random (usually beats it clearly).
        assert!(
            deeptune_mb <= random_mb + 1.0,
            "deeptune {deeptune_mb} vs random {random_mb}"
        );
        // The reduction is meaningful but bounded (the paper: 5.5-8.5%).
        let reduction = 1.0 - deeptune_mb / r.default_mb;
        assert!((0.01..0.25).contains(&reduction), "reduction {reduction}");
    }
}
