//! Fig. 1: Linux compile-time configuration-space growth over versions.

use wf_kconfig::gen::{synthesize, LinuxVersion};

/// One point of the Fig. 1 curve.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fig1Row {
    /// Kernel version label.
    pub version: &'static str,
    /// Number of compile-time options in the synthesized model.
    pub options: usize,
}

/// Synthesizes every version's model and counts its options.
pub fn fig1() -> Vec<Fig1Row> {
    LinuxVersion::ALL
        .iter()
        .map(|v| {
            let model = synthesize(*v);
            Fig1Row {
                version: v.label(),
                options: model.len(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn growth_curve_matches_the_paper() {
        let rows = fig1();
        assert_eq!(rows.len(), 13);
        assert_eq!(rows.first().unwrap().version, "v2.6.13");
        assert_eq!(rows.last().unwrap().version, "v6.0");
        // Strictly growing, ~4x overall, ending at the Table 1 total.
        assert!(rows.windows(2).all(|w| w[0].options < w[1].options));
        assert_eq!(rows.last().unwrap().options, 21_272);
        assert!(rows.last().unwrap().options > rows[0].options * 3);
    }
}
