//! Fig. 8: DeepTune's update time vs per-application test time.
//!
//! "Evaluating a configuration dominates the search process: it takes on
//! average 60-80 s ... the execution time of an iteration of DeepTune
//! takes less than a second."

use crate::scale::Scale;
use crate::session::{AlgorithmChoice, SessionBuilder};
use wf_ossim::AppId;

/// The Fig. 8 dataset.
#[derive(Clone, Debug)]
pub struct Fig8Result {
    /// Mean real seconds of one DeepTune update (propose + observe).
    pub deeptune_update_s: f64,
    /// Std-dev of the update time.
    pub deeptune_update_std_s: f64,
    /// Per-application mean virtual test time (build/boot/bench).
    pub test_time_s: Vec<(AppId, f64)>,
}

/// Measures both sides of the loop-time breakdown.
pub fn fig8(scale: &Scale, seed: u64) -> Fig8Result {
    // DeepTune update times, measured on a live Nginx session.
    let iters = scale.search_iterations.clamp(15, 40);
    let mut session = SessionBuilder::new()
        .app(AppId::Nginx)
        .algorithm(AlgorithmChoice::DeepTune)
        .runtime_params(scale.runtime_params)
        .iterations(iters)
        .seed(seed)
        // Figure regenerations replay the paper's sequential pipeline.
        .workers(1)
        .build()
        .expect("fig8 session");
    let _ = session.run();
    let updates: Vec<f64> = session
        .platform()
        .history()
        .records()
        .iter()
        .map(|r| r.algo_seconds)
        .collect();
    let mean = updates.iter().sum::<f64>() / updates.len() as f64;
    let std = (updates.iter().map(|u| (u - mean) * (u - mean)).sum::<f64>() / updates.len() as f64)
        .sqrt();

    // Test times per application, from short random sessions (virtual
    // seconds — this is what a real deployment would measure).
    let mut test_time_s = Vec::new();
    for app in AppId::ALL {
        let mut s = SessionBuilder::new()
            .app(app)
            .algorithm(AlgorithmChoice::Random)
            .runtime_params(scale.runtime_params)
            .iterations(12)
            .seed(seed ^ 0xf18)
            .workers(1)
            .build()
            .expect("fig8 probe session");
        let _ = s.run();
        let records = s.platform().history();
        let mean_t =
            records.records().iter().map(|r| r.duration_s).sum::<f64>() / records.len() as f64;
        test_time_s.push((app, mean_t));
    }
    Fig8Result {
        deeptune_update_s: mean,
        deeptune_update_std_s: std,
        test_time_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluation_dominates_the_loop() {
        let r = fig8(&Scale::tiny(), 6);
        // DeepTune updates are sub-second even in debug builds.
        assert!(r.deeptune_update_s < 1.0, "update {}s", r.deeptune_update_s);
        for (app, t) in &r.test_time_s {
            // Crashes drag some means below the 60-80 s success band, but
            // evaluation must still dwarf the model update.
            assert!(*t > 30.0 && *t < 100.0, "{app}: mean test time {t}s");
            assert!(*t > r.deeptune_update_s * 30.0);
        }
    }
}
