//! Fig. 5: the cross-application similarity matrix.
//!
//! "We first collect 2,000 random Linux configurations for each
//! application. Then, we use a feature importance algorithm to determine
//! the importance of each configuration option in predicting performance.
//! Finally, we treat the importance scores as vectors and compute the
//! \[distance\] between them."

use crate::scale::Scale;
use rand::rngs::StdRng;
use rand::SeedableRng;
use wf_configspace::Encoder;
use wf_forest::{cross_similarity, ForestConfig, RandomForest};
use wf_kconfig::LinuxVersion;
use wf_ossim::{App, AppId, SimOs};

/// The Fig. 5 dataset.
#[derive(Clone, Debug)]
pub struct Fig5Result {
    /// Application order of rows/columns.
    pub apps: Vec<AppId>,
    /// Per-application, per-*parameter* importance vectors.
    pub importances: Vec<Vec<f64>>,
    /// The symmetric similarity matrix.
    pub matrix: Vec<Vec<f64>>,
}

/// Runs the importance study.
pub fn fig5(scale: &Scale, seed: u64) -> Fig5Result {
    let os = SimOs::linux_runtime(LinuxVersion::V4_19, scale.runtime_params);
    let encoder = Encoder::new(&os.space);
    let apps: Vec<AppId> = AppId::ALL.to_vec();
    let mut importances = Vec::with_capacity(apps.len());
    for (ai, id) in apps.iter().enumerate() {
        let app = App::by_id(*id);
        let mut rng = StdRng::seed_from_u64(seed ^ (ai as u64 * 0x9e37));
        let mut xs: Vec<Vec<f64>> = Vec::with_capacity(scale.fig5_samples);
        let mut ys: Vec<f64> = Vec::with_capacity(scale.fig5_samples);
        while xs.len() < scale.fig5_samples {
            let cfg = os.space.sample(&mut rng);
            // The paper regresses *performance*; crashed configurations
            // carry no performance sample and are re-drawn, like Fig. 2.
            match os.evaluate(&app, &cfg, None, &mut rng).outcome {
                Ok(r) => {
                    xs.push(encoder.encode(&os.space, &cfg));
                    ys.push(r.metric);
                }
                Err(_) => continue,
            }
        }
        let forest = RandomForest::fit(
            &xs,
            &ys,
            &ForestConfig {
                n_trees: 24,
                seed: seed ^ 0xf0 ^ ai as u64,
                ..ForestConfig::default()
            },
        );
        // Aggregate per-feature importances per *parameter*.
        let feat_imp = forest.feature_importances();
        let mut param_imp = vec![0.0; os.space.len()];
        for (f, v) in feat_imp.iter().enumerate() {
            param_imp[encoder.param_of_feature(f)] += v;
        }
        importances.push(param_imp);
    }
    let matrix = cross_similarity(&importances);
    Fig5Result {
        apps,
        importances,
        matrix,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn similarity_structure_matches_fig5() {
        let r = fig5(&Scale::tiny(), 5);
        let idx = |a: AppId| r.apps.iter().position(|x| *x == a).unwrap();
        let (n, re, s, p) = (
            idx(AppId::Nginx),
            idx(AppId::Redis),
            idx(AppId::Sqlite),
            idx(AppId::Npb),
        );
        // Diagonal is 1.
        for i in 0..4 {
            assert!((r.matrix[i][i] - 1.0).abs() < 1e-9);
        }
        // The three system-intensive applications are mutually similar ...
        assert!(r.matrix[n][re] > 0.7, "nginx-redis {}", r.matrix[n][re]);
        assert!(r.matrix[re][s] > 0.7, "redis-sqlite {}", r.matrix[re][s]);
        assert!(r.matrix[n][s] > 0.6, "nginx-sqlite {}", r.matrix[n][s]);
        // ... and NPB is dissimilar to all of them.
        for other in [n, re, s] {
            assert!(
                r.matrix[p][other] < r.matrix[n][re].min(r.matrix[re][s]),
                "npb vs {other}: {}",
                r.matrix[p][other]
            );
            assert!(r.matrix[p][other] < 0.7, "npb {}", r.matrix[p][other]);
        }
    }
}
