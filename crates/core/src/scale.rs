//! Experiment scale: full paper-sized runs vs a reduced default.
//!
//! The artifact appendix warns that the full experiments take "days"; the
//! regeneration binaries therefore default to a reduced budget with the
//! same shape and switch to the paper's numbers with `WF_FULL=1`
//! (mirroring the appendix's advice to "lower the number of iterations").

/// Budget knobs shared by the experiment runners.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Scale {
    /// Independent runs averaged per curve ("results of 5 runs").
    pub runs: usize,
    /// Search iterations per §4.1 session (paper: 250).
    pub search_iterations: usize,
    /// Random samples for Fig. 2 (paper: 800).
    pub fig2_samples: usize,
    /// Random configurations per application for Fig. 5 (paper: 2000).
    pub fig5_samples: usize,
    /// Iterations for the Fig. 7 scalability comparison (paper: ~300).
    pub fig7_iterations: usize,
    /// Virtual budget for the Unikraft sessions (paper: 3 h).
    pub unikraft_budget_s: f64,
    /// Virtual budget for the footprint sessions (paper: 3 h).
    pub footprint_budget_s: f64,
    /// Virtual budget for the Cozart co-optimization (paper: ~11 h).
    pub cozart_budget_s: f64,
    /// Probed runtime-space size for the Linux targets.
    pub runtime_params: usize,
    /// Held-out configurations for the Table 3 accuracy evaluation.
    pub table3_samples: usize,
}

impl Scale {
    /// The reduced default: minutes of real time, same shapes.
    pub fn reduced() -> Scale {
        Scale {
            runs: 2,
            search_iterations: 60,
            fig2_samples: 200,
            fig5_samples: 300,
            fig7_iterations: 60,
            unikraft_budget_s: 3_600.0,
            footprint_budget_s: 4_500.0,
            cozart_budget_s: 6_000.0,
            runtime_params: 96,
            table3_samples: 120,
        }
    }

    /// The paper's budgets.
    pub fn full() -> Scale {
        Scale {
            runs: 5,
            search_iterations: 250,
            fig2_samples: 800,
            fig5_samples: 2_000,
            fig7_iterations: 300,
            unikraft_budget_s: 10_800.0,
            footprint_budget_s: 10_800.0,
            cozart_budget_s: 40_000.0,
            runtime_params: 200,
            table3_samples: 400,
        }
    }

    /// `WF_FULL=1` selects the paper's budgets.
    pub fn from_env() -> Scale {
        // wf-lint: allow(host-env-read, reason = "config-load: WF_FULL is resolved once here when a scenario starts; the chosen Scale is fixed for the whole run")
        match std::env::var("WF_FULL") {
            Ok(v) if v == "1" || v.eq_ignore_ascii_case("true") => Scale::full(),
            _ => Scale::reduced(),
        }
    }

    /// A tiny scale for integration tests (seconds of real time).
    pub fn tiny() -> Scale {
        Scale {
            runs: 1,
            search_iterations: 12,
            fig2_samples: 40,
            fig5_samples: 60,
            fig7_iterations: 15,
            unikraft_budget_s: 400.0,
            footprint_budget_s: 1_200.0,
            cozart_budget_s: 900.0,
            runtime_params: 56,
            table3_samples: 40,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_matches_paper_budgets() {
        let f = Scale::full();
        assert_eq!(f.runs, 5);
        assert_eq!(f.search_iterations, 250);
        assert_eq!(f.fig2_samples, 800);
        assert_eq!(f.fig5_samples, 2000);
        assert_eq!(f.unikraft_budget_s, 10_800.0);
    }

    #[test]
    fn reduced_is_smaller_everywhere() {
        let r = Scale::reduced();
        let f = Scale::full();
        assert!(r.runs < f.runs);
        assert!(r.search_iterations < f.search_iterations);
        assert!(r.cozart_budget_s < f.cozart_budget_s);
    }
}
