//! `wayfinder-core`: the public API and the per-figure experiment
//! runners.
//!
//! * [`session`] — [`SessionBuilder`]: pick an OS target, application,
//!   algorithm, and budget; run (optionally streaming
//!   [`wf_platform::SessionEvent`]s through a sink or the
//!   [`SpecializationSession::drive`] iterator); persist to a
//!   [`wf_platform::SessionStore`] and resume deterministically with
//!   [`SessionBuilder::resume`]; extract transfer checkpoints and
//!   importance analyses;
//! * [`targets`] — the open [`TargetRegistry`]: `os:` keywords resolve to
//!   [`targets::TargetFactory`]s, the five paper targets ship
//!   pre-registered, and downstream crates register new scenarios without
//!   touching the core loop;
//! * [`daemon_host`] — glue hosting the `wfd` multi-tenant daemon:
//!   [`RegistryLauncher`] builds and drives one stored session per
//!   submitted job on the daemon's session threads;
//! * [`scale`] — full (paper-sized) vs reduced experiment budgets;
//! * [`experiments`] — one runner per table/figure of the evaluation
//!   (see DESIGN.md §3 for the index);
//! * [`report`] — plain-text tables and series for the regeneration
//!   binaries.
//!
//! # Examples
//!
//! ```
//! use wayfinder_core::prelude::*;
//!
//! let mut session = SessionBuilder::new()
//!     .os(OsFlavor::Linux419)
//!     .app(AppId::Nginx)
//!     .algorithm(AlgorithmChoice::DeepTune)
//!     .runtime_params(56)
//!     .iterations(6)
//!     .seed(7)
//!     .build()
//!     .expect("valid session");
//! let outcome = session.run();
//! assert!(outcome.best.is_some());
//! ```

pub mod daemon_host;
pub mod experiments;
pub mod report;
pub mod scale;
pub mod session;
pub mod targets;

pub use daemon_host::{bind_daemon, RegistryLauncher};
pub use report::{store_report, trajectory_table, wave_stats_table, Table};
pub use scale::Scale;
pub use session::{
    target_from_job, AlgorithmChoice, BuildError, Drive, OsFlavor, Outcome, ResumeError,
    SessionBuilder, SpecializationSession,
};
pub use targets::{TargetFactory, TargetInstance, TargetRegistry, TargetRequest};

/// Convenient re-exports for application code and the examples.
pub mod prelude {
    pub use crate::report::Table;
    pub use crate::scale::Scale;
    pub use crate::session::{
        AlgorithmChoice, BuildError, Drive, OsFlavor, Outcome, ResumeError, SessionBuilder,
        SpecializationSession,
    };
    pub use crate::targets::{TargetFactory, TargetInstance, TargetRegistry, TargetRequest};
    pub use wf_jobfile::{DetectorId, Direction, DriftScenarioId, DriftSpec, Job, Mode};
    pub use wf_ossim::{AppId, DriftScenario, DriftSchedule};
    pub use wf_platform::{
        EvalTarget, EventSink, NullSink, Objective, RecordingSink, SessionEvent, SessionStore,
        SimTarget, StoredSession, TargetDescriptor, Tee,
    };
}
