//! Hosting glue between the platform's [`Daemon`] and this crate's
//! session construction.
//!
//! `wf_platform::daemon` supervises threads and speaks the socket
//! protocol but cannot *build* sessions — the target registry lives up
//! here. [`RegistryLauncher`] closes that loop: for every submitted job
//! it builds a [`crate::SpecializationSession`] against a fresh registry
//! (registries are built per session, exactly like every `wf-evald`
//! worker process builds its own), creates the session's store, and
//! drives it with events teed to both the hash-chained
//! [`wf_platform::JsonlSink`] and the daemon's live watchers.
//!
//! The `wfd` binary and `wfctl daemon` are thin wrappers over
//! [`bind_daemon`].

use crate::session::SessionBuilder;
use crate::targets::TargetRegistry;
use std::io;
use std::path::Path;
use std::sync::Arc;
use wf_jobfile::Job;
use wf_platform::daemon::{Daemon, SessionControl, SessionLauncher};
use wf_platform::{EventSink, SessionStore, Tee};

/// A [`SessionLauncher`] that resolves jobs against a registry built
/// fresh for each session by `factory`.
///
/// # Examples
///
/// Launching one tiny session by hand (the daemon does exactly this on
/// its session threads):
///
/// ```
/// use wayfinder_core::daemon_host::RegistryLauncher;
/// use wayfinder_core::TargetRegistry;
/// use wf_jobfile::Job;
/// use wf_platform::daemon::{SessionControl, SessionLauncher};
/// use wf_platform::NullSink;
///
/// let launcher = RegistryLauncher::new(TargetRegistry::builtin);
/// let dir = std::env::temp_dir().join(format!("wfd-doc-{}", std::process::id()));
/// let _ = std::fs::remove_dir_all(&dir);
/// let mut job = Job::default();
/// job.budget.iterations = Some(2);
/// let finished = launcher
///     .launch(&job, &dir, &mut NullSink, &SessionControl::default())
///     .unwrap();
/// assert!(finished);
/// std::fs::remove_dir_all(&dir).unwrap();
/// ```
pub struct RegistryLauncher<F> {
    factory: F,
}

impl<F> RegistryLauncher<F>
where
    F: Fn() -> TargetRegistry + Send + Sync,
{
    /// Wraps a registry factory (e.g. `TargetRegistry::builtin` or
    /// `|| wayfinder::scenarios::registry()`).
    pub fn new(factory: F) -> RegistryLauncher<F> {
        RegistryLauncher { factory }
    }
}

impl<F> SessionLauncher for RegistryLauncher<F>
where
    F: Fn() -> TargetRegistry + Send + Sync,
{
    fn launch(
        &self,
        job: &Job,
        dir: &Path,
        sink: &mut dyn EventSink,
        control: &SessionControl,
    ) -> Result<bool, String> {
        let mut session = SessionBuilder::from_job(job)
            .map_err(|e| e.to_string())?
            .registry((self.factory)())
            .build()
            .map_err(|e| e.to_string())?;
        let store = SessionStore::create(dir, session.resolved_job()).map_err(|e| e.to_string())?;
        let mut jsonl = store.sink().map_err(|e| e.to_string())?;
        let (_, finished) = {
            let mut tee = Tee(&mut jsonl, sink);
            session.run_with_until(&mut tee, &mut || control.stop_requested())
        };
        if let Some(e) = jsonl.error() {
            return Err(format!("event log incomplete: {e}"));
        }
        Ok(finished)
    }
}

/// Binds a [`Daemon`] over `root` whose sessions resolve targets
/// through `factory`; call [`Daemon::run`] on the result to serve.
pub fn bind_daemon<F>(root: impl AsRef<Path>, factory: F) -> io::Result<Daemon>
where
    F: Fn() -> TargetRegistry + Send + Sync + 'static,
{
    Daemon::bind(root, Arc::new(RegistryLauncher::new(factory)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_platform::{NullSink, RecordingSink, SessionEvent};

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("wfd-host-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_job() -> Job {
        let mut job = Job {
            name: "tiny".into(),
            workers: Some(2),
            ..Default::default()
        };
        job.budget.iterations = Some(4);
        job
    }

    #[test]
    fn launch_runs_the_session_and_persists_a_verifiable_store() {
        let dir = temp_dir("run");
        let launcher = RegistryLauncher::new(TargetRegistry::builtin);
        let mut sink = RecordingSink::new();
        let finished = launcher
            .launch(&tiny_job(), &dir, &mut sink, &SessionControl::default())
            .unwrap();
        assert!(finished);
        let evaluated = sink
            .events
            .iter()
            .filter(|e| matches!(e, SessionEvent::CandidateEvaluated(_)))
            .count();
        assert_eq!(evaluated, 4, "live sink saw every evaluation");

        let store = SessionStore::open(&dir).unwrap();
        let loaded = store.load().unwrap();
        assert_eq!(loaded.records.len(), 4, "store persisted every evaluation");
        assert!(store.verify_chain().unwrap() > 0, "ledger chain verifies");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_prestopped_launch_parks_before_the_first_wave() {
        let dir = temp_dir("parked");
        let launcher = RegistryLauncher::new(TargetRegistry::builtin);
        let control = SessionControl::default();
        control.request_stop();
        let finished = launcher
            .launch(&tiny_job(), &dir, &mut NullSink, &control)
            .unwrap();
        assert!(!finished, "a stopped session reports not-finished");
        // The parked store is resumable: no session_finished line yet.
        let loaded = SessionStore::open(&dir).unwrap().load().unwrap();
        assert!(loaded.records.is_empty());
        assert!(!loaded.finished);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
