//! The high-level public API: pick an OS, an application, an algorithm,
//! and a budget; get a specialized configuration back.
//!
//! This is the programmatic equivalent of a Wayfinder job file: the
//! `examples/` directory exercises exactly this surface.

use crate::targets::{TargetInstance, TargetRegistry, TargetRequest};
use std::fmt;
use wf_deeptune::{Checkpoint, DeepTune, DeepTuneConfig};
use wf_jobfile::{Budget, Direction, Focus, Job};
use wf_ossim::{AppId, MetricDirection};
use wf_platform::{Objective, Record, Session, SessionSpec, SessionSummary};
use wf_search::{BayesOpt, CausalSearch, GridSearch, RandomSearch, SamplePolicy, SearchAlgorithm};

/// The five paper targets, as a typed convenience over their registry
/// keywords. [`SessionBuilder::os`] is sugar for
/// [`SessionBuilder::target`] with [`OsFlavor::keyword`]; targets beyond
/// the paper's five are addressed by keyword through a
/// [`TargetRegistry`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OsFlavor {
    /// Linux v4.19 with a runtime-focused space (the §4.1 experiments).
    Linux419,
    /// Linux v6.0 with a runtime-focused space (the Table 1 kernel).
    Linux60,
    /// Linux v4.19 with boot-time *and* runtime parameters searchable.
    Linux419AllStages,
    /// RISC-V Linux v5.13 with a compile-time space (Fig. 10).
    LinuxRiscv,
    /// Unikraft building Nginx (Fig. 9).
    Unikraft,
}

impl OsFlavor {
    /// The job-file keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            OsFlavor::Linux419 => "linux-4.19",
            OsFlavor::Linux60 => "linux-6.0",
            OsFlavor::Linux419AllStages => "linux-4.19-all",
            OsFlavor::LinuxRiscv => "linux-riscv",
            OsFlavor::Unikraft => "unikraft",
        }
    }
}

/// Search-algorithm selection for the builder.
pub enum AlgorithmChoice {
    /// Random search baseline.
    Random,
    /// Grid search.
    Grid,
    /// Gaussian-process Bayesian optimization.
    Bayesian,
    /// Unicorn-style causal search.
    Causal,
    /// DeepTune (cold start).
    DeepTune,
    /// DeepTune warm-started from a transfer checkpoint (§3.3).
    DeepTuneTransfer(Checkpoint),
}

impl fmt::Debug for AlgorithmChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AlgorithmChoice::Random => "Random",
            AlgorithmChoice::Grid => "Grid",
            AlgorithmChoice::Bayesian => "Bayesian",
            AlgorithmChoice::Causal => "Causal",
            AlgorithmChoice::DeepTune => "DeepTune",
            AlgorithmChoice::DeepTuneTransfer(_) => "DeepTune+TL",
        })
    }
}

/// Builder and registry errors, one variant per distinct failure so
/// callers (e.g. `wfctl`) can react to each case specifically.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuildError {
    /// The `os:` keyword is not in the target registry.
    UnknownTarget {
        /// The keyword that failed to resolve.
        given: String,
        /// Every keyword the registry does know, sorted.
        known: Vec<String>,
    },
    /// The target does not know the requested application at all.
    UnknownApp {
        /// The target keyword.
        target: String,
        /// The application that failed to resolve.
        given: String,
        /// Applications the target supports.
        supported: Vec<String>,
    },
    /// The application exists but this target cannot run it.
    IncompatibleApp {
        /// The target keyword.
        target: String,
        /// The rejected application.
        app: String,
        /// Why the pairing is impossible.
        reason: String,
    },
    /// The job's `metric:` is neither the target's primary metric nor a
    /// derived objective.
    UnknownMetric {
        /// The metric that failed to resolve.
        given: String,
        /// The values that would have been accepted.
        valid: Vec<String>,
    },
    /// Neither an iteration nor a time budget was set.
    MissingBudget,
    /// A pinned parameter could not be applied to the space.
    BadPin {
        /// The underlying job-file error.
        message: String,
    },
    /// A target keyword was registered twice.
    DuplicateKeyword {
        /// The contested keyword.
        keyword: String,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnknownTarget { given, known } => {
                write!(
                    f,
                    "unknown target {given:?}; registered targets: {}",
                    known.join(", ")
                )
            }
            BuildError::UnknownApp {
                target,
                given,
                supported,
            } => write!(
                f,
                "unknown app {given:?} for target {target:?}; supported apps: {}",
                supported.join(", ")
            ),
            BuildError::IncompatibleApp {
                target,
                app,
                reason,
            } => {
                write!(
                    f,
                    "app {app:?} is incompatible with target {target:?}: {reason}"
                )
            }
            BuildError::UnknownMetric { given, valid } => {
                write!(
                    f,
                    "unknown metric {given:?}; valid values: {}",
                    valid.join(", ")
                )
            }
            BuildError::MissingBudget => f.write_str("a session needs an iteration or time budget"),
            BuildError::BadPin { message } => write!(f, "bad pin: {message}"),
            BuildError::DuplicateKeyword { keyword } => {
                write!(f, "target keyword {keyword:?} is already registered")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Fluent session construction, resolved through a [`TargetRegistry`].
pub struct SessionBuilder {
    target: String,
    app: Option<String>,
    registry: TargetRegistry,
    algorithm: AlgorithmChoice,
    objective: Objective,
    job_metric: Option<String>,
    iterations: Option<usize>,
    time_budget_s: Option<f64>,
    seed: u64,
    repetitions: usize,
    workers: usize,
    runtime_params: usize,
    focus: Focus,
    pins: Vec<(String, String)>,
    explicit_space: Option<wf_configspace::ConfigSpace>,
    deeptune: DeepTuneConfig,
}

impl Default for SessionBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl SessionBuilder {
    /// Starts a builder with the paper's §4.1 defaults: Linux 4.19, the
    /// target's default app (Nginx), DeepTune, 250 iterations, and the
    /// built-in target registry.
    pub fn new() -> Self {
        SessionBuilder {
            target: OsFlavor::Linux419.keyword().to_string(),
            app: None,
            registry: TargetRegistry::builtin(),
            algorithm: AlgorithmChoice::DeepTune,
            objective: Objective::Metric,
            job_metric: None,
            iterations: Some(250),
            time_budget_s: None,
            seed: 1,
            repetitions: 1,
            workers: wf_platform::default_workers(),
            runtime_params: 200,
            focus: Focus::All,
            pins: Vec::new(),
            explicit_space: None,
            deeptune: DeepTuneConfig::default(),
        }
    }

    /// Selects one of the five paper targets (sugar for
    /// [`SessionBuilder::target`] with the flavor's keyword).
    pub fn os(self, os: OsFlavor) -> Self {
        self.target(os.keyword())
    }

    /// Selects the target by registry keyword. Unknown keywords surface
    /// as [`BuildError::UnknownTarget`] at [`SessionBuilder::build`].
    pub fn target(mut self, keyword: impl Into<String>) -> Self {
        self.target = keyword.into();
        self
    }

    /// Replaces the target registry (e.g. to add downstream scenarios).
    /// Defaults to [`TargetRegistry::builtin`].
    pub fn registry(mut self, registry: TargetRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// Selects one of the paper's benchmark applications.
    pub fn app(self, app: AppId) -> Self {
        self.app_named(app.label())
    }

    /// Selects the application by keyword, as a job file would. The
    /// target's factory resolves (or rejects) it at build time; when no
    /// app is chosen the target's default runs.
    pub fn app_named(mut self, app: impl Into<String>) -> Self {
        self.app = Some(app.into());
        self
    }

    /// Sets the job-file metric keyword: the target's primary metric
    /// (e.g. `throughput`), `memory`, or `score`. Anything else is
    /// rejected at build time; [`SessionBuilder::objective`] is the typed
    /// alternative, and whichever of the two was called last wins.
    pub fn metric(mut self, metric: impl Into<String>) -> Self {
        self.job_metric = Some(metric.into());
        self
    }

    /// Selects the search algorithm.
    pub fn algorithm(mut self, algorithm: AlgorithmChoice) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Selects the objective (primary metric by default). Overrides any
    /// earlier [`SessionBuilder::metric`] / job-file `metric:` keyword —
    /// whichever of the two was called last wins.
    pub fn objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self.job_metric = None;
        self
    }

    /// Sets the iteration budget.
    pub fn iterations(mut self, n: usize) -> Self {
        self.iterations = Some(n);
        self
    }

    /// Sets the virtual-time budget in seconds (3-hour sessions in §4.4).
    pub fn time_budget_s(mut self, s: f64) -> Self {
        self.time_budget_s = Some(s);
        self
    }

    /// Seeds the session RNG.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Benchmark repetitions per configuration.
    pub fn repetitions(mut self, reps: usize) -> Self {
        self.repetitions = reps.max(1);
        self
    }

    /// Simulated VM workers evaluating candidates concurrently (the wave
    /// width of the batch ask/tell loop). Defaults to `WF_WORKERS` from
    /// the environment, else 1.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.clamp(1, 64);
        self
    }

    /// Size of the probed runtime space for the Linux targets (§3.4).
    pub fn runtime_params(mut self, n: usize) -> Self {
        self.runtime_params = n;
        self
    }

    /// Pins a parameter to a fixed value (§3.5 constrained search).
    pub fn pin(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.pins.push((name.into(), value.into()));
        self
    }

    /// Restricts the search to one parameter stage (§3.5: "Wayfinder can
    /// also be instructed to favor varying certain parameter types ...
    /// useful, e.g., when the kernel to optimize cannot be rebooted").
    pub fn focus(mut self, focus: Focus) -> Self {
        self.focus = focus;
        self
    }

    /// Replaces the OS's own configuration space with an explicit one
    /// (§3.1: job files "representing the configuration space of the
    /// target OS"). Parameters the ground-truth models do not know are
    /// explored but inert, exactly like the real kernel's long tail.
    pub fn explicit_space(mut self, space: wf_configspace::ConfigSpace) -> Self {
        self.explicit_space = Some(space);
        self
    }

    /// Overrides DeepTune's hyperparameters.
    pub fn deeptune_config(mut self, cfg: DeepTuneConfig) -> Self {
        self.deeptune = cfg;
        self
    }

    /// Builds the session from a parsed job file instead of builder
    /// calls. The job's `os:`, `app:`, and `metric:` keywords are carried
    /// verbatim and resolved against the registry at
    /// [`SessionBuilder::build`], so downstream targets registered via
    /// [`SessionBuilder::registry`] work from job files too.
    pub fn from_job(job: &Job) -> Result<SessionBuilder, BuildError> {
        let algorithm = match job.algorithm {
            wf_jobfile::AlgorithmId::Random => AlgorithmChoice::Random,
            wf_jobfile::AlgorithmId::Grid => AlgorithmChoice::Grid,
            wf_jobfile::AlgorithmId::Bayesian => AlgorithmChoice::Bayesian,
            wf_jobfile::AlgorithmId::DeepTune => AlgorithmChoice::DeepTune,
        };
        let mut b = SessionBuilder::new()
            .target(job.os.clone())
            .algorithm(algorithm)
            .seed(job.seed)
            .repetitions(job.repetitions);
        // Omitted `app:`/`metric:` keys mean "the target's defaults", so
        // minimal job files work for every registered target.
        if let Some(app) = &job.app {
            b = b.app_named(app.clone());
        }
        if let Some(metric) = &job.metric {
            b = b.metric(metric.clone());
        }
        if let Some(workers) = job.workers {
            b = b.workers(workers);
        }
        b.iterations = job.budget.iterations;
        b.time_budget_s = job.budget.time_seconds;
        for pin in &job.pinned {
            b = b.pin(pin.name.clone(), pin.value.clone());
        }
        b = b.focus(job.focus);
        if let Some(space) = job.param_space() {
            b = b.explicit_space(space);
        }
        Ok(b)
    }

    /// Resolves the target keyword against the registry, materializes the
    /// target and policy, and builds the platform session.
    pub fn build(self) -> Result<SpecializationSession, BuildError> {
        if self.iterations.is_none() && self.time_budget_s.is_none() {
            return Err(BuildError::MissingBudget);
        }
        let factory = self
            .registry
            .get(&self.target)
            .ok_or_else(|| BuildError::UnknownTarget {
                given: self.target.clone(),
                known: self.registry.keywords(),
            })?;
        let app = self
            .app
            .clone()
            .unwrap_or_else(|| factory.default_app().to_string());
        let TargetInstance { mut target, policy } = factory.instantiate(&TargetRequest {
            app,
            runtime_params: self.runtime_params,
        })?;

        // An explicit job-file space replaces the target's own.
        if let Some(space) = self.explicit_space {
            target.install_space(space);
        }

        // Apply pins through the job-file machinery so value parsing is
        // uniform.
        if !self.pins.is_empty() {
            let job = Job {
                pinned: self
                    .pins
                    .iter()
                    .map(|(name, value)| wf_jobfile::Pin {
                        name: name.clone(),
                        value: value.clone(),
                    })
                    .collect(),
                ..Job::default()
            };
            job.apply_pins(target.space_mut())
                .map_err(|e| BuildError::BadPin {
                    message: e.to_string(),
                })?;
        }

        // §3.5 stage focus narrows the sampling policy.
        let policy = match (self.focus.stage(), policy) {
            (Some(stage), SamplePolicy::Uniform) => SamplePolicy::StageFocused(stage),
            (_, p) => p,
        };

        // A job-file metric resolves against the target's descriptor; the
        // typed `objective` applies otherwise. Unknown strings are
        // errors, never a silent fallback.
        let descriptor = target.descriptor().clone();
        let objective = match &self.job_metric {
            None => self.objective,
            Some(m) => match m.as_str() {
                "memory" => Objective::MemoryMb,
                "score" => Objective::ThroughputMemoryScore,
                m if m == descriptor.metric => Objective::Metric,
                _ => {
                    let mut valid =
                        vec![descriptor.metric.clone(), "memory".into(), "score".into()];
                    valid.dedup();
                    return Err(BuildError::UnknownMetric {
                        given: m.clone(),
                        valid,
                    });
                }
            },
        };

        let direction = match (objective, descriptor.direction) {
            (Objective::MemoryMb, _) => Direction::Minimize,
            (_, MetricDirection::HigherBetter) => Direction::Maximize,
            (_, MetricDirection::LowerBetter) => Direction::Minimize,
        };
        let spec = SessionSpec {
            objective,
            direction,
            policy,
            budget: Budget {
                iterations: self.iterations,
                time_seconds: self.time_budget_s,
            },
            repetitions: self.repetitions,
            seed: self.seed,
            workers: self.workers,
        };
        let algorithm: Box<dyn SearchAlgorithm> = match self.algorithm {
            AlgorithmChoice::Random => Box::new(RandomSearch::new()),
            AlgorithmChoice::Grid => Box::new(GridSearch::new(8)),
            AlgorithmChoice::Bayesian => Box::new(BayesOpt::new()),
            AlgorithmChoice::Causal => Box::new(CausalSearch::new()),
            AlgorithmChoice::DeepTune => {
                let mut cfg = self.deeptune;
                cfg.seed ^= self.seed;
                Box::new(DeepTune::new(cfg))
            }
            AlgorithmChoice::DeepTuneTransfer(ckpt) => {
                let mut cfg = self.deeptune;
                cfg.seed ^= self.seed;
                Box::new(DeepTune::with_checkpoint(cfg, ckpt))
            }
        };
        Ok(SpecializationSession {
            inner: Session::with_target(target, algorithm, spec),
        })
    }
}

/// The outcome of a completed session.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// The best configuration with its objective value, if any run
    /// succeeded.
    pub best: Option<(wf_configspace::Configuration, f64)>,
    /// Full summary statistics.
    pub summary: SessionSummary,
}

/// A running specialization session (facade over the platform session).
pub struct SpecializationSession {
    inner: Session,
}

impl fmt::Debug for SpecializationSession {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpecializationSession")
            .field("target", self.inner.descriptor())
            .field("iterations", &self.inner.history().len())
            .finish_non_exhaustive()
    }
}

impl SpecializationSession {
    /// Runs to budget exhaustion.
    pub fn run(&mut self) -> Outcome {
        let summary = self.inner.run();
        Outcome {
            best: summary.best_config.clone().zip(summary.best_objective),
            summary,
        }
    }

    /// Runs one iteration.
    pub fn step(&mut self) -> &Record {
        self.inner.step()
    }

    /// Whether the budget is exhausted.
    pub fn done(&self) -> bool {
        self.inner.done()
    }

    /// The underlying platform session.
    pub fn platform(&self) -> &Session {
        &self.inner
    }

    /// Mutable access to the underlying platform session.
    pub fn platform_mut(&mut self) -> &mut Session {
        &mut self.inner
    }

    /// Extracts a transfer-learning checkpoint if the algorithm is a
    /// trained DeepTune (§3.3).
    pub fn checkpoint(&mut self) -> Option<Checkpoint> {
        self.inner
            .algorithm_mut()
            .as_any_mut()?
            .downcast_mut::<DeepTune>()?
            .checkpoint()
    }

    /// Queries the trained model for high-impact parameters (§4.1).
    pub fn parameter_impacts(&mut self) -> Option<Vec<wf_deeptune::ParamImpact>> {
        let space = self.inner.space().clone();
        let encoder = wf_configspace::Encoder::new(&space);
        // Anchor the axis probes on the default configuration plus the
        // best configurations the session actually evaluated: the model is
        // only trustworthy near its training distribution, and averaging
        // over several anchors de-noises the single-axis deltas.
        let direction = self.inner.direction();
        let mut evaluated: Vec<(f64, wf_configspace::Configuration)> = self
            .inner
            .history()
            .observations()
            .into_iter()
            .filter_map(|o| o.value.map(|v| (v, o.config)))
            .collect();
        evaluated.sort_by(|a, b| match direction {
            wf_jobfile::Direction::Maximize => b.0.partial_cmp(&a.0).unwrap(),
            wf_jobfile::Direction::Minimize => a.0.partial_cmp(&b.0).unwrap(),
        });
        let mut anchors = vec![space.default_config()];
        anchors.extend(evaluated.into_iter().take(8).map(|(_, c)| c));
        let dt = self
            .inner
            .algorithm_mut()
            .as_any_mut()?
            .downcast_mut::<DeepTune>()?;
        wf_deeptune::parameter_impacts_at(dt, &space, &encoder, &anchors)
    }
}

/// Re-exported focus type for job parity.
pub type JobFocus = Focus;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_runs_a_tiny_deeptune_session() {
        let mut s = SessionBuilder::new()
            .os(OsFlavor::Linux419)
            .app(AppId::Nginx)
            .algorithm(AlgorithmChoice::DeepTune)
            .runtime_params(64)
            .iterations(8)
            .seed(7)
            .build()
            .expect("valid session");
        let outcome = s.run();
        assert_eq!(outcome.summary.iterations, 8);
        assert!(outcome.best.is_some());
    }

    #[test]
    fn builder_rejects_missing_budget() {
        let mut b = SessionBuilder::new();
        b.iterations = None;
        b.time_budget_s = None;
        assert!(b.build().is_err());
    }

    #[test]
    fn unikraft_requires_nginx() {
        let err = match SessionBuilder::new()
            .os(OsFlavor::Unikraft)
            .app(AppId::Redis)
            .iterations(1)
            .build()
        {
            Err(e) => e,
            Ok(_) => panic!("unikraft+redis must be rejected"),
        };
        assert!(
            matches!(&err, BuildError::IncompatibleApp { target, app, .. }
                if target == "unikraft" && app == "redis"),
            "{err}"
        );
        assert!(err.to_string().contains("Nginx"));
    }

    #[test]
    fn pins_are_applied_to_the_space() {
        let s = SessionBuilder::new()
            .os(OsFlavor::Linux419)
            .runtime_params(64)
            .iterations(1)
            .pin("kernel.randomize_va_space", "2")
            .build()
            .expect("valid session");
        let space = s.platform().space();
        let idx = space.index_of("kernel.randomize_va_space").unwrap();
        assert!(space.spec(idx).fixed);
    }

    #[test]
    fn bad_pin_is_a_build_error() {
        let err = match SessionBuilder::new()
            .runtime_params(64)
            .iterations(1)
            .pin("kernel.nope", "1")
            .build()
        {
            Err(e) => e,
            Ok(_) => panic!("unknown pin must be rejected"),
        };
        assert!(matches!(err, BuildError::BadPin { .. }), "{err}");
        assert!(err.to_string().contains("unknown parameter"));
    }

    #[test]
    fn unknown_target_is_rejected_with_known_keywords() {
        let err = SessionBuilder::new()
            .target("plan9")
            .iterations(1)
            .build()
            .unwrap_err();
        match &err {
            BuildError::UnknownTarget { given, known } => {
                assert_eq!(given, "plan9");
                assert!(known.contains(&"linux-4.19".to_string()));
                assert!(known.contains(&"unikraft".to_string()));
            }
            other => panic!("expected UnknownTarget, got {other:?}"),
        }
    }

    #[test]
    fn unknown_metric_is_rejected_with_valid_values() {
        // Regression: unknown `metric:` strings used to coerce silently
        // to Objective::Metric.
        let job = Job::parse(
            "name: m\nos: linux-4.19\napp: nginx\nmetric: throughputt\nalgorithm: random\nbudget:\n  iterations: 2\n",
        )
        .unwrap();
        let err = SessionBuilder::from_job(&job)
            .unwrap()
            .runtime_params(56)
            .build()
            .unwrap_err();
        match &err {
            BuildError::UnknownMetric { given, valid } => {
                assert_eq!(given, "throughputt");
                assert_eq!(
                    valid,
                    &["throughput".to_string(), "memory".into(), "score".into()]
                );
            }
            other => panic!("expected UnknownMetric, got {other:?}"),
        }
    }

    #[test]
    fn explicit_objective_overrides_the_job_metric() {
        // Whichever of `.metric()` / `.objective()` was called last wins,
        // so code tweaking a parsed job keeps its pre-registry behavior.
        let job = Job::parse(
            "name: o\nos: linux-4.19\napp: nginx\nmetric: throughput\nalgorithm: random\nbudget:\n  iterations: 3\n",
        )
        .unwrap();
        let mut s = SessionBuilder::from_job(&job)
            .unwrap()
            .objective(Objective::MemoryMb)
            .runtime_params(56)
            .build()
            .unwrap();
        let outcome = s.run();
        // Memory objectives minimize; the best objective is a memory
        // figure in MB, not a throughput in the tens of thousands.
        assert_eq!(
            s.platform().direction(),
            wf_jobfile::Direction::Minimize,
            "objective override must flip the direction"
        );
        assert!(outcome.summary.best_objective.unwrap() < 5_000.0);
    }

    #[test]
    fn minimal_job_files_use_the_targets_defaults() {
        // Regression: omitted `app:`/`metric:` keys must mean "the
        // target's defaults", not the generic nginx/throughput pair —
        // this jobfile worked before the registry and must keep working.
        let job = Job::parse("name: fp\nos: linux-riscv\nbudget:\n  iterations: 2\n").unwrap();
        let mut s = SessionBuilder::from_job(&job).unwrap().build().unwrap();
        assert_eq!(s.platform().descriptor().app, "boot-probe");
        let outcome = s.run();
        assert_eq!(outcome.summary.iterations, 2);
    }

    #[test]
    fn footprint_sessions_run_under_the_probe_identity() {
        // Regression: the synthetic boot probe used to masquerade as
        // AppId::Nginx, mislabeling footprint reports and histories.
        let s = SessionBuilder::new()
            .os(OsFlavor::LinuxRiscv)
            .objective(Objective::MemoryMb)
            .iterations(1)
            .build()
            .unwrap();
        let descriptor = s.platform().descriptor();
        assert_eq!(descriptor.app, "boot-probe");
        assert_eq!(descriptor.metric, "memory");
        assert_eq!(descriptor.unit, "MB");
        let sim = s
            .platform()
            .target()
            .as_any()
            .downcast_ref::<wf_platform::SimTarget>()
            .expect("built-in targets are SimTargets");
        assert_eq!(sim.app().id, AppId::BootProbe);
    }

    #[test]
    fn registry_keyword_builds_like_the_flavor() {
        let via_flavor = SessionBuilder::new()
            .os(OsFlavor::Linux60)
            .algorithm(AlgorithmChoice::Random)
            .runtime_params(56)
            .iterations(4)
            .seed(5)
            .build()
            .unwrap();
        let via_keyword = SessionBuilder::new()
            .target("linux-6.0")
            .algorithm(AlgorithmChoice::Random)
            .runtime_params(56)
            .iterations(4)
            .seed(5)
            .build()
            .unwrap();
        assert_eq!(
            via_flavor.platform().descriptor(),
            via_keyword.platform().descriptor()
        );
    }

    #[test]
    fn checkpoint_extraction_works_after_training() {
        let mut s = SessionBuilder::new()
            .os(OsFlavor::Linux419)
            .app(AppId::Redis)
            .runtime_params(56)
            .iterations(6)
            .seed(3)
            .build()
            .unwrap();
        let _ = s.run();
        assert!(s.checkpoint().is_some());
        // Random search has no checkpoint.
        let mut r = SessionBuilder::new()
            .algorithm(AlgorithmChoice::Random)
            .runtime_params(56)
            .iterations(2)
            .build()
            .unwrap();
        let _ = r.run();
        assert!(r.checkpoint().is_none());
    }

    #[test]
    fn all_stages_target_searches_boot_parameters() {
        use wf_configspace::Stage;
        let mut s = SessionBuilder::new()
            .os(OsFlavor::Linux419AllStages)
            .app(AppId::Nginx)
            .algorithm(AlgorithmChoice::Random)
            .runtime_params(56)
            .iterations(6)
            .seed(77)
            .build()
            .unwrap();
        let space = s.platform().space().clone();
        assert!(space.census().boot > 0, "boot stage present");
        let _ = s.run();
        // Some explored configuration varied a boot-time parameter.
        let default = space.default_config();
        let boot_idx = space.stage_indices(Stage::BootTime);
        let varied = s
            .platform()
            .history()
            .records()
            .iter()
            .any(|r| boot_idx.iter().any(|&i| r.config.get(i) != default.get(i)));
        assert!(varied, "boot parameters never varied");
    }

    #[test]
    fn focus_restricts_the_varied_stage() {
        use wf_configspace::Stage;
        let mut s = SessionBuilder::new()
            .os(OsFlavor::Linux419AllStages)
            .app(AppId::Nginx)
            .algorithm(AlgorithmChoice::Random)
            .focus(Focus::Runtime)
            .runtime_params(56)
            .iterations(6)
            .seed(78)
            .build()
            .unwrap();
        let space = s.platform().space().clone();
        let _ = s.run();
        let default = space.default_config();
        let boot_idx = space.stage_indices(Stage::BootTime);
        for r in s.platform().history().records() {
            for &i in &boot_idx {
                assert_eq!(
                    r.config.get(i),
                    default.get(i),
                    "boot param varied under runtime focus"
                );
            }
        }
    }

    #[test]
    fn explicit_job_space_restricts_exploration() {
        let job = Job::parse(
            "name: subset\nos: linux-4.19\napp: nginx\nmetric: throughput\nalgorithm: random\nseed: 6\nbudget:\n  iterations: 8\nparams:\n  - name: net.core.somaxconn\n    type: int\n    min: 16\n    max: 65535\n    log: true\n    default: 128\n  - name: custom.inert_knob\n    type: int\n    min: 0\n    max: 10\n    default: 5\n",
        )
        .unwrap();
        let mut s = SessionBuilder::from_job(&job).unwrap().build().unwrap();
        assert_eq!(s.platform().space().len(), 2, "only the declared params");
        let outcome = s.run();
        assert_eq!(outcome.summary.iterations, 8);
        // The known parameter drives real effects; the unknown one is
        // explored but inert — both are legal.
        assert!(outcome.summary.best_metric.unwrap() > 10_000.0);
    }

    #[test]
    fn from_job_round_trip() {
        let job = Job::parse(
            "name: x\nos: linux-4.19\napp: redis\nmetric: throughput\nalgorithm: random\nseed: 9\nbudget:\n  iterations: 3\n",
        )
        .unwrap();
        let mut s = SessionBuilder::from_job(&job)
            .unwrap()
            .runtime_params(56)
            .build()
            .unwrap();
        let outcome = s.run();
        assert_eq!(outcome.summary.iterations, 3);
    }
}
