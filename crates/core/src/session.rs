//! The high-level public API: pick an OS, an application, an algorithm,
//! and a budget; get a specialized configuration back.
//!
//! This is the programmatic equivalent of a Wayfinder job file: the
//! `examples/` directory exercises exactly this surface.

use std::fmt;
use wf_deeptune::{Checkpoint, DeepTune, DeepTuneConfig};
use wf_jobfile::{Budget, Direction, Focus, Job};
use wf_kconfig::LinuxVersion;
use wf_ossim::{App, AppId, MetricDirection, SimOs};
use wf_platform::{Objective, Record, Session, SessionSpec, SessionSummary};
use wf_search::{BayesOpt, CausalSearch, GridSearch, RandomSearch, SamplePolicy, SearchAlgorithm};

/// The OS targets this reproduction ships.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OsFlavor {
    /// Linux v4.19 with a runtime-focused space (the §4.1 experiments).
    Linux419,
    /// Linux v6.0 with a runtime-focused space (the Table 1 kernel).
    Linux60,
    /// Linux v4.19 with boot-time *and* runtime parameters searchable.
    Linux419AllStages,
    /// RISC-V Linux v5.13 with a compile-time space (Fig. 10).
    LinuxRiscv,
    /// Unikraft building Nginx (Fig. 9).
    Unikraft,
}

impl OsFlavor {
    /// Parses a job-file `os:` value.
    pub fn parse(s: &str) -> Option<OsFlavor> {
        match s {
            "linux-4.19" => Some(OsFlavor::Linux419),
            "linux-6.0" => Some(OsFlavor::Linux60),
            "linux-4.19-all" => Some(OsFlavor::Linux419AllStages),
            "linux-riscv" => Some(OsFlavor::LinuxRiscv),
            "unikraft" => Some(OsFlavor::Unikraft),
            _ => None,
        }
    }

    /// The job-file keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            OsFlavor::Linux419 => "linux-4.19",
            OsFlavor::Linux60 => "linux-6.0",
            OsFlavor::Linux419AllStages => "linux-4.19-all",
            OsFlavor::LinuxRiscv => "linux-riscv",
            OsFlavor::Unikraft => "unikraft",
        }
    }
}

/// Search-algorithm selection for the builder.
pub enum AlgorithmChoice {
    /// Random search baseline.
    Random,
    /// Grid search.
    Grid,
    /// Gaussian-process Bayesian optimization.
    Bayesian,
    /// Unicorn-style causal search.
    Causal,
    /// DeepTune (cold start).
    DeepTune,
    /// DeepTune warm-started from a transfer checkpoint (§3.3).
    DeepTuneTransfer(Checkpoint),
}

impl fmt::Debug for AlgorithmChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AlgorithmChoice::Random => "Random",
            AlgorithmChoice::Grid => "Grid",
            AlgorithmChoice::Bayesian => "Bayesian",
            AlgorithmChoice::Causal => "Causal",
            AlgorithmChoice::DeepTune => "DeepTune",
            AlgorithmChoice::DeepTuneTransfer(_) => "DeepTune+TL",
        })
    }
}

/// Builder errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BuildError {
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for BuildError {}

/// Fluent session construction.
pub struct SessionBuilder {
    os: OsFlavor,
    app: AppId,
    algorithm: AlgorithmChoice,
    objective: Objective,
    iterations: Option<usize>,
    time_budget_s: Option<f64>,
    seed: u64,
    repetitions: usize,
    workers: usize,
    runtime_params: usize,
    focus: Focus,
    pins: Vec<(String, String)>,
    explicit_space: Option<wf_configspace::ConfigSpace>,
    deeptune: DeepTuneConfig,
}

impl Default for SessionBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl SessionBuilder {
    /// Starts a builder with the paper's §4.1 defaults: Linux 4.19,
    /// Nginx, DeepTune, 250 iterations.
    pub fn new() -> Self {
        SessionBuilder {
            os: OsFlavor::Linux419,
            app: AppId::Nginx,
            algorithm: AlgorithmChoice::DeepTune,
            objective: Objective::Metric,
            iterations: Some(250),
            time_budget_s: None,
            seed: 1,
            repetitions: 1,
            workers: wf_platform::default_workers(),
            runtime_params: 200,
            focus: Focus::All,
            pins: Vec::new(),
            explicit_space: None,
            deeptune: DeepTuneConfig::default(),
        }
    }

    /// Selects the OS target.
    pub fn os(mut self, os: OsFlavor) -> Self {
        self.os = os;
        self
    }

    /// Selects the application.
    pub fn app(mut self, app: AppId) -> Self {
        self.app = app;
        self
    }

    /// Selects the search algorithm.
    pub fn algorithm(mut self, algorithm: AlgorithmChoice) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Selects the objective (primary metric by default).
    pub fn objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Sets the iteration budget.
    pub fn iterations(mut self, n: usize) -> Self {
        self.iterations = Some(n);
        self
    }

    /// Sets the virtual-time budget in seconds (3-hour sessions in §4.4).
    pub fn time_budget_s(mut self, s: f64) -> Self {
        self.time_budget_s = Some(s);
        self
    }

    /// Seeds the session RNG.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Benchmark repetitions per configuration.
    pub fn repetitions(mut self, reps: usize) -> Self {
        self.repetitions = reps.max(1);
        self
    }

    /// Simulated VM workers evaluating candidates concurrently (the wave
    /// width of the batch ask/tell loop). Defaults to `WF_WORKERS` from
    /// the environment, else 1.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.clamp(1, 64);
        self
    }

    /// Size of the probed runtime space for the Linux targets (§3.4).
    pub fn runtime_params(mut self, n: usize) -> Self {
        self.runtime_params = n;
        self
    }

    /// Pins a parameter to a fixed value (§3.5 constrained search).
    pub fn pin(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.pins.push((name.into(), value.into()));
        self
    }

    /// Restricts the search to one parameter stage (§3.5: "Wayfinder can
    /// also be instructed to favor varying certain parameter types ...
    /// useful, e.g., when the kernel to optimize cannot be rebooted").
    pub fn focus(mut self, focus: Focus) -> Self {
        self.focus = focus;
        self
    }

    /// Replaces the OS's own configuration space with an explicit one
    /// (§3.1: job files "representing the configuration space of the
    /// target OS"). Parameters the ground-truth models do not know are
    /// explored but inert, exactly like the real kernel's long tail.
    pub fn explicit_space(mut self, space: wf_configspace::ConfigSpace) -> Self {
        self.explicit_space = Some(space);
        self
    }

    /// Overrides DeepTune's hyperparameters.
    pub fn deeptune_config(mut self, cfg: DeepTuneConfig) -> Self {
        self.deeptune = cfg;
        self
    }

    /// Builds the session from a parsed job file instead of builder calls.
    pub fn from_job(job: &Job) -> Result<SessionBuilder, BuildError> {
        let os = OsFlavor::parse(&job.os).ok_or_else(|| BuildError {
            message: format!("unknown os {:?}", job.os),
        })?;
        let app = AppId::parse(&job.app).ok_or_else(|| BuildError {
            message: format!("unknown app {:?}", job.app),
        })?;
        let algorithm = match job.algorithm {
            wf_jobfile::AlgorithmId::Random => AlgorithmChoice::Random,
            wf_jobfile::AlgorithmId::Grid => AlgorithmChoice::Grid,
            wf_jobfile::AlgorithmId::Bayesian => AlgorithmChoice::Bayesian,
            wf_jobfile::AlgorithmId::DeepTune => AlgorithmChoice::DeepTune,
        };
        let objective = match job.metric.as_str() {
            "memory" => Objective::MemoryMb,
            "score" => Objective::ThroughputMemoryScore,
            _ => Objective::Metric,
        };
        let mut b = SessionBuilder::new()
            .os(os)
            .app(app)
            .algorithm(algorithm)
            .objective(objective)
            .seed(job.seed)
            .repetitions(job.repetitions);
        if let Some(workers) = job.workers {
            b = b.workers(workers);
        }
        b.iterations = job.budget.iterations;
        b.time_budget_s = job.budget.time_seconds;
        for pin in &job.pinned {
            b = b.pin(pin.name.clone(), pin.value.clone());
        }
        b = b.focus(job.focus);
        if let Some(space) = job.param_space() {
            b = b.explicit_space(space);
        }
        Ok(b)
    }

    /// Materializes the OS target, application, and policy; then builds
    /// the platform session.
    pub fn build(self) -> Result<SpecializationSession, BuildError> {
        let (mut os, app, policy) = match self.os {
            OsFlavor::Linux419 => (
                SimOs::linux_runtime(LinuxVersion::V4_19, self.runtime_params),
                App::by_id(self.app),
                SamplePolicy::Uniform,
            ),
            OsFlavor::Linux60 => (
                SimOs::linux_runtime(LinuxVersion::V6_0, self.runtime_params),
                App::by_id(self.app),
                SamplePolicy::Uniform,
            ),
            OsFlavor::Linux419AllStages => (
                SimOs::linux_all_stages(LinuxVersion::V4_19, self.runtime_params),
                App::by_id(self.app),
                SamplePolicy::Uniform,
            ),
            OsFlavor::LinuxRiscv => (
                SimOs::linux_riscv_footprint(),
                boot_probe_app(),
                SamplePolicy::MutateDefault { max_changes: 128 },
            ),
            OsFlavor::Unikraft => {
                if self.app != AppId::Nginx {
                    return Err(BuildError {
                        message: "the Unikraft target ships an Nginx image (§4.4)".into(),
                    });
                }
                (
                    SimOs::unikraft_nginx(),
                    wf_ossim::unikraft::nginx_app(),
                    SamplePolicy::Uniform,
                )
            }
        };

        // An explicit job-file space replaces the OS's own; its defaults
        // join the ground-truth view so effect normalization stays exact.
        if let Some(space) = self.explicit_space {
            for spec in space.specs() {
                os.defaults_view.set(spec.name.clone(), spec.default);
            }
            os.space = space;
        }

        // Apply pins through the job-file machinery so value parsing is
        // uniform.
        if !self.pins.is_empty() {
            let job = Job {
                pinned: self
                    .pins
                    .iter()
                    .map(|(name, value)| wf_jobfile::Pin {
                        name: name.clone(),
                        value: value.clone(),
                    })
                    .collect(),
                ..Job::default()
            };
            job.apply_pins(&mut os.space).map_err(|e| BuildError {
                message: e.to_string(),
            })?;
        }

        // §3.5 stage focus narrows the sampling policy.
        let policy = match (self.focus.stage(), policy) {
            (Some(stage), SamplePolicy::Uniform) => SamplePolicy::StageFocused(stage),
            (_, p) => p,
        };

        let direction = match (self.objective, app.direction) {
            (Objective::MemoryMb, _) => Direction::Minimize,
            (_, MetricDirection::HigherBetter) => Direction::Maximize,
            (_, MetricDirection::LowerBetter) => Direction::Minimize,
        };
        if self.iterations.is_none() && self.time_budget_s.is_none() {
            return Err(BuildError {
                message: "a session needs an iteration or time budget".into(),
            });
        }
        let spec = SessionSpec {
            objective: self.objective,
            direction,
            policy,
            budget: Budget {
                iterations: self.iterations,
                time_seconds: self.time_budget_s,
            },
            repetitions: self.repetitions,
            seed: self.seed,
            workers: self.workers,
        };
        let algorithm: Box<dyn SearchAlgorithm> = match self.algorithm {
            AlgorithmChoice::Random => Box::new(RandomSearch::new()),
            AlgorithmChoice::Grid => Box::new(GridSearch::new(8)),
            AlgorithmChoice::Bayesian => Box::new(BayesOpt::new()),
            AlgorithmChoice::Causal => Box::new(CausalSearch::new()),
            AlgorithmChoice::DeepTune => {
                let mut cfg = self.deeptune;
                cfg.seed ^= self.seed;
                Box::new(DeepTune::new(cfg))
            }
            AlgorithmChoice::DeepTuneTransfer(ckpt) => {
                let mut cfg = self.deeptune;
                cfg.seed ^= self.seed;
                Box::new(DeepTune::with_checkpoint(cfg, ckpt))
            }
        };
        Ok(SpecializationSession {
            inner: Session::new(os, app, algorithm, spec),
        })
    }
}

/// A synthetic "application" for footprint sessions: boots and reports
/// memory, with no performance model of its own.
fn boot_probe_app() -> App {
    App {
        id: AppId::Nginx,
        bench_tool: "boot-probe",
        metric_name: "memory",
        unit: "MB",
        direction: MetricDirection::LowerBetter,
        base: 1.0,
        cores: 1,
        bench_duration_s: 12.0,
        mem_base_mb: 0.0,
        perf: wf_ossim::PerfModel::new(0.0),
        mem: wf_ossim::PerfModel::new(0.0),
    }
}

/// The outcome of a completed session.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// The best configuration with its objective value, if any run
    /// succeeded.
    pub best: Option<(wf_configspace::Configuration, f64)>,
    /// Full summary statistics.
    pub summary: SessionSummary,
}

/// A running specialization session (facade over the platform session).
pub struct SpecializationSession {
    inner: Session,
}

impl SpecializationSession {
    /// Runs to budget exhaustion.
    pub fn run(&mut self) -> Outcome {
        let summary = self.inner.run();
        Outcome {
            best: summary.best_config.clone().zip(summary.best_objective),
            summary,
        }
    }

    /// Runs one iteration.
    pub fn step(&mut self) -> &Record {
        self.inner.step()
    }

    /// Whether the budget is exhausted.
    pub fn done(&self) -> bool {
        self.inner.done()
    }

    /// The underlying platform session.
    pub fn platform(&self) -> &Session {
        &self.inner
    }

    /// Mutable access to the underlying platform session.
    pub fn platform_mut(&mut self) -> &mut Session {
        &mut self.inner
    }

    /// Extracts a transfer-learning checkpoint if the algorithm is a
    /// trained DeepTune (§3.3).
    pub fn checkpoint(&mut self) -> Option<Checkpoint> {
        self.inner
            .algorithm_mut()
            .as_any_mut()?
            .downcast_mut::<DeepTune>()?
            .checkpoint()
    }

    /// Queries the trained model for high-impact parameters (§4.1).
    pub fn parameter_impacts(&mut self) -> Option<Vec<wf_deeptune::ParamImpact>> {
        let space = self.inner.os().space.clone();
        let encoder = wf_configspace::Encoder::new(&space);
        // Anchor the axis probes on the default configuration plus the
        // best configurations the session actually evaluated: the model is
        // only trustworthy near its training distribution, and averaging
        // over several anchors de-noises the single-axis deltas.
        let direction = self.inner.direction();
        let mut evaluated: Vec<(f64, wf_configspace::Configuration)> = self
            .inner
            .history()
            .observations()
            .into_iter()
            .filter_map(|o| o.value.map(|v| (v, o.config)))
            .collect();
        evaluated.sort_by(|a, b| match direction {
            wf_jobfile::Direction::Maximize => b.0.partial_cmp(&a.0).unwrap(),
            wf_jobfile::Direction::Minimize => a.0.partial_cmp(&b.0).unwrap(),
        });
        let mut anchors = vec![space.default_config()];
        anchors.extend(evaluated.into_iter().take(8).map(|(_, c)| c));
        let dt = self
            .inner
            .algorithm_mut()
            .as_any_mut()?
            .downcast_mut::<DeepTune>()?;
        wf_deeptune::parameter_impacts_at(dt, &space, &encoder, &anchors)
    }
}

/// Re-exported focus type for job parity.
pub type JobFocus = Focus;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_runs_a_tiny_deeptune_session() {
        let mut s = SessionBuilder::new()
            .os(OsFlavor::Linux419)
            .app(AppId::Nginx)
            .algorithm(AlgorithmChoice::DeepTune)
            .runtime_params(64)
            .iterations(8)
            .seed(7)
            .build()
            .expect("valid session");
        let outcome = s.run();
        assert_eq!(outcome.summary.iterations, 8);
        assert!(outcome.best.is_some());
    }

    #[test]
    fn builder_rejects_missing_budget() {
        let mut b = SessionBuilder::new();
        b.iterations = None;
        b.time_budget_s = None;
        assert!(b.build().is_err());
    }

    #[test]
    fn unikraft_requires_nginx() {
        let err = match SessionBuilder::new()
            .os(OsFlavor::Unikraft)
            .app(AppId::Redis)
            .iterations(1)
            .build()
        {
            Err(e) => e,
            Ok(_) => panic!("unikraft+redis must be rejected"),
        };
        assert!(err.message.contains("Nginx"));
    }

    #[test]
    fn pins_are_applied_to_the_space() {
        let s = SessionBuilder::new()
            .os(OsFlavor::Linux419)
            .runtime_params(64)
            .iterations(1)
            .pin("kernel.randomize_va_space", "2")
            .build()
            .expect("valid session");
        let space = &s.platform().os().space;
        let idx = space.index_of("kernel.randomize_va_space").unwrap();
        assert!(space.spec(idx).fixed);
    }

    #[test]
    fn bad_pin_is_a_build_error() {
        let err = match SessionBuilder::new()
            .runtime_params(64)
            .iterations(1)
            .pin("kernel.nope", "1")
            .build()
        {
            Err(e) => e,
            Ok(_) => panic!("unknown pin must be rejected"),
        };
        assert!(err.message.contains("unknown parameter"));
    }

    #[test]
    fn checkpoint_extraction_works_after_training() {
        let mut s = SessionBuilder::new()
            .os(OsFlavor::Linux419)
            .app(AppId::Redis)
            .runtime_params(56)
            .iterations(6)
            .seed(3)
            .build()
            .unwrap();
        let _ = s.run();
        assert!(s.checkpoint().is_some());
        // Random search has no checkpoint.
        let mut r = SessionBuilder::new()
            .algorithm(AlgorithmChoice::Random)
            .runtime_params(56)
            .iterations(2)
            .build()
            .unwrap();
        let _ = r.run();
        assert!(r.checkpoint().is_none());
    }

    #[test]
    fn all_stages_target_searches_boot_parameters() {
        use wf_configspace::Stage;
        let mut s = SessionBuilder::new()
            .os(OsFlavor::Linux419AllStages)
            .app(AppId::Nginx)
            .algorithm(AlgorithmChoice::Random)
            .runtime_params(56)
            .iterations(6)
            .seed(77)
            .build()
            .unwrap();
        let space = s.platform().os().space.clone();
        assert!(space.census().boot > 0, "boot stage present");
        let _ = s.run();
        // Some explored configuration varied a boot-time parameter.
        let default = space.default_config();
        let boot_idx = space.stage_indices(Stage::BootTime);
        let varied = s
            .platform()
            .history()
            .records()
            .iter()
            .any(|r| boot_idx.iter().any(|&i| r.config.get(i) != default.get(i)));
        assert!(varied, "boot parameters never varied");
    }

    #[test]
    fn focus_restricts_the_varied_stage() {
        use wf_configspace::Stage;
        let mut s = SessionBuilder::new()
            .os(OsFlavor::Linux419AllStages)
            .app(AppId::Nginx)
            .algorithm(AlgorithmChoice::Random)
            .focus(Focus::Runtime)
            .runtime_params(56)
            .iterations(6)
            .seed(78)
            .build()
            .unwrap();
        let space = s.platform().os().space.clone();
        let _ = s.run();
        let default = space.default_config();
        let boot_idx = space.stage_indices(Stage::BootTime);
        for r in s.platform().history().records() {
            for &i in &boot_idx {
                assert_eq!(
                    r.config.get(i),
                    default.get(i),
                    "boot param varied under runtime focus"
                );
            }
        }
    }

    #[test]
    fn explicit_job_space_restricts_exploration() {
        let job = Job::parse(
            "name: subset\nos: linux-4.19\napp: nginx\nmetric: throughput\nalgorithm: random\nseed: 6\nbudget:\n  iterations: 8\nparams:\n  - name: net.core.somaxconn\n    type: int\n    min: 16\n    max: 65535\n    log: true\n    default: 128\n  - name: custom.inert_knob\n    type: int\n    min: 0\n    max: 10\n    default: 5\n",
        )
        .unwrap();
        let mut s = SessionBuilder::from_job(&job).unwrap().build().unwrap();
        assert_eq!(s.platform().os().space.len(), 2, "only the declared params");
        let outcome = s.run();
        assert_eq!(outcome.summary.iterations, 8);
        // The known parameter drives real effects; the unknown one is
        // explored but inert — both are legal.
        assert!(outcome.summary.best_metric.unwrap() > 10_000.0);
    }

    #[test]
    fn from_job_round_trip() {
        let job = Job::parse(
            "name: x\nos: linux-4.19\napp: redis\nmetric: throughput\nalgorithm: random\nseed: 9\nbudget:\n  iterations: 3\n",
        )
        .unwrap();
        let mut s = SessionBuilder::from_job(&job)
            .unwrap()
            .runtime_params(56)
            .build()
            .unwrap();
        let outcome = s.run();
        assert_eq!(outcome.summary.iterations, 3);
    }
}
