//! The high-level public API: pick an OS, an application, an algorithm,
//! and a budget; get a specialized configuration back.
//!
//! This is the programmatic equivalent of a Wayfinder job file: the
//! `examples/` directory exercises exactly this surface.

use crate::targets::{TargetInstance, TargetRegistry, TargetRequest};
use std::collections::VecDeque;
use std::fmt;
use std::path::Path;
use wf_deeptune::{Checkpoint, DeepTune, DeepTuneConfig};
use wf_drift::{DriftDetector, MeanShift, PageHinkley};
use wf_jobfile::{
    AlgorithmId, BackendChoice, Budget, DetectorId, Direction, DriftSpec, Focus, Job, Mode,
    ParamDecl, RoutingStrategy,
};
use wf_ossim::{AppId, DriftScenario, DriftSchedule, MetricDirection};
use wf_platform::{
    DriftConfig, EventSink, NullSink, Objective, Record, RecordingSink, ReplayError, Session,
    SessionEvent, SessionSpec, SessionStore, SessionSummary, StoreError, StoredSession,
};
use wf_search::{BayesOpt, CausalSearch, GridSearch, RandomSearch, SamplePolicy, SearchAlgorithm};

/// The five paper targets, as a typed convenience over their registry
/// keywords. [`SessionBuilder::os`] is sugar for
/// [`SessionBuilder::target`] with [`OsFlavor::keyword`]; targets beyond
/// the paper's five are addressed by keyword through a
/// [`TargetRegistry`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OsFlavor {
    /// Linux v4.19 with a runtime-focused space (the §4.1 experiments).
    Linux419,
    /// Linux v6.0 with a runtime-focused space (the Table 1 kernel).
    Linux60,
    /// Linux v4.19 with boot-time *and* runtime parameters searchable.
    Linux419AllStages,
    /// RISC-V Linux v5.13 with a compile-time space (Fig. 10).
    LinuxRiscv,
    /// Unikraft building Nginx (Fig. 9).
    Unikraft,
}

impl OsFlavor {
    /// The job-file keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            OsFlavor::Linux419 => "linux-4.19",
            OsFlavor::Linux60 => "linux-6.0",
            OsFlavor::Linux419AllStages => "linux-4.19-all",
            OsFlavor::LinuxRiscv => "linux-riscv",
            OsFlavor::Unikraft => "unikraft",
        }
    }
}

/// Search-algorithm selection for the builder.
pub enum AlgorithmChoice {
    /// Random search baseline.
    Random,
    /// Grid search.
    Grid,
    /// Gaussian-process Bayesian optimization.
    Bayesian,
    /// Unicorn-style causal search.
    Causal,
    /// DeepTune (cold start).
    DeepTune,
    /// DeepTune warm-started from a transfer checkpoint (§3.3).
    DeepTuneTransfer(Checkpoint),
}

impl fmt::Debug for AlgorithmChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AlgorithmChoice::Random => "Random",
            AlgorithmChoice::Grid => "Grid",
            AlgorithmChoice::Bayesian => "Bayesian",
            AlgorithmChoice::Causal => "Causal",
            AlgorithmChoice::DeepTune => "DeepTune",
            AlgorithmChoice::DeepTuneTransfer(_) => "DeepTune+TL",
        })
    }
}

/// Builder and registry errors, one variant per distinct failure so
/// callers (e.g. `wfctl`) can react to each case specifically.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuildError {
    /// The `os:` keyword is not in the target registry.
    UnknownTarget {
        /// The keyword that failed to resolve.
        given: String,
        /// Every keyword the registry does know, sorted.
        known: Vec<String>,
    },
    /// The target does not know the requested application at all.
    UnknownApp {
        /// The target keyword.
        target: String,
        /// The application that failed to resolve.
        given: String,
        /// Applications the target supports.
        supported: Vec<String>,
    },
    /// The application exists but this target cannot run it.
    IncompatibleApp {
        /// The target keyword.
        target: String,
        /// The rejected application.
        app: String,
        /// Why the pairing is impossible.
        reason: String,
    },
    /// The job's `metric:` is neither the target's primary metric nor a
    /// derived objective.
    UnknownMetric {
        /// The metric that failed to resolve.
        given: String,
        /// The values that would have been accepted.
        valid: Vec<String>,
    },
    /// Neither an iteration nor a time budget was set.
    MissingBudget,
    /// A pinned parameter could not be applied to the space.
    BadPin {
        /// The underlying job-file error.
        message: String,
    },
    /// A target keyword was registered twice.
    DuplicateKeyword {
        /// The contested keyword.
        keyword: String,
    },
    /// The evaluation backend could not be constructed (e.g. remote
    /// workers failed to launch).
    Backend {
        /// The underlying launch failure.
        message: String,
    },
    /// Continuous mode was requested for a target without a simulated
    /// drift model (only `SimTarget`-backed targets can drift).
    ContinuousUnsupported {
        /// The target keyword.
        target: String,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnknownTarget { given, known } => {
                write!(
                    f,
                    "unknown target {given:?}; registered targets: {}",
                    known.join(", ")
                )
            }
            BuildError::UnknownApp {
                target,
                given,
                supported,
            } => write!(
                f,
                "unknown app {given:?} for target {target:?}; supported apps: {}",
                supported.join(", ")
            ),
            BuildError::IncompatibleApp {
                target,
                app,
                reason,
            } => {
                write!(
                    f,
                    "app {app:?} is incompatible with target {target:?}: {reason}"
                )
            }
            BuildError::UnknownMetric { given, valid } => {
                write!(
                    f,
                    "unknown metric {given:?}; valid values: {}",
                    valid.join(", ")
                )
            }
            BuildError::MissingBudget => f.write_str("a session needs an iteration or time budget"),
            BuildError::BadPin { message } => write!(f, "bad pin: {message}"),
            BuildError::Backend { message } => write!(f, "backend: {message}"),
            BuildError::DuplicateKeyword { keyword } => {
                write!(f, "target keyword {keyword:?} is already registered")
            }
            BuildError::ContinuousUnsupported { target } => {
                write!(
                    f,
                    "target {target:?} does not support continuous mode (no simulated drift model)"
                )
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Materializes just the evaluation target a job resolves to — explicit
/// space installed, pins applied — without constructing a session. This
/// is what a `wf-evald` worker process runs [`wf_platform::serve`]
/// against: the session ships its *resolved* job to every worker, so
/// each process rebuilds the exact target the session dispatches to.
pub fn target_from_job(
    job: &Job,
    registry: &TargetRegistry,
) -> Result<Box<dyn wf_platform::EvalTarget>, BuildError> {
    let factory = registry
        .get(&job.os)
        .ok_or_else(|| BuildError::UnknownTarget {
            given: job.os.clone(),
            known: registry.keywords(),
        })?;
    let app = job
        .app
        .clone()
        .unwrap_or_else(|| factory.default_app().to_string());
    let TargetInstance { mut target, .. } = factory.instantiate(&TargetRequest {
        app,
        runtime_params: job.runtime_params.unwrap_or(200),
    })?;
    if let Some(space) = job.param_space() {
        target.install_space(space);
    }
    if !job.pinned.is_empty() {
        job.apply_pins(target.space_mut())
            .map_err(|e| BuildError::BadPin {
                message: e.to_string(),
            })?;
    }
    Ok(target)
}

/// Locates the `wf-evald` remote-worker binary: the `WF_EVALD`
/// environment variable when set (tests point it at a freshly built
/// binary), else a sibling of the current executable, else the bare
/// name resolved through `PATH` at spawn time.
fn locate_evald() -> std::path::PathBuf {
    // wf-lint: allow(host-env-read, reason = "config-load: WF_EVALD locates the worker binary once at backend construction; which binary serves a lane never affects results (DETERMINISM.md backend-invariance)")
    if let Some(path) = std::env::var_os("WF_EVALD") {
        return std::path::PathBuf::from(path);
    }
    std::env::current_exe()
        .ok()
        .and_then(|exe| exe.parent().map(|dir| dir.join("wf-evald")))
        .unwrap_or_else(|| std::path::PathBuf::from("wf-evald"))
}

/// Fluent session construction, resolved through a [`TargetRegistry`].
pub struct SessionBuilder {
    name: String,
    target: String,
    app: Option<String>,
    registry: TargetRegistry,
    algorithm: AlgorithmChoice,
    objective: Objective,
    job_metric: Option<String>,
    iterations: Option<usize>,
    time_budget_s: Option<f64>,
    seed: u64,
    repetitions: usize,
    workers: usize,
    backend: BackendChoice,
    routing: RoutingStrategy,
    runtime_params: usize,
    focus: Focus,
    pins: Vec<(String, String)>,
    explicit_space: Option<wf_configspace::ConfigSpace>,
    deeptune: DeepTuneConfig,
    drift: Option<DriftSpec>,
}

impl Default for SessionBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl SessionBuilder {
    /// Starts a builder with the paper's §4.1 defaults: Linux 4.19, the
    /// target's default app (Nginx), DeepTune, 250 iterations, and the
    /// built-in target registry.
    pub fn new() -> Self {
        SessionBuilder {
            name: "session".to_string(),
            target: OsFlavor::Linux419.keyword().to_string(),
            app: None,
            registry: TargetRegistry::builtin(),
            algorithm: AlgorithmChoice::DeepTune,
            objective: Objective::Metric,
            job_metric: None,
            iterations: Some(250),
            time_budget_s: None,
            seed: 1,
            repetitions: 1,
            workers: wf_platform::default_workers(),
            backend: BackendChoice::default(),
            routing: RoutingStrategy::default(),
            runtime_params: 200,
            focus: Focus::All,
            pins: Vec::new(),
            explicit_space: None,
            deeptune: DeepTuneConfig::default(),
            drift: None,
        }
    }

    /// Names the session (used in reports and session-store manifests).
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Selects one of the five paper targets (sugar for
    /// [`SessionBuilder::target`] with the flavor's keyword).
    pub fn os(self, os: OsFlavor) -> Self {
        self.target(os.keyword())
    }

    /// Selects the target by registry keyword. Unknown keywords surface
    /// as [`BuildError::UnknownTarget`] at [`SessionBuilder::build`].
    pub fn target(mut self, keyword: impl Into<String>) -> Self {
        self.target = keyword.into();
        self
    }

    /// Replaces the target registry (e.g. to add downstream scenarios).
    /// Defaults to [`TargetRegistry::builtin`].
    pub fn registry(mut self, registry: TargetRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// Selects one of the paper's benchmark applications.
    pub fn app(self, app: AppId) -> Self {
        self.app_named(app.label())
    }

    /// Selects the application by keyword, as a job file would. The
    /// target's factory resolves (or rejects) it at build time; when no
    /// app is chosen the target's default runs.
    pub fn app_named(mut self, app: impl Into<String>) -> Self {
        self.app = Some(app.into());
        self
    }

    /// Sets the job-file metric keyword: the target's primary metric
    /// (e.g. `throughput`), `memory`, or `score`. Anything else is
    /// rejected at build time; [`SessionBuilder::objective`] is the typed
    /// alternative, and whichever of the two was called last wins.
    pub fn metric(mut self, metric: impl Into<String>) -> Self {
        self.job_metric = Some(metric.into());
        self
    }

    /// Selects the search algorithm.
    pub fn algorithm(mut self, algorithm: AlgorithmChoice) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Selects the objective (primary metric by default). Overrides any
    /// earlier [`SessionBuilder::metric`] / job-file `metric:` keyword —
    /// whichever of the two was called last wins.
    pub fn objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self.job_metric = None;
        self
    }

    /// Sets the iteration budget.
    pub fn iterations(mut self, n: usize) -> Self {
        self.iterations = Some(n);
        self
    }

    /// Sets the virtual-time budget in seconds (3-hour sessions in §4.4).
    pub fn time_budget_s(mut self, s: f64) -> Self {
        self.time_budget_s = Some(s);
        self
    }

    /// Seeds the session RNG.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Benchmark repetitions per configuration.
    pub fn repetitions(mut self, reps: usize) -> Self {
        self.repetitions = reps.max(1);
        self
    }

    /// Simulated VM workers evaluating candidates concurrently (the wave
    /// width of the batch ask/tell loop). Defaults to `WF_WORKERS` from
    /// the environment, else 1.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.clamp(1, 64);
        self
    }

    /// Selects where candidate evaluations execute: spawned per-wave
    /// threads, the persistent in-process pool (the default), or
    /// `wf-evald` worker processes behind a socket.
    pub fn backend(mut self, backend: BackendChoice) -> Self {
        self.backend = backend;
        self
    }

    /// Selects the slot → lane routing strategy for wave dispatch
    /// (`random | fastest | round-robin | preferred`). Defaults to
    /// round-robin, which on healthy full-width waves is the identity
    /// assignment.
    pub fn routing(mut self, routing: RoutingStrategy) -> Self {
        self.routing = routing;
        self
    }

    /// Size of the probed runtime space for the Linux targets (§3.4).
    pub fn runtime_params(mut self, n: usize) -> Self {
        self.runtime_params = n;
        self
    }

    /// Pins a parameter to a fixed value (§3.5 constrained search).
    pub fn pin(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.pins.push((name.into(), value.into()));
        self
    }

    /// Restricts the search to one parameter stage (§3.5: "Wayfinder can
    /// also be instructed to favor varying certain parameter types ...
    /// useful, e.g., when the kernel to optimize cannot be rebooted").
    pub fn focus(mut self, focus: Focus) -> Self {
        self.focus = focus;
        self
    }

    /// Replaces the OS's own configuration space with an explicit one
    /// (§3.1: job files "representing the configuration space of the
    /// target OS"). Parameters the ground-truth models do not know are
    /// explored but inert, exactly like the real kernel's long tail.
    pub fn explicit_space(mut self, space: wf_configspace::ConfigSpace) -> Self {
        self.explicit_space = Some(space);
        self
    }

    /// Overrides DeepTune's hyperparameters.
    pub fn deeptune_config(mut self, cfg: DeepTuneConfig) -> Self {
        self.deeptune = cfg;
        self
    }

    /// Switches the session to continuous specialization: the workload
    /// drifts per `spec`, deployed-reference telemetry feeds a change
    /// detector, and a confirmed drift closes the epoch and re-seeds the
    /// search ([`wf_platform::Session::enable_drift`]). Only
    /// `SimTarget`-backed targets support this; others fail the build
    /// with [`BuildError::ContinuousUnsupported`].
    pub fn continuous(mut self, spec: DriftSpec) -> Self {
        self.drift = Some(spec);
        self
    }

    /// Builds the session from a parsed job file instead of builder
    /// calls. The job's `os:`, `app:`, and `metric:` keywords are carried
    /// verbatim and resolved against the registry at
    /// [`SessionBuilder::build`], so downstream targets registered via
    /// [`SessionBuilder::registry`] work from job files too.
    pub fn from_job(job: &Job) -> Result<SessionBuilder, BuildError> {
        let algorithm = match job.algorithm {
            AlgorithmId::Random => AlgorithmChoice::Random,
            AlgorithmId::Grid => AlgorithmChoice::Grid,
            AlgorithmId::Bayesian => AlgorithmChoice::Bayesian,
            AlgorithmId::Causal => AlgorithmChoice::Causal,
            AlgorithmId::DeepTune => AlgorithmChoice::DeepTune,
        };
        let mut b = SessionBuilder::new()
            .name(job.name.clone())
            .target(job.os.clone())
            .algorithm(algorithm)
            .seed(job.seed)
            .repetitions(job.repetitions);
        // Omitted `app:`/`metric:` keys mean "the target's defaults", so
        // minimal job files work for every registered target.
        if let Some(app) = &job.app {
            b = b.app_named(app.clone());
        }
        if let Some(metric) = &job.metric {
            b = b.metric(metric.clone());
        }
        if let Some(workers) = job.workers {
            b = b.workers(workers);
        }
        b = b.backend(job.backend).routing(job.routing);
        if let Some(n) = job.runtime_params {
            b = b.runtime_params(n);
        }
        b.iterations = job.budget.iterations;
        b.time_budget_s = job.budget.time_seconds;
        for pin in &job.pinned {
            b = b.pin(pin.name.clone(), pin.value.clone());
        }
        b = b.focus(job.focus);
        if let Some(space) = job.param_space() {
            b = b.explicit_space(space);
        }
        if let Some(drift) = &job.drift {
            b = b.continuous(drift.clone());
        }
        Ok(b)
    }

    /// Resolves the target keyword against the registry, materializes the
    /// target and policy, and builds the platform session.
    pub fn build(self) -> Result<SpecializationSession, BuildError> {
        if self.iterations.is_none() && self.time_budget_s.is_none() {
            return Err(BuildError::MissingBudget);
        }
        let factory = self
            .registry
            .get(&self.target)
            .ok_or_else(|| BuildError::UnknownTarget {
                given: self.target.clone(),
                known: self.registry.keywords(),
            })?;
        let app = self
            .app
            .clone()
            .unwrap_or_else(|| factory.default_app().to_string());
        let TargetInstance { mut target, policy } = factory.instantiate(&TargetRequest {
            app: app.clone(),
            runtime_params: self.runtime_params,
        })?;

        // An explicit job-file space replaces the target's own. Its specs
        // are kept for the resolved-job manifest so a session store can
        // rebuild the exact same space on resume.
        let explicit_params: Vec<ParamDecl> = self
            .explicit_space
            .iter()
            .flat_map(|space| space.specs().iter().cloned())
            .map(|spec| ParamDecl { spec })
            .collect();
        if let Some(space) = self.explicit_space {
            target.install_space(space);
        }

        // Apply pins through the job-file machinery so value parsing is
        // uniform.
        if !self.pins.is_empty() {
            let job = Job {
                pinned: self
                    .pins
                    .iter()
                    .map(|(name, value)| wf_jobfile::Pin {
                        name: name.clone(),
                        value: value.clone(),
                    })
                    .collect(),
                ..Job::default()
            };
            job.apply_pins(target.space_mut())
                .map_err(|e| BuildError::BadPin {
                    message: e.to_string(),
                })?;
        }

        // §3.5 stage focus narrows the sampling policy.
        let policy = match (self.focus.stage(), policy) {
            (Some(stage), SamplePolicy::Uniform) => SamplePolicy::StageFocused(stage),
            (_, p) => p,
        };

        // A job-file metric resolves against the target's descriptor; the
        // typed `objective` applies otherwise. Unknown strings are
        // errors, never a silent fallback.
        let descriptor = target.descriptor().clone();
        let objective = match &self.job_metric {
            None => self.objective,
            Some(m) => match m.as_str() {
                "memory" => Objective::MemoryMb,
                "score" => Objective::ThroughputMemoryScore,
                m if m == descriptor.metric => Objective::Metric,
                _ => {
                    let mut valid =
                        vec![descriptor.metric.clone(), "memory".into(), "score".into()];
                    valid.dedup();
                    return Err(BuildError::UnknownMetric {
                        given: m.clone(),
                        valid,
                    });
                }
            },
        };

        let direction = match (objective, descriptor.direction) {
            (Objective::MemoryMb, _) => Direction::Minimize,
            (_, MetricDirection::HigherBetter) => Direction::Maximize,
            (_, MetricDirection::LowerBetter) => Direction::Minimize,
        };
        let mut spec = SessionSpec {
            objective,
            direction,
            policy,
            budget: Budget {
                iterations: self.iterations,
                time_seconds: self.time_budget_s,
            },
            repetitions: self.repetitions,
            seed: self.seed,
            workers: self.workers,
            backend: self.backend,
            routing: self.routing,
            remote: None,
        };

        // The fully resolved job this session will run — what a session
        // store writes as its manifest. `metric:` encodes the *objective*
        // exactly (omitted = the target's primary metric), so rebuilding
        // the session from the manifest reproduces this one bit for bit.
        // A transfer-learning warm start has no job-file form; its
        // manifest records a cold DeepTune, and a resume of such a store
        // fails the replay cross-check instead of silently diverging.
        let resolved = Job {
            name: self.name.clone(),
            os: self.target.clone(),
            app: Some(app),
            metric: match objective {
                Objective::Metric => None,
                Objective::MemoryMb => Some("memory".to_string()),
                Objective::ThroughputMemoryScore => Some("score".to_string()),
            },
            direction,
            focus: self.focus,
            algorithm: match &self.algorithm {
                AlgorithmChoice::Random => AlgorithmId::Random,
                AlgorithmChoice::Grid => AlgorithmId::Grid,
                AlgorithmChoice::Bayesian => AlgorithmId::Bayesian,
                AlgorithmChoice::Causal => AlgorithmId::Causal,
                AlgorithmChoice::DeepTune | AlgorithmChoice::DeepTuneTransfer(_) => {
                    AlgorithmId::DeepTune
                }
            },
            seed: self.seed,
            repetitions: self.repetitions,
            workers: Some(self.workers),
            backend: self.backend,
            routing: self.routing,
            runtime_params: Some(self.runtime_params),
            out: None,
            // A store's manifest never points back at a daemon root: the
            // store already lives wherever it was created.
            daemon: None,
            budget: spec.budget,
            mode: if self.drift.is_some() {
                Mode::Continuous
            } else {
                Mode::OneShot
            },
            drift: self.drift.clone(),
            pinned: self
                .pins
                .iter()
                .map(|(name, value)| wf_jobfile::Pin {
                    name: name.clone(),
                    value: value.clone(),
                })
                .collect(),
            params: explicit_params,
        };

        // Remote workers re-resolve the *resolved* job so every `wf-evald`
        // process materializes the exact target this session runs against.
        if self.backend == BackendChoice::Remote {
            spec.remote = Some(wf_platform::RemoteSpec {
                command: locate_evald(),
                args: vec!["--job-inline".to_string(), resolved.to_yaml()],
            });
        }

        let algorithm: Box<dyn SearchAlgorithm> = match self.algorithm {
            AlgorithmChoice::Random => Box::new(RandomSearch::new()),
            AlgorithmChoice::Grid => Box::new(GridSearch::new(8)),
            AlgorithmChoice::Bayesian => Box::new(BayesOpt::new()),
            AlgorithmChoice::Causal => Box::new(CausalSearch::new()),
            AlgorithmChoice::DeepTune => {
                let mut cfg = self.deeptune;
                cfg.seed ^= self.seed;
                Box::new(DeepTune::new(cfg))
            }
            AlgorithmChoice::DeepTuneTransfer(ckpt) => {
                let mut cfg = self.deeptune;
                cfg.seed ^= self.seed;
                Box::new(DeepTune::with_checkpoint(cfg, ckpt))
            }
        };
        let mut inner = Session::try_with_target(target, algorithm, spec)
            .map_err(|message| BuildError::Backend { message })?;

        // Continuous mode needs the simulated drift model behind the
        // target: the schedule is derived from the target's own SimOs +
        // App pair so its phases move the very optima the search chases.
        if let Some(drift) = &self.drift {
            let schedule = {
                let sim = inner
                    .target()
                    .as_any()
                    .downcast_ref::<wf_platform::SimTarget>()
                    .ok_or_else(|| BuildError::ContinuousUnsupported {
                        target: self.target.clone(),
                    })?;
                let kind = DriftScenario::parse(drift.scenario.keyword())
                    .expect("jobfile scenario keywords mirror wf-ossim's");
                DriftSchedule::scenario(kind, sim.os(), sim.app(), drift.shift_at_s)
            };
            let detector: Box<dyn DriftDetector> = match drift.detector {
                DetectorId::MeanShift => Box::new(MeanShift::new(drift.window, drift.threshold)),
                // window → warm-up; a quarter of the confirmation
                // threshold absorbs per-sample noise before mass accrues.
                DetectorId::PageHinkley => Box::new(PageHinkley::new(
                    drift.window,
                    drift.threshold * 0.25,
                    drift.threshold,
                )),
            };
            inner.enable_drift(DriftConfig {
                schedule,
                detector,
                min_epoch: drift.min_epoch,
                transfer: drift.transfer,
            });
        }

        Ok(SpecializationSession { inner, resolved })
    }

    /// Rebuilds a session from a store directory and replays its history,
    /// continuing exactly where the interrupted campaign stopped: the
    /// per-candidate RNG streams derive from `(seed, iteration)`, so
    /// *interrupted-then-resumed ≡ uninterrupted* holds for every
    /// registered target and algorithm (the end-to-end tests assert it).
    /// Uses the builtin registry; see [`SessionBuilder::resume_with`] for
    /// downstream targets.
    pub fn resume(dir: impl AsRef<Path>) -> Result<SpecializationSession, ResumeError> {
        SessionBuilder::resume_with(dir, TargetRegistry::builtin())
    }

    /// [`SessionBuilder::resume`] against a caller-provided registry
    /// (required when the stored job targets a downstream scenario).
    pub fn resume_with(
        dir: impl AsRef<Path>,
        registry: TargetRegistry,
    ) -> Result<SpecializationSession, ResumeError> {
        let store = SessionStore::open(dir)?;
        let loaded = store.load()?;
        let mut session = SessionBuilder::from_job(&loaded.job)?
            .registry(registry)
            .build()?;
        session.replay(&loaded)?;
        Ok(session)
    }
}

/// Why a session could not be resumed from a store directory.
#[derive(Debug)]
pub enum ResumeError {
    /// The store could not be opened or read.
    Store(StoreError),
    /// The manifest job does not build against the registry.
    Build(BuildError),
    /// The stored history does not replay into the rebuilt session.
    Replay(ReplayError),
}

impl fmt::Display for ResumeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResumeError::Store(e) => write!(f, "store: {e}"),
            ResumeError::Build(e) => write!(f, "manifest does not build: {e}"),
            ResumeError::Replay(e) => write!(f, "history does not replay: {e}"),
        }
    }
}

impl std::error::Error for ResumeError {}

impl From<StoreError> for ResumeError {
    fn from(e: StoreError) -> Self {
        ResumeError::Store(e)
    }
}

impl From<BuildError> for ResumeError {
    fn from(e: BuildError) -> Self {
        ResumeError::Build(e)
    }
}

impl From<ReplayError> for ResumeError {
    fn from(e: ReplayError) -> Self {
        ResumeError::Replay(e)
    }
}

/// The outcome of a completed session.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// The best configuration with its objective value, if any run
    /// succeeded.
    pub best: Option<(wf_configspace::Configuration, f64)>,
    /// Full summary statistics.
    pub summary: SessionSummary,
}

/// A running specialization session (facade over the platform session).
pub struct SpecializationSession {
    inner: Session,
    /// The fully resolved job (what a session-store manifest records).
    resolved: Job,
}

impl fmt::Debug for SpecializationSession {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpecializationSession")
            .field("target", self.inner.descriptor())
            .field("iterations", &self.inner.history().len())
            .finish_non_exhaustive()
    }
}

impl SpecializationSession {
    /// Runs to budget exhaustion.
    pub fn run(&mut self) -> Outcome {
        self.run_with(&mut NullSink)
    }

    /// Runs to budget exhaustion, streaming every [`SessionEvent`]
    /// through `sink` as it happens — `SessionStarted`, per-wave
    /// dispatch/candidate/new-best/completion events, `SessionFinished`.
    /// Outcomes are byte-for-byte those of [`SpecializationSession::run`]
    /// (which is exactly `run_with(&mut NullSink)`): sinks observe, never
    /// steer.
    pub fn run_with(&mut self, sink: &mut dyn EventSink) -> Outcome {
        let summary = self.inner.run_with(sink);
        Outcome {
            best: summary.best_config.clone().zip(summary.best_objective),
            summary,
        }
    }

    /// Like [`SpecializationSession::run_with`], but checks `should_stop`
    /// at every wave boundary and returns early when it answers `true`.
    /// The second element reports whether the budget ran to exhaustion;
    /// on an early stop no `SessionFinished` event is emitted, so a store
    /// fed from the sink remains resumable with zero lost waves.
    pub fn run_with_until(
        &mut self,
        sink: &mut dyn EventSink,
        should_stop: &mut dyn FnMut() -> bool,
    ) -> (Outcome, bool) {
        let (summary, completed) = self.inner.run_with_until(sink, should_stop);
        (
            Outcome {
                best: summary.best_config.clone().zip(summary.best_objective),
                summary,
            },
            completed,
        )
    }

    /// Iterator-style driver: each `next()` returns the next
    /// [`SessionEvent`], running one wave whenever its buffer drains, so
    /// callers observe progress without polling or callbacks. The stream
    /// ends after `SessionFinished`.
    ///
    /// ```
    /// use wayfinder_core::prelude::*;
    /// use wf_platform::SessionEvent;
    ///
    /// let mut session = SessionBuilder::new()
    ///     .algorithm(AlgorithmChoice::Random)
    ///     .runtime_params(56)
    ///     .iterations(4)
    ///     .build()
    ///     .unwrap();
    /// let evaluated = session
    ///     .drive()
    ///     .filter(|e| matches!(e, SessionEvent::CandidateEvaluated(_)))
    ///     .count();
    /// assert_eq!(evaluated, 4);
    /// assert!(session.done());
    /// ```
    pub fn drive(&mut self) -> Drive<'_> {
        Drive {
            session: self,
            queue: VecDeque::new(),
            state: DriveState::Fresh,
        }
    }

    /// Runs one iteration.
    pub fn step(&mut self) -> &Record {
        self.inner.step()
    }

    /// The fully resolved job this session runs: target keyword, app,
    /// metric, algorithm, seed, workers, budgets. This is what
    /// [`wf_platform::SessionStore::create`] should receive as the
    /// manifest.
    pub fn resolved_job(&self) -> &Job {
        &self.resolved
    }

    /// Replays a loaded store into this freshly built session (see
    /// [`wf_platform::Session::replay`] for the exact guarantee). Callers
    /// normally use [`SessionBuilder::resume`], which wraps open → load →
    /// build → replay.
    pub fn replay(&mut self, stored: &StoredSession) -> Result<(), ReplayError> {
        self.inner.replay(&stored.records, &stored.wave_sizes)
    }

    /// Whether the budget is exhausted.
    pub fn done(&self) -> bool {
        self.inner.done()
    }

    /// The underlying platform session.
    pub fn platform(&self) -> &Session {
        &self.inner
    }

    /// Mutable access to the underlying platform session.
    pub fn platform_mut(&mut self) -> &mut Session {
        &mut self.inner
    }

    /// Extracts a transfer-learning checkpoint if the algorithm is a
    /// trained DeepTune (§3.3) — the warm start
    /// [`AlgorithmChoice::DeepTuneTransfer`] consumes. Unrelated to the
    /// on-disk session-store checkpoints
    /// ([`wf_platform::SessionEvent::CheckpointWritten`]).
    pub fn transfer_checkpoint(&mut self) -> Option<Checkpoint> {
        self.inner
            .algorithm_mut()
            .as_any_mut()?
            .downcast_mut::<DeepTune>()?
            .checkpoint()
    }

    /// Queries the trained model for high-impact parameters (§4.1).
    pub fn parameter_impacts(&mut self) -> Option<Vec<wf_deeptune::ParamImpact>> {
        let space = self.inner.space().clone();
        let encoder = wf_configspace::Encoder::new(&space);
        // Anchor the axis probes on the default configuration plus the
        // best configurations the session actually evaluated: the model is
        // only trustworthy near its training distribution, and averaging
        // over several anchors de-noises the single-axis deltas.
        let direction = self.inner.direction();
        let mut evaluated: Vec<(f64, wf_configspace::Configuration)> = self
            .inner
            .history()
            .observations()
            .iter()
            .filter_map(|o| o.value.map(|v| (v, o.config.clone())))
            .collect();
        evaluated.sort_by(|a, b| match direction {
            wf_jobfile::Direction::Maximize => b.0.partial_cmp(&a.0).unwrap(),
            wf_jobfile::Direction::Minimize => a.0.partial_cmp(&b.0).unwrap(),
        });
        let mut anchors = vec![space.default_config()];
        anchors.extend(evaluated.into_iter().take(8).map(|(_, c)| c));
        let dt = self
            .inner
            .algorithm_mut()
            .as_any_mut()?
            .downcast_mut::<DeepTune>()?;
        wf_deeptune::parameter_impacts_at(dt, &space, &encoder, &anchors)
    }
}

enum DriveState {
    Fresh,
    Running,
    Finished,
}

/// The iterator behind [`SpecializationSession::drive`].
///
/// Buffers one wave's events at a time; dropping it mid-stream simply
/// stops after the last completed wave (the session stays valid and can
/// be driven again or `run()` to completion).
pub struct Drive<'a> {
    session: &'a mut SpecializationSession,
    queue: VecDeque<SessionEvent>,
    state: DriveState,
}

impl Iterator for Drive<'_> {
    type Item = SessionEvent;

    fn next(&mut self) -> Option<SessionEvent> {
        loop {
            if let Some(event) = self.queue.pop_front() {
                return Some(event);
            }
            match self.state {
                DriveState::Finished => return None,
                DriveState::Fresh => {
                    self.queue.push_back(self.session.inner.start_event());
                    // A fresh continuous session opens epoch 0 explicitly,
                    // mirroring `run_with`; a resumed one replays past the
                    // stored epoch events instead.
                    if self.session.inner.history().is_empty() {
                        if let Some(event) = self.session.inner.epoch_zero_event() {
                            self.queue.push_back(event);
                        }
                    }
                    self.state = DriveState::Running;
                }
                DriveState::Running => {
                    if self.session.inner.done() {
                        self.queue
                            .push_back(SessionEvent::SessionFinished(self.session.inner.summary()));
                        self.state = DriveState::Finished;
                    } else {
                        let mut sink = RecordingSink::new();
                        self.session.inner.step_wave_with(&mut sink);
                        self.queue.extend(sink.events);
                    }
                }
            }
        }
    }
}

/// Re-exported focus type for job parity.
pub type JobFocus = Focus;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_runs_a_tiny_deeptune_session() {
        let mut s = SessionBuilder::new()
            .os(OsFlavor::Linux419)
            .app(AppId::Nginx)
            .algorithm(AlgorithmChoice::DeepTune)
            .runtime_params(64)
            .iterations(8)
            .seed(7)
            .build()
            .expect("valid session");
        let outcome = s.run();
        assert_eq!(outcome.summary.iterations, 8);
        assert!(outcome.best.is_some());
    }

    #[test]
    fn builder_rejects_missing_budget() {
        let mut b = SessionBuilder::new();
        b.iterations = None;
        b.time_budget_s = None;
        assert!(b.build().is_err());
    }

    #[test]
    fn unikraft_requires_nginx() {
        let err = match SessionBuilder::new()
            .os(OsFlavor::Unikraft)
            .app(AppId::Redis)
            .iterations(1)
            .build()
        {
            Err(e) => e,
            Ok(_) => panic!("unikraft+redis must be rejected"),
        };
        assert!(
            matches!(&err, BuildError::IncompatibleApp { target, app, .. }
                if target == "unikraft" && app == "redis"),
            "{err}"
        );
        assert!(err.to_string().contains("Nginx"));
    }

    #[test]
    fn pins_are_applied_to_the_space() {
        let s = SessionBuilder::new()
            .os(OsFlavor::Linux419)
            .runtime_params(64)
            .iterations(1)
            .pin("kernel.randomize_va_space", "2")
            .build()
            .expect("valid session");
        let space = s.platform().space();
        let idx = space.index_of("kernel.randomize_va_space").unwrap();
        assert!(space.spec(idx).fixed);
    }

    #[test]
    fn bad_pin_is_a_build_error() {
        let err = match SessionBuilder::new()
            .runtime_params(64)
            .iterations(1)
            .pin("kernel.nope", "1")
            .build()
        {
            Err(e) => e,
            Ok(_) => panic!("unknown pin must be rejected"),
        };
        assert!(matches!(err, BuildError::BadPin { .. }), "{err}");
        assert!(err.to_string().contains("unknown parameter"));
    }

    #[test]
    fn unknown_target_is_rejected_with_known_keywords() {
        let err = SessionBuilder::new()
            .target("plan9")
            .iterations(1)
            .build()
            .unwrap_err();
        match &err {
            BuildError::UnknownTarget { given, known } => {
                assert_eq!(given, "plan9");
                assert!(known.contains(&"linux-4.19".to_string()));
                assert!(known.contains(&"unikraft".to_string()));
            }
            other => panic!("expected UnknownTarget, got {other:?}"),
        }
    }

    #[test]
    fn unknown_metric_is_rejected_with_valid_values() {
        // Regression: unknown `metric:` strings used to coerce silently
        // to Objective::Metric.
        let job = Job::parse(
            "name: m\nos: linux-4.19\napp: nginx\nmetric: throughputt\nalgorithm: random\nbudget:\n  iterations: 2\n",
        )
        .unwrap();
        let err = SessionBuilder::from_job(&job)
            .unwrap()
            .runtime_params(56)
            .build()
            .unwrap_err();
        match &err {
            BuildError::UnknownMetric { given, valid } => {
                assert_eq!(given, "throughputt");
                assert_eq!(
                    valid,
                    &["throughput".to_string(), "memory".into(), "score".into()]
                );
            }
            other => panic!("expected UnknownMetric, got {other:?}"),
        }
    }

    #[test]
    fn explicit_objective_overrides_the_job_metric() {
        // Whichever of `.metric()` / `.objective()` was called last wins,
        // so code tweaking a parsed job keeps its pre-registry behavior.
        let job = Job::parse(
            "name: o\nos: linux-4.19\napp: nginx\nmetric: throughput\nalgorithm: random\nbudget:\n  iterations: 3\n",
        )
        .unwrap();
        let mut s = SessionBuilder::from_job(&job)
            .unwrap()
            .objective(Objective::MemoryMb)
            .runtime_params(56)
            .build()
            .unwrap();
        let outcome = s.run();
        // Memory objectives minimize; the best objective is a memory
        // figure in MB, not a throughput in the tens of thousands.
        assert_eq!(
            s.platform().direction(),
            wf_jobfile::Direction::Minimize,
            "objective override must flip the direction"
        );
        assert!(outcome.summary.best_objective.unwrap() < 5_000.0);
    }

    #[test]
    fn minimal_job_files_use_the_targets_defaults() {
        // Regression: omitted `app:`/`metric:` keys must mean "the
        // target's defaults", not the generic nginx/throughput pair —
        // this jobfile worked before the registry and must keep working.
        let job = Job::parse("name: fp\nos: linux-riscv\nbudget:\n  iterations: 2\n").unwrap();
        let mut s = SessionBuilder::from_job(&job).unwrap().build().unwrap();
        assert_eq!(s.platform().descriptor().app, "boot-probe");
        let outcome = s.run();
        assert_eq!(outcome.summary.iterations, 2);
    }

    #[test]
    fn footprint_sessions_run_under_the_probe_identity() {
        // Regression: the synthetic boot probe used to masquerade as
        // AppId::Nginx, mislabeling footprint reports and histories.
        let s = SessionBuilder::new()
            .os(OsFlavor::LinuxRiscv)
            .objective(Objective::MemoryMb)
            .iterations(1)
            .build()
            .unwrap();
        let descriptor = s.platform().descriptor();
        assert_eq!(descriptor.app, "boot-probe");
        assert_eq!(descriptor.metric, "memory");
        assert_eq!(descriptor.unit, "MB");
        let sim = s
            .platform()
            .target()
            .as_any()
            .downcast_ref::<wf_platform::SimTarget>()
            .expect("built-in targets are SimTargets");
        assert_eq!(sim.app().id, AppId::BootProbe);
    }

    #[test]
    fn registry_keyword_builds_like_the_flavor() {
        let via_flavor = SessionBuilder::new()
            .os(OsFlavor::Linux60)
            .algorithm(AlgorithmChoice::Random)
            .runtime_params(56)
            .iterations(4)
            .seed(5)
            .build()
            .unwrap();
        let via_keyword = SessionBuilder::new()
            .target("linux-6.0")
            .algorithm(AlgorithmChoice::Random)
            .runtime_params(56)
            .iterations(4)
            .seed(5)
            .build()
            .unwrap();
        assert_eq!(
            via_flavor.platform().descriptor(),
            via_keyword.platform().descriptor()
        );
    }

    #[test]
    fn checkpoint_extraction_works_after_training() {
        let mut s = SessionBuilder::new()
            .os(OsFlavor::Linux419)
            .app(AppId::Redis)
            .runtime_params(56)
            .iterations(6)
            .seed(3)
            .build()
            .unwrap();
        let _ = s.run();
        assert!(s.transfer_checkpoint().is_some());
        // Random search has no checkpoint.
        let mut r = SessionBuilder::new()
            .algorithm(AlgorithmChoice::Random)
            .runtime_params(56)
            .iterations(2)
            .build()
            .unwrap();
        let _ = r.run();
        assert!(r.transfer_checkpoint().is_none());
    }

    #[test]
    fn all_stages_target_searches_boot_parameters() {
        use wf_configspace::Stage;
        let mut s = SessionBuilder::new()
            .os(OsFlavor::Linux419AllStages)
            .app(AppId::Nginx)
            .algorithm(AlgorithmChoice::Random)
            .runtime_params(56)
            .iterations(6)
            .seed(77)
            .build()
            .unwrap();
        let space = s.platform().space().clone();
        assert!(space.census().boot > 0, "boot stage present");
        let _ = s.run();
        // Some explored configuration varied a boot-time parameter.
        let default = space.default_config();
        let boot_idx = space.stage_indices(Stage::BootTime);
        let varied = s
            .platform()
            .history()
            .records()
            .iter()
            .any(|r| boot_idx.iter().any(|&i| r.config.get(i) != default.get(i)));
        assert!(varied, "boot parameters never varied");
    }

    #[test]
    fn focus_restricts_the_varied_stage() {
        use wf_configspace::Stage;
        let mut s = SessionBuilder::new()
            .os(OsFlavor::Linux419AllStages)
            .app(AppId::Nginx)
            .algorithm(AlgorithmChoice::Random)
            .focus(Focus::Runtime)
            .runtime_params(56)
            .iterations(6)
            .seed(78)
            .build()
            .unwrap();
        let space = s.platform().space().clone();
        let _ = s.run();
        let default = space.default_config();
        let boot_idx = space.stage_indices(Stage::BootTime);
        for r in s.platform().history().records() {
            for &i in &boot_idx {
                assert_eq!(
                    r.config.get(i),
                    default.get(i),
                    "boot param varied under runtime focus"
                );
            }
        }
    }

    #[test]
    fn explicit_job_space_restricts_exploration() {
        let job = Job::parse(
            "name: subset\nos: linux-4.19\napp: nginx\nmetric: throughput\nalgorithm: random\nseed: 6\nbudget:\n  iterations: 8\nparams:\n  - name: net.core.somaxconn\n    type: int\n    min: 16\n    max: 65535\n    log: true\n    default: 128\n  - name: custom.inert_knob\n    type: int\n    min: 0\n    max: 10\n    default: 5\n",
        )
        .unwrap();
        let mut s = SessionBuilder::from_job(&job).unwrap().build().unwrap();
        assert_eq!(s.platform().space().len(), 2, "only the declared params");
        let outcome = s.run();
        assert_eq!(outcome.summary.iterations, 8);
        // The known parameter drives real effects; the unknown one is
        // explored but inert — both are legal.
        assert!(outcome.summary.best_metric.unwrap() > 10_000.0);
    }

    #[test]
    fn resolved_job_round_trips_through_from_job() {
        // The manifest contract: rebuilding a session from its resolved
        // job must reproduce the same resolved job (fixed point), for
        // every objective.
        for objective in [
            Objective::Metric,
            Objective::MemoryMb,
            Objective::ThroughputMemoryScore,
        ] {
            let s = SessionBuilder::new()
                .name("fixpoint")
                .os(OsFlavor::Linux419)
                .algorithm(AlgorithmChoice::Causal)
                .objective(objective)
                .runtime_params(56)
                .iterations(4)
                .seed(21)
                .workers(2)
                .build()
                .unwrap();
            let resolved = s.resolved_job().clone();
            let rebuilt = SessionBuilder::from_job(&resolved)
                .unwrap()
                .build()
                .unwrap();
            assert_eq!(rebuilt.resolved_job(), &resolved, "{objective:?}");
            assert_eq!(resolved.algorithm, AlgorithmId::Causal);
            assert_eq!(resolved.runtime_params, Some(56));
        }
    }

    #[test]
    fn resume_continues_an_interrupted_store() {
        let dir = std::env::temp_dir().join(format!("wf-core-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let build = || {
            SessionBuilder::new()
                .name("resume")
                .os(OsFlavor::Linux419)
                .algorithm(AlgorithmChoice::Bayesian)
                .runtime_params(56)
                .iterations(8)
                .seed(13)
                .workers(2)
                .build()
                .unwrap()
        };
        let mut full = build();
        let full_outcome = full.run();

        let mut interrupted = build();
        let store = SessionStore::create(&dir, interrupted.resolved_job()).unwrap();
        {
            let mut sink = store.sink().unwrap();
            for _ in 0..2 {
                interrupted.platform_mut().step_wave_with(&mut sink);
            }
        }
        drop(interrupted); // the crash

        let mut resumed = SessionBuilder::resume(&dir).unwrap();
        assert_eq!(resumed.platform().history().len(), 4, "replayed 2 waves");
        let outcome = {
            let mut sink = store.sink().unwrap();
            resumed.run_with(&mut sink)
        };
        assert_eq!(outcome.summary.iterations, 8);
        assert_eq!(
            outcome.best.as_ref().map(|(c, _)| c.fingerprint()),
            full_outcome.best.as_ref().map(|(c, _)| c.fingerprint()),
        );
        assert_eq!(
            outcome.summary.compute_s.to_bits(),
            full_outcome.summary.compute_s.to_bits()
        );
        for (a, b) in full
            .platform()
            .history()
            .records()
            .iter()
            .zip(resumed.platform().history().records())
        {
            assert_eq!(a.config, b.config);
            assert_eq!(a.metric.map(f64::to_bits), b.metric.map(f64::to_bits));
            assert_eq!(a.duration_s.to_bits(), b.duration_s.to_bits());
        }
        // The store now holds the full campaign.
        let loaded = SessionStore::open(&dir).unwrap().load().unwrap();
        assert_eq!(loaded.records.len(), 8);
        assert!(loaded.finished);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_rejects_a_tampered_manifest() {
        let dir = std::env::temp_dir().join(format!("wf-core-tamper-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut s = SessionBuilder::new()
            .algorithm(AlgorithmChoice::Random)
            .runtime_params(56)
            .iterations(4)
            .seed(3)
            .workers(1)
            .build()
            .unwrap();
        let store = SessionStore::create(&dir, s.resolved_job()).unwrap();
        {
            let mut sink = store.sink().unwrap();
            let _ = s.run_with(&mut sink);
        }
        // Change the seed: the replayed proposals no longer match.
        let mut job = store.manifest().unwrap();
        job.seed = 4;
        store.rewrite_manifest(&job).unwrap();
        match SessionBuilder::resume(&dir) {
            Err(ResumeError::Replay(wf_platform::ReplayError::ConfigMismatch { iteration: 0 })) => {
            }
            other => panic!("expected a config mismatch, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn drive_streams_the_event_stream_lazily() {
        let mut s = SessionBuilder::new()
            .algorithm(AlgorithmChoice::Random)
            .runtime_params(56)
            .iterations(6)
            .seed(5)
            .workers(2)
            .build()
            .unwrap();
        let mut kinds = Vec::new();
        for event in s.drive() {
            kinds.push(match event {
                SessionEvent::SessionStarted { .. } => "started",
                SessionEvent::WaveDispatched { .. } => "dispatched",
                SessionEvent::CandidateEvaluated(_) => "candidate",
                SessionEvent::NewBest { .. } => "best",
                SessionEvent::DriftDetected { .. } => "drift",
                SessionEvent::EpochStarted { .. } => "epoch",
                SessionEvent::WaveCompleted(_) => "wave",
                SessionEvent::CheckpointWritten { .. } => "checkpoint",
                SessionEvent::SessionFinished(_) => "finished",
            });
        }
        assert_eq!(kinds.first(), Some(&"started"));
        assert_eq!(kinds.last(), Some(&"finished"));
        assert_eq!(kinds.iter().filter(|k| **k == "candidate").count(), 6);
        assert_eq!(kinds.iter().filter(|k| **k == "wave").count(), 3);
        assert!(s.done());
        // Driving matches running: same outcome as a blind twin.
        let mut twin = SessionBuilder::new()
            .algorithm(AlgorithmChoice::Random)
            .runtime_params(56)
            .iterations(6)
            .seed(5)
            .workers(2)
            .build()
            .unwrap();
        let outcome = twin.run();
        assert_eq!(
            s.platform().summary().best_metric,
            outcome.summary.best_metric
        );
    }

    fn continuous_job_text(seed: u64) -> String {
        format!(
            "name: drifted\nos: linux-4.19\napp: nginx\nalgorithm: random\nseed: {seed}\nworkers: 2\nruntime_params: 56\nbudget:\n  iterations: 60\nmode: continuous\ndrift:\n  scenario: step\n  detector: mean-shift\n  shift_at_s: 900\n  window: 6\n  threshold: 0.15\n  min_epoch: 8\n  transfer: false\n"
        )
    }

    #[test]
    fn continuous_session_builds_from_a_job_and_reopens_epochs() {
        let job = Job::parse(&continuous_job_text(11)).unwrap();
        let mut s = SessionBuilder::from_job(&job).unwrap().build().unwrap();
        assert!(s.platform().drift_enabled());
        let outcome = s.run();
        assert_eq!(outcome.summary.iterations, 60);
        assert!(
            s.platform().epoch() > 0,
            "the step shift at 900 virtual seconds must close epoch 0"
        );
        // The manifest fixed point holds for continuous jobs too.
        let resolved = s.resolved_job().clone();
        assert_eq!(resolved.mode, Mode::Continuous);
        assert!(resolved.drift.is_some());
        let rebuilt = SessionBuilder::from_job(&resolved)
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(rebuilt.resolved_job(), &resolved);
    }

    #[test]
    fn continuous_resume_continues_across_epoch_boundaries() {
        let dir = std::env::temp_dir().join(format!("wf-core-drift-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let job = Job::parse(&continuous_job_text(29)).unwrap();

        let mut full = SessionBuilder::from_job(&job).unwrap().build().unwrap();
        let full_outcome = full.run();
        assert!(full.platform().epoch() > 0, "need a boundary to cross");

        let mut interrupted = SessionBuilder::from_job(&job).unwrap().build().unwrap();
        let store = SessionStore::create(&dir, interrupted.resolved_job()).unwrap();
        {
            let mut sink = store.sink().unwrap();
            // Interrupt only after an epoch boundary passed, so the
            // resume genuinely replays across it.
            let mut stop = {
                let mut waves = 0;
                move || {
                    waves += 1;
                    waves > 18
                }
            };
            let _ = interrupted.run_with_until(&mut sink, &mut stop);
        }
        assert!(
            interrupted.platform().epoch() > 0,
            "interruption must land after the first boundary"
        );
        drop(interrupted);

        let mut resumed = SessionBuilder::resume(&dir).unwrap();
        assert!(resumed.platform().drift_enabled());
        let outcome = {
            let mut sink = store.sink().unwrap();
            resumed.run_with(&mut sink)
        };
        assert_eq!(outcome.summary.iterations, 60);
        assert_eq!(resumed.platform().epoch(), full.platform().epoch());
        for (a, b) in full
            .platform()
            .history()
            .records()
            .iter()
            .zip(resumed.platform().history().records())
        {
            assert_eq!(a.config, b.config);
            assert_eq!(a.metric.map(f64::to_bits), b.metric.map(f64::to_bits));
        }
        assert_eq!(
            outcome.summary.best_objective.map(f64::to_bits),
            full_outcome.summary.best_objective.map(f64::to_bits)
        );
        // The store holds the epoch trail.
        let loaded = SessionStore::open(&dir).unwrap().load().unwrap();
        assert!(!loaded.epochs.is_empty());
        assert!(!loaded.drift_events.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn from_job_round_trip() {
        let job = Job::parse(
            "name: x\nos: linux-4.19\napp: redis\nmetric: throughput\nalgorithm: random\nseed: 9\nbudget:\n  iterations: 3\n",
        )
        .unwrap();
        let mut s = SessionBuilder::from_job(&job)
            .unwrap()
            .runtime_params(56)
            .build()
            .unwrap();
        let outcome = s.run();
        assert_eq!(outcome.summary.iterations, 3);
    }
}
