//! Plain-text table and series rendering for the experiment binaries.
//!
//! Every `cargo bench` regeneration target prints the same rows/series the
//! paper's tables and figures report; these helpers keep that output
//! uniform and diff-friendly.

use wf_configspace::ConfigSpace;
use wf_platform::{Series, StoredSession, WaveStats};

/// A fixed-width text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Convenience: appends a row of displayable cells.
    pub fn rowd(&mut self, cells: &[&dyn std::fmt::Display]) {
        self.row(&cells.iter().map(|c| c.to_string()).collect::<Vec<_>>());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths.iter())
                .map(|(cell, w)| format!("{cell:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Renders a series as `t<TAB>y` lines with a labelled header, the format
/// the plotting scripts of artifact repositories typically consume.
pub fn render_series(label: &str, series: &Series) -> String {
    let mut out = format!("# series: {label} ({} points)\n", series.len());
    for (t, y) in series.t.iter().zip(series.y.iter()) {
        out.push_str(&format!("{t:.1}\t{y:.4}\n"));
    }
    out
}

/// Renders several series side by side at shared time points.
///
/// # Panics
///
/// Panics if the series have different lengths.
pub fn render_multi_series(labels: &[&str], series: &[Series]) -> String {
    assert_eq!(labels.len(), series.len());
    let n = series.first().map(Series::len).unwrap_or(0);
    for s in series {
        assert_eq!(s.len(), n, "series must be resampled to a shared axis");
    }
    let mut out = format!("# t\t{}\n", labels.join("\t"));
    for i in 0..n {
        out.push_str(&format!("{:.1}", series[0].t[i]));
        for s in series {
            out.push_str(&format!("\t{:.4}", s.y[i]));
        }
        out.push('\n');
    }
    out
}

/// Renders the full report of a loaded session store — entirely offline:
/// every line derives from the manifest and the persisted event log, so
/// `wfctl report DIR` re-evaluates nothing. `space` (when the caller can
/// rebuild it from the manifest) names the best configuration's
/// non-default parameters; without it the diff is printed positionally.
pub fn store_report(stored: &StoredSession, space: Option<&ConfigSpace>) -> String {
    let job = &stored.job;
    let mut out = String::new();
    out.push_str(&format!(
        "session {:?}: {} on {}\n",
        job.name,
        job.app.as_deref().unwrap_or("(default app)"),
        job.os,
    ));
    out.push_str(&format!(
        "algorithm {}, seed {}, {} worker(s), {} repetition(s)\n",
        job.algorithm.keyword(),
        job.seed,
        job.workers.unwrap_or(1),
        job.repetitions,
    ));
    out.push_str(&format!(
        "budget: {} iteration(s) / {} virtual second(s)\n",
        job.budget
            .iterations
            .map_or("unbounded".to_string(), |n| n.to_string()),
        job.budget
            .time_seconds
            .map_or("unbounded".to_string(), |s| format!("{s:.0}")),
    ));
    out.push_str(&format!(
        "status: {}, {} evaluation(s) in {} wave(s), {} checkpoint(s), {} dropped record(s)\n",
        if stored.finished {
            "finished"
        } else {
            "interrupted"
        },
        stored.records.len(),
        stored.wave_sizes.len(),
        stored.checkpoints,
        stored.dropped_records,
    ));

    let history = stored.history();
    if history.is_empty() {
        out.push_str("no evaluations recorded\n");
        return out;
    }
    let elapsed_s = history
        .records()
        .last()
        .map(|r| r.finished_at_s)
        .unwrap_or(0.0);
    let compute_s: f64 = history.records().iter().map(|r| r.duration_s).sum();
    out.push_str(&format!(
        "clock: {:.2} virtual hours wall, {:.2} VM-hours compute, crash rate {:.0}%\n",
        elapsed_s / 3600.0,
        compute_s / 3600.0,
        history.crash_rate() * 100.0,
    ));

    let direction = job.direction;
    match history.best(direction) {
        None => out.push_str("best: none (every configuration crashed)\n"),
        Some(best) => {
            out.push_str(&format!(
                "best {}: {:.2} at iteration {} ({})\n",
                job.metric.as_deref().unwrap_or("objective"),
                best.objective.unwrap_or(f64::NAN),
                best.iteration,
                direction.keyword(),
            ));
            if let Some(interval) = history.mean_improvement_interval_s(direction) {
                out.push_str(&format!(
                    "mean improvement interval: {interval:.0} virtual s\n"
                ));
            }
            if !stored.new_bests.is_empty() {
                out.push_str("improvements:\n");
                for (iteration, objective) in &stored.new_bests {
                    out.push_str(&format!("  iteration {iteration:>4}: {objective:.2}\n"));
                }
            }
            match space {
                Some(space) if space.len() == best.config.len() => {
                    let default = space.default_config();
                    let diff = best.config.diff_indices(&default);
                    if diff.is_empty() {
                        out.push_str("best configuration: the default\n");
                    } else {
                        out.push_str("non-default parameters of the best configuration:\n");
                        for idx in diff {
                            out.push_str(&format!(
                                "  {} = {}\n",
                                space.spec(idx).name,
                                best.config.get(idx)
                            ));
                        }
                    }
                }
                _ => out.push_str(&format!(
                    "best configuration: {} parameter(s) (space unavailable for naming)\n",
                    best.config.len()
                )),
            }
        }
    }
    if !stored.epochs.is_empty() {
        out.push_str(&format!(
            "adaptation trajectory: {} epoch(s), {} confirmed drift(s)\n",
            stored.epochs.len(),
            stored.drift_events.len(),
        ));
        out.push_str(&trajectory_table(stored).render());
    }
    if job.workers.unwrap_or(1) > 1 && !stored.wave_stats.is_empty() {
        out.push_str(&wave_stats_table(&stored.wave_stats, job.workers.unwrap_or(1)).render());
    }
    out
}

/// Renders a continuous session's adaptation trajectory as a [`Table`]:
/// one row per epoch with the workload phase it opened under, its
/// evaluation span, the best objective reached inside it, the stored
/// analytic oracle bound for that phase, and the relative regret against
/// it. Entirely offline — every cell derives from the persisted
/// `epoch_started` records and the evaluation history.
pub fn trajectory_table(stored: &StoredSession) -> Table {
    let mut t = Table::new(&[
        "Epoch", "Phase", "From", "Evals", "Best", "Oracle", "Regret %", "Seeded",
    ]);
    let records = &stored.records;
    let direction = stored.job.direction;
    for (i, e) in stored.epochs.iter().enumerate() {
        let start = e.first_iteration.min(records.len());
        let end = stored.epochs.get(i + 1).map_or(records.len(), |next| {
            next.first_iteration.min(records.len())
        });
        let slice = &records[start..end];
        let best = slice.iter().filter_map(|r| r.objective).reduce(|b, v| {
            if direction.better(v, b) {
                v
            } else {
                b
            }
        });
        let regret = best.map(|b| {
            let scale = e.oracle_metric.abs().max(f64::MIN_POSITIVE);
            match direction {
                wf_jobfile::Direction::Maximize => (e.oracle_metric - b) / scale * 100.0,
                wf_jobfile::Direction::Minimize => (b - e.oracle_metric) / scale * 100.0,
            }
        });
        t.row(&[
            e.epoch.to_string(),
            e.phase.clone(),
            e.first_iteration.to_string(),
            slice.len().to_string(),
            best.map_or("-".into(), |b| format!("{b:.2}")),
            format!("{:.2}", e.oracle_metric),
            regret.map_or("-".into(), |r| format!("{r:.1}")),
            if e.transfer { "transfer" } else { "cold" }.to_string(),
        ]);
    }
    t
}

/// Renders a session's per-wave scheduling metrics as a [`Table`]:
/// wave index, size, wall/busy virtual seconds, pool occupancy, and the
/// image-cache hit rate.
pub fn wave_stats_table(waves: &[WaveStats], workers: usize) -> Table {
    let mut t = Table::new(&["Wave", "Size", "Wall s", "Busy s", "Occ %", "Cache %"]);
    for w in waves {
        t.row(&[
            w.wave.to_string(),
            w.size.to_string(),
            format!("{:.0}", w.wall_s),
            format!("{:.0}", w.busy_s),
            format!("{:.0}", w.occupancy(workers) * 100.0),
            format!("{:.0}", w.cache_hit_rate() * 100.0),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["App", "Perf"]);
        t.row(&["Nginx".into(), "19593".into()]);
        t.row(&["Redis".into(), "66118".into()]);
        let text = t.render();
        assert!(text.contains("App"));
        assert!(text.contains("19593"));
        assert_eq!(text.lines().count(), 4);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn series_rendering() {
        let mut s = Series::new();
        s.push(0.0, 1.0);
        s.push(60.0, 2.0);
        let text = render_series("nginx", &s);
        assert!(text.starts_with("# series: nginx"));
        assert!(text.contains("60.0\t2.0000"));
    }

    #[test]
    fn wave_stats_render_occupancy() {
        let waves = [
            WaveStats {
                wave: 0,
                size: 4,
                wall_s: 80.0,
                busy_s: 240.0,
                cache_hits: 3,
                cache_misses: 1,
            },
            WaveStats {
                wave: 1,
                size: 2,
                wall_s: 70.0,
                busy_s: 130.0,
                cache_hits: 0,
                cache_misses: 2,
            },
        ];
        let text = wave_stats_table(&waves, 4).render();
        assert!(text.contains("Occ %"), "{text}");
        assert!(text.contains("75"), "wave 0 occupancy: {text}");
        assert_eq!(text.lines().count(), 4);
    }

    #[test]
    fn multi_series_rendering() {
        let mut a = Series::new();
        let mut b = Series::new();
        for i in 0..3 {
            a.push(i as f64, 1.0);
            b.push(i as f64, 2.0);
        }
        let text = render_multi_series(&["rand", "dt"], &[a, b]);
        assert!(text.starts_with("# t\trand\tdt"));
        assert_eq!(text.lines().count(), 4);
    }
}
