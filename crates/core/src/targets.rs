//! The string-keyed target registry: how `os:` keywords become running
//! [`wf_platform::EvalTarget`]s.
//!
//! The paper's premise (§3.1) is that the exploration loop is generic
//! over "a given configuration space + an automated benchmarking
//! pipeline". The registry is the open end of that claim: every target
//! the platform can specialize — the five paper scenarios and anything a
//! downstream crate dreams up — is a [`TargetFactory`] registered under a
//! job-file keyword. `SessionBuilder`, job-file resolution, and `wfctl`
//! all consult the same registry, so a new scenario plugs in with one
//! `register()` call and zero edits to the core loop.
//!
//! # Examples
//!
//! ```
//! use wayfinder_core::TargetRegistry;
//!
//! let registry = TargetRegistry::builtin();
//! // The five paper targets ship pre-registered under their keywords.
//! assert_eq!(
//!     registry.keywords(),
//!     ["linux-4.19", "linux-4.19-all", "linux-6.0", "linux-riscv", "unikraft"]
//! );
//! let linux = registry.get("linux-4.19").unwrap();
//! assert_eq!(linux.default_app(), "nginx");
//! ```

use crate::session::BuildError;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;
use wf_kconfig::LinuxVersion;
use wf_ossim::{App, AppId, SimOs};
use wf_platform::{EvalTarget, SimTarget};
use wf_search::SamplePolicy;

/// What a factory needs to materialize a target.
#[derive(Clone, Debug)]
pub struct TargetRequest {
    /// Application keyword (the factory's [`TargetFactory::default_app`]
    /// when the user did not choose one).
    pub app: String,
    /// Size of the probed runtime space for Linux-style targets (§3.4);
    /// targets with fixed spaces ignore it.
    pub runtime_params: usize,
}

/// A materialized target plus the sampling policy its space prefers.
///
/// `Debug` prints the target's descriptor (the trait object itself has
/// no `Debug` bound).
pub struct TargetInstance {
    /// The evaluation target the session will drive.
    pub target: Box<dyn EvalTarget>,
    /// Candidate sampling policy (e.g. mutate-the-default for huge
    /// compile spaces, uniform elsewhere).
    pub policy: SamplePolicy,
}

impl fmt::Debug for TargetInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TargetInstance")
            .field("target", self.target.descriptor())
            .field("policy", &self.policy)
            .finish()
    }
}

/// Builds [`EvalTarget`]s for one `os:` keyword.
///
/// Implement this (plus [`EvalTarget`] for the target itself, or reuse
/// [`SimTarget`]) and [`TargetRegistry::register`] it to open a new
/// scenario to job files, `SessionBuilder`, and `wfctl` — no core-loop
/// edits required.
pub trait TargetFactory: Send + Sync {
    /// The job-file keyword (`os:` value) this factory answers to.
    fn keyword(&self) -> &str;

    /// One-line human description for `wfctl targets`.
    fn summary(&self) -> &str;

    /// Application keywords this target can run.
    fn apps(&self) -> Vec<String>;

    /// The application used when a session does not pick one.
    fn default_app(&self) -> &str;

    /// Materializes the target for `request`.
    fn instantiate(&self, request: &TargetRequest) -> Result<TargetInstance, BuildError>;
}

/// A string-keyed, openly extensible collection of [`TargetFactory`]s.
///
/// Keys iterate in sorted order, so listings and error messages are
/// stable. Registering a duplicate keyword is an error — targets never
/// silently shadow each other.
///
/// # Examples
///
/// Downstream code opens a new scenario by registering a factory; the
/// keyword is then resolvable exactly like the built-ins:
///
/// ```
/// use std::sync::Arc;
/// use wayfinder_core::{
///     BuildError, TargetFactory, TargetInstance, TargetRegistry, TargetRequest,
/// };
/// use wf_kconfig::LinuxVersion;
/// use wf_ossim::{App, AppId, SimOs};
/// use wf_platform::SimTarget;
///
/// struct RedisBox;
///
/// impl TargetFactory for RedisBox {
///     fn keyword(&self) -> &str {
///         "redis-box"
///     }
///     fn summary(&self) -> &str {
///         "Linux 6.0 appliance running Redis"
///     }
///     fn apps(&self) -> Vec<String> {
///         vec!["redis".into()]
///     }
///     fn default_app(&self) -> &str {
///         "redis"
///     }
///     fn instantiate(&self, request: &TargetRequest) -> Result<TargetInstance, BuildError> {
///         let os = SimOs::linux_runtime(LinuxVersion::V6_0, request.runtime_params);
///         Ok(TargetInstance {
///             target: Box::new(SimTarget::new(os, App::by_id(AppId::Redis))),
///             policy: wf_search::SamplePolicy::Uniform,
///         })
///     }
/// }
///
/// let mut registry = TargetRegistry::builtin();
/// registry.register(Arc::new(RedisBox)).unwrap();
/// assert!(registry.get("redis-box").is_some());
/// // ... and duplicate keywords are rejected:
/// assert!(matches!(
///     registry.register(Arc::new(RedisBox)),
///     Err(BuildError::DuplicateKeyword { .. })
/// ));
/// ```
#[derive(Clone, Default)]
pub struct TargetRegistry {
    entries: BTreeMap<String, Arc<dyn TargetFactory>>,
}

impl TargetRegistry {
    /// An empty registry.
    pub fn empty() -> TargetRegistry {
        TargetRegistry::default()
    }

    /// The registry with the five paper targets pre-registered under
    /// their job-file keywords: `linux-4.19`, `linux-6.0`,
    /// `linux-4.19-all`, `linux-riscv`, and `unikraft`.
    pub fn builtin() -> TargetRegistry {
        let mut registry = TargetRegistry::empty();
        for factory in builtin_factories() {
            registry
                .register(factory)
                .expect("builtin keywords are distinct");
        }
        registry
    }

    /// Registers a factory under its keyword. Rejects duplicates with
    /// [`BuildError::DuplicateKeyword`].
    pub fn register(&mut self, factory: Arc<dyn TargetFactory>) -> Result<(), BuildError> {
        let keyword = factory.keyword().to_string();
        if self.entries.contains_key(&keyword) {
            return Err(BuildError::DuplicateKeyword { keyword });
        }
        self.entries.insert(keyword, factory);
        Ok(())
    }

    /// Looks a factory up by keyword.
    pub fn get(&self, keyword: &str) -> Option<&Arc<dyn TargetFactory>> {
        self.entries.get(keyword)
    }

    /// All registered keywords, sorted.
    pub fn keywords(&self) -> Vec<String> {
        self.entries.keys().cloned().collect()
    }

    /// All registered factories, in keyword order.
    pub fn factories(&self) -> impl Iterator<Item = &Arc<dyn TargetFactory>> {
        self.entries.values()
    }

    /// Number of registered targets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl fmt::Debug for TargetRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("TargetRegistry")
            .field(&self.keywords())
            .finish()
    }
}

/// The five paper targets.
fn builtin_factories() -> Vec<Arc<dyn TargetFactory>> {
    vec![
        Arc::new(LinuxRuntimeFactory {
            keyword: "linux-4.19",
            version: LinuxVersion::V4_19,
            all_stages: false,
            summary: "Linux v4.19, runtime (sysctl) space — the §4.1 experiments",
        }),
        Arc::new(LinuxRuntimeFactory {
            keyword: "linux-6.0",
            version: LinuxVersion::V6_0,
            all_stages: false,
            summary: "Linux v6.0, runtime (sysctl) space — the Table 1 kernel",
        }),
        Arc::new(LinuxRuntimeFactory {
            keyword: "linux-4.19-all",
            version: LinuxVersion::V4_19,
            all_stages: true,
            summary: "Linux v4.19 with boot-time and runtime parameters searchable",
        }),
        Arc::new(RiscvFootprintFactory),
        Arc::new(UnikraftFactory),
    ]
}

/// Linux with a runtime (or boot+runtime) sysctl space; any of the four
/// paper benchmark applications.
struct LinuxRuntimeFactory {
    keyword: &'static str,
    version: LinuxVersion,
    all_stages: bool,
    summary: &'static str,
}

impl TargetFactory for LinuxRuntimeFactory {
    fn keyword(&self) -> &str {
        self.keyword
    }

    fn summary(&self) -> &str {
        self.summary
    }

    fn apps(&self) -> Vec<String> {
        AppId::ALL.iter().map(|a| a.label().to_string()).collect()
    }

    fn default_app(&self) -> &str {
        "nginx"
    }

    fn instantiate(&self, request: &TargetRequest) -> Result<TargetInstance, BuildError> {
        let id = AppId::ALL
            .into_iter()
            .find(|a| a.label() == request.app)
            .ok_or_else(|| BuildError::UnknownApp {
                target: self.keyword.to_string(),
                given: request.app.clone(),
                supported: self.apps(),
            })?;
        let os = if self.all_stages {
            SimOs::linux_all_stages(self.version, request.runtime_params)
        } else {
            SimOs::linux_runtime(self.version, request.runtime_params)
        };
        Ok(TargetInstance {
            target: Box::new(SimTarget::new(os, App::by_id(id))),
            policy: SamplePolicy::Uniform,
        })
    }
}

/// RISC-V Linux with a compile-time space, explored by the synthetic boot
/// probe (the Fig. 10 memory-footprint experiment).
struct RiscvFootprintFactory;

impl TargetFactory for RiscvFootprintFactory {
    fn keyword(&self) -> &str {
        "linux-riscv"
    }

    fn summary(&self) -> &str {
        "RISC-V Linux v5.13, compile-time space, boot-memory probe (Fig. 10)"
    }

    fn apps(&self) -> Vec<String> {
        vec!["boot-probe".into()]
    }

    fn default_app(&self) -> &str {
        "boot-probe"
    }

    fn instantiate(&self, request: &TargetRequest) -> Result<TargetInstance, BuildError> {
        if request.app != "boot-probe" {
            return Err(BuildError::IncompatibleApp {
                target: self.keyword().to_string(),
                app: request.app.clone(),
                reason: "footprint sessions boot a synthetic probe, not a benchmark app".into(),
            });
        }
        Ok(TargetInstance {
            target: Box::new(SimTarget::new(
                SimOs::linux_riscv_footprint(),
                App::boot_probe(),
            )),
            policy: SamplePolicy::MutateDefault { max_changes: 128 },
        })
    }
}

/// Unikraft building an Nginx unikernel image (§4.4, Fig. 9).
struct UnikraftFactory;

impl TargetFactory for UnikraftFactory {
    fn keyword(&self) -> &str {
        "unikraft"
    }

    fn summary(&self) -> &str {
        "Unikraft unikernel building Nginx (§4.4, Fig. 9)"
    }

    fn apps(&self) -> Vec<String> {
        vec!["nginx".into()]
    }

    fn default_app(&self) -> &str {
        "nginx"
    }

    fn instantiate(&self, request: &TargetRequest) -> Result<TargetInstance, BuildError> {
        if request.app != "nginx" {
            return Err(BuildError::IncompatibleApp {
                target: self.keyword().to_string(),
                app: request.app.clone(),
                reason: "the Unikraft target ships a prebuilt Nginx image (§4.4)".into(),
            });
        }
        Ok(TargetInstance {
            target: Box::new(SimTarget::new(
                SimOs::unikraft_nginx(),
                wf_ossim::unikraft::nginx_app(),
            )),
            policy: SamplePolicy::Uniform,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_registry_holds_the_five_paper_targets() {
        let registry = TargetRegistry::builtin();
        assert_eq!(registry.len(), 5);
        for keyword in [
            "linux-4.19",
            "linux-6.0",
            "linux-4.19-all",
            "linux-riscv",
            "unikraft",
        ] {
            assert!(registry.get(keyword).is_some(), "{keyword} missing");
        }
    }

    #[test]
    fn duplicate_keywords_are_rejected() {
        let mut registry = TargetRegistry::builtin();
        let err = registry.register(Arc::new(UnikraftFactory)).unwrap_err();
        assert_eq!(
            err,
            BuildError::DuplicateKeyword {
                keyword: "unikraft".into()
            }
        );
    }

    #[test]
    fn linux_factory_rejects_unknown_apps() {
        let registry = TargetRegistry::builtin();
        let err = registry
            .get("linux-4.19")
            .unwrap()
            .instantiate(&TargetRequest {
                app: "postgres".into(),
                runtime_params: 64,
            })
            .unwrap_err();
        assert!(matches!(err, BuildError::UnknownApp { .. }));
    }

    #[test]
    fn riscv_factory_builds_the_probe_target() {
        let registry = TargetRegistry::builtin();
        let instance = registry
            .get("linux-riscv")
            .unwrap()
            .instantiate(&TargetRequest {
                app: "boot-probe".into(),
                runtime_params: 64,
            })
            .unwrap();
        assert_eq!(instance.target.descriptor().app, "boot-probe");
        assert_eq!(instance.target.descriptor().metric, "memory");
        assert!(matches!(
            instance.policy,
            SamplePolicy::MutateDefault { max_changes: 128 }
        ));
    }
}
