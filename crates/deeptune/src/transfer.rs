//! Transfer-learning checkpoints (§3.3).
//!
//! "After training a model to optimize for a given application, transfer
//! learning can be applied, i.e., the model can be reused to accelerate
//! exploration on other applications with similar characteristics."
//!
//! A [`Checkpoint`] captures the DTM weights, the feature normalizer, and
//! the target normalizer. Checkpoints serialize to a versioned plain-text
//! format (the sanctioned crate set has no serde format crate; the format
//! is trivial, documented, and round-trip tested).

use std::fmt::Write as _;
use wf_nn::Matrix;

/// A serializable snapshot of a trained DeepTune model.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// Feature dimensionality the model was trained on.
    pub input_dim: usize,
    /// Hidden width.
    pub hidden: usize,
    /// RBF centroids per layer.
    pub centroids: usize,
    /// RBF smoothing parameter.
    pub gamma: f64,
    /// All trainable tensors in the DTM's stable order.
    pub weights: Vec<Matrix>,
    /// Feature z-score means.
    pub x_mean: Vec<f64>,
    /// Feature z-score standard deviations.
    pub x_std: Vec<f64>,
    /// Target normalizer mean.
    pub y_mean: f64,
    /// Target normalizer std.
    pub y_std: f64,
}

/// Format magic line.
const MAGIC: &str = "wayfinder-dtm-checkpoint v1";

/// Errors when parsing a checkpoint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointError {
    /// Human-readable message.
    pub message: String,
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CheckpointError {}

fn err(message: impl Into<String>) -> CheckpointError {
    CheckpointError {
        message: message.into(),
    }
}

impl Checkpoint {
    /// Serializes the checkpoint to text.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{MAGIC}");
        let _ = writeln!(
            out,
            "config {} {} {} {}",
            self.input_dim, self.hidden, self.centroids, self.gamma
        );
        let _ = writeln!(out, "ynorm {} {}", self.y_mean, self.y_std);
        let _ = writeln!(out, "xnorm {}", self.x_mean.len());
        let _ = writeln!(out, "{}", join(&self.x_mean));
        let _ = writeln!(out, "{}", join(&self.x_std));
        for w in &self.weights {
            let _ = writeln!(out, "tensor {} {}", w.rows(), w.cols());
            for r in 0..w.rows() {
                let _ = writeln!(out, "{}", join(w.row(r)));
            }
        }
        out.push_str("end\n");
        out
    }

    /// Parses a checkpoint from text.
    pub fn from_text(text: &str) -> Result<Checkpoint, CheckpointError> {
        let mut lines = text.lines();
        if lines.next() != Some(MAGIC) {
            return Err(err("bad magic line"));
        }
        let config_line = lines.next().ok_or_else(|| err("missing config line"))?;
        let parts: Vec<&str> = config_line.split_whitespace().collect();
        if parts.len() != 5 || parts[0] != "config" {
            return Err(err("malformed config line"));
        }
        let input_dim: usize = parts[1].parse().map_err(|_| err("bad input_dim"))?;
        let hidden: usize = parts[2].parse().map_err(|_| err("bad hidden"))?;
        let centroids: usize = parts[3].parse().map_err(|_| err("bad centroids"))?;
        let gamma: f64 = parts[4].parse().map_err(|_| err("bad gamma"))?;

        let y_line = lines.next().ok_or_else(|| err("missing ynorm"))?;
        let yp: Vec<&str> = y_line.split_whitespace().collect();
        if yp.len() != 3 || yp[0] != "ynorm" {
            return Err(err("malformed ynorm line"));
        }
        let y_mean: f64 = yp[1].parse().map_err(|_| err("bad y_mean"))?;
        let y_std: f64 = yp[2].parse().map_err(|_| err("bad y_std"))?;

        let x_line = lines.next().ok_or_else(|| err("missing xnorm"))?;
        let xp: Vec<&str> = x_line.split_whitespace().collect();
        if xp.len() != 2 || xp[0] != "xnorm" {
            return Err(err("malformed xnorm line"));
        }
        let x_dim: usize = xp[1].parse().map_err(|_| err("bad xnorm dim"))?;
        let x_mean = parse_row(lines.next().ok_or_else(|| err("missing x means"))?, x_dim)?;
        let x_std = parse_row(lines.next().ok_or_else(|| err("missing x stds"))?, x_dim)?;

        let mut weights = Vec::new();
        loop {
            let header = lines.next().ok_or_else(|| err("unterminated checkpoint"))?;
            if header == "end" {
                break;
            }
            let hp: Vec<&str> = header.split_whitespace().collect();
            if hp.len() != 3 || hp[0] != "tensor" {
                return Err(err(format!("expected tensor header, got {header:?}")));
            }
            let rows: usize = hp[1].parse().map_err(|_| err("bad tensor rows"))?;
            let cols: usize = hp[2].parse().map_err(|_| err("bad tensor cols"))?;
            let mut data = Vec::with_capacity(rows * cols);
            for _ in 0..rows {
                let row = parse_row(lines.next().ok_or_else(|| err("truncated tensor"))?, cols)?;
                data.extend(row);
            }
            weights.push(Matrix::from_vec(rows, cols, data));
        }
        Ok(Checkpoint {
            input_dim,
            hidden,
            centroids,
            gamma,
            weights,
            x_mean,
            x_std,
            y_mean,
            y_std,
        })
    }
}

fn join(values: &[f64]) -> String {
    values
        .iter()
        .map(|v| format!("{v:e}"))
        .collect::<Vec<_>>()
        .join(" ")
}

fn parse_row(line: &str, expected: usize) -> Result<Vec<f64>, CheckpointError> {
    let values: Result<Vec<f64>, _> = line.split_whitespace().map(str::parse).collect();
    let values = values.map_err(|_| err("bad float"))?;
    if values.len() != expected {
        return Err(err(format!(
            "expected {expected} values, found {}",
            values.len()
        )));
    }
    Ok(values)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            input_dim: 3,
            hidden: 4,
            centroids: 2,
            gamma: 1.0,
            weights: vec![
                Matrix::from_vec(2, 3, vec![1.0, -2.5, 3.25e-4, 0.0, 9.0, -1e12]),
                Matrix::from_vec(1, 1, vec![0.5]),
            ],
            x_mean: vec![0.1, 0.2, 0.3],
            x_std: vec![1.0, 2.0, 3.0],
            y_mean: 15000.0,
            y_std: 1234.5,
        }
    }

    #[test]
    fn text_round_trip_is_exact() {
        let c = sample();
        let text = c.to_text();
        let back = Checkpoint::from_text(&text).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(Checkpoint::from_text("nope\n").is_err());
    }

    #[test]
    fn rejects_truncation() {
        let c = sample();
        let text = c.to_text();
        let cut = &text[..text.len() / 2];
        assert!(Checkpoint::from_text(cut).is_err());
    }

    #[test]
    fn rejects_wrong_row_width() {
        let text =
            "wayfinder-dtm-checkpoint v1\nconfig 3 4 2 1\nynorm 0 1\nxnorm 3\n1 2\n1 2 3\nend\n";
        let e = Checkpoint::from_text(text).unwrap_err();
        assert!(e.message.contains("expected 3"));
    }
}
