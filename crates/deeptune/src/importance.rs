//! Querying the trained model for high-impact parameters (§4.1).
//!
//! "We queried the models learned by DeepTune to assess Wayfinder's
//! ability to identify parameters with the high\[est\] impact on
//! performance." For each parameter, the default configuration is varied
//! along that parameter's axis and the DTM predicts the performance of
//! each variant; the spread of predictions around the default's prediction
//! is the parameter's impact — positive when some value is predicted to
//! improve on the default, negative when the axis can only degrade.

use crate::algorithm::DeepTune;
use wf_configspace::{ConfigSpace, Encoder, ParamKind, Tristate, Value};

/// The model's view of one parameter's impact.
#[derive(Clone, Debug, PartialEq)]
pub struct ParamImpact {
    /// Parameter name.
    pub name: String,
    /// Largest predicted improvement over the default (normalized
    /// goodness units; ≥ 0).
    pub best_delta: f64,
    /// Largest predicted degradation below the default (≤ 0).
    pub worst_delta: f64,
}

impl ParamImpact {
    /// Net impact magnitude used for ranking.
    pub fn magnitude(&self) -> f64 {
        self.best_delta.max(-self.worst_delta)
    }
}

/// Number of grid points per integer axis.
const INT_STEPS: usize = 9;

/// Queries the trained model for every non-fixed parameter's impact,
/// probing axes around the default configuration only.
///
/// Returns `None` when the model has not been trained yet.
pub fn parameter_impacts(
    deeptune: &mut DeepTune,
    space: &ConfigSpace,
    encoder: &Encoder,
) -> Option<Vec<ParamImpact>> {
    let default = space.default_config();
    parameter_impacts_at(deeptune, space, encoder, &[default])
}

/// Queries the trained model for every non-fixed parameter's impact,
/// averaging single-axis deltas over the given anchor configurations
/// (an ICE-style estimate).
///
/// The default configuration alone sits at the edge of the model's
/// training distribution, where a small network's extrapolation is noisy;
/// anchoring the probe additionally on configurations the session actually
/// evaluated keeps the queries in-distribution and stabilizes the ranking.
///
/// Returns `None` when the model has not been trained yet or `anchors` is
/// empty.
pub fn parameter_impacts_at(
    deeptune: &mut DeepTune,
    space: &ConfigSpace,
    encoder: &Encoder,
    anchors: &[wf_configspace::Configuration],
) -> Option<Vec<ParamImpact>> {
    if anchors.is_empty() {
        return None;
    }
    let anchor_features: Vec<Vec<f64>> = anchors.iter().map(|a| encoder.encode(space, a)).collect();
    let base_preds = deeptune.predict_raw(&anchor_features)?;

    let mut out = Vec::new();
    for (idx, spec) in space.specs().iter().enumerate() {
        if spec.fixed {
            continue;
        }
        let axis = axis_values(&spec.kind);
        if axis.len() < 2 {
            continue;
        }
        let mut best = 0.0f64;
        let mut worst = 0.0f64;
        for (anchor, base) in anchors.iter().zip(&base_preds) {
            let variants: Vec<Vec<f64>> = axis
                .iter()
                .map(|v| {
                    let mut c = anchor.clone();
                    c.set(idx, *v);
                    encoder.encode(space, &c)
                })
                .collect();
            let preds = deeptune.predict_raw(&variants)?;
            let mut anchor_best = 0.0f64;
            let mut anchor_worst = 0.0f64;
            for p in &preds {
                anchor_best = anchor_best.max(p.mu - base.mu);
                anchor_worst = anchor_worst.min(p.mu - base.mu);
            }
            best += anchor_best / anchors.len() as f64;
            worst += anchor_worst / anchors.len() as f64;
        }
        out.push(ParamImpact {
            name: spec.name.clone(),
            best_delta: best,
            worst_delta: worst,
        });
    }
    out.sort_by(|a, b| b.magnitude().partial_cmp(&a.magnitude()).unwrap());
    Some(out)
}

/// The top `k` parameters predicted to *improve* performance when tuned.
pub fn top_positive(impacts: &[ParamImpact], k: usize) -> Vec<&ParamImpact> {
    let mut v: Vec<&ParamImpact> = impacts.iter().filter(|i| i.best_delta > 0.0).collect();
    v.sort_by(|a, b| b.best_delta.partial_cmp(&a.best_delta).unwrap());
    v.truncate(k);
    v
}

/// The top `k` parameters predicted to *degrade* performance when
/// mis-tuned.
pub fn top_negative(impacts: &[ParamImpact], k: usize) -> Vec<&ParamImpact> {
    let mut v: Vec<&ParamImpact> = impacts.iter().filter(|i| i.worst_delta < 0.0).collect();
    v.sort_by(|a, b| a.worst_delta.partial_cmp(&b.worst_delta).unwrap());
    v.truncate(k);
    v
}

/// The probe values for one parameter axis.
fn axis_values(kind: &ParamKind) -> Vec<Value> {
    match kind {
        ParamKind::Bool => vec![Value::Bool(false), Value::Bool(true)],
        ParamKind::Tristate => Tristate::ALL.iter().map(|t| Value::Tristate(*t)).collect(),
        ParamKind::Enum { choices } => (0..choices.len()).map(Value::Choice).collect(),
        ParamKind::Int {
            min,
            max,
            log_scale,
        } => int_axis(*min, *max, *log_scale),
        ParamKind::Hex { min, max } => int_axis(*min, *max, false),
    }
}

fn int_axis(min: i64, max: i64, log_scale: bool) -> Vec<Value> {
    let mut out = Vec::with_capacity(INT_STEPS);
    for k in 0..INT_STEPS {
        let t = k as f64 / (INT_STEPS - 1) as f64;
        let v = if log_scale && min >= 0 {
            let span = ((max - min) as f64 + 1.0).ln();
            min + ((t * span).exp() - 1.0).round() as i64
        } else {
            min + ((max - min) as f64 * t).round() as i64
        };
        let v = Value::Int(v.clamp(min, max));
        if out.last() != Some(&v) {
            out.push(v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::DeepTuneConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wf_configspace::{ParamSpec, Stage};
    use wf_jobfile::Direction;
    use wf_search::{Observation, SamplePolicy, SearchAlgorithm, SearchContext};

    fn space() -> ConfigSpace {
        let mut s = ConfigSpace::new();
        s.add(ParamSpec::new(
            "helps",
            ParamKind::int(0, 100),
            Stage::Runtime,
        ));
        s.add(ParamSpec::new("hurts", ParamKind::Bool, Stage::Runtime));
        s.add(ParamSpec::new(
            "inert",
            ParamKind::int(0, 100),
            Stage::Runtime,
        ));
        s
    }

    #[test]
    fn recovers_positive_and_negative_parameters() {
        let space = space();
        let encoder = Encoder::new(&space);
        let policy = SamplePolicy::Uniform;
        let mut alg = DeepTune::new(DeepTuneConfig {
            warmup: 5,
            epochs_per_observe: 4,
            ..DeepTuneConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(1);
        let mut history: Vec<Observation> = Vec::new();
        for i in 0..80 {
            let ctx = SearchContext {
                space: &space,
                encoder: &encoder,
                direction: Direction::Maximize,
                policy: &policy,
                history: &history,
                iteration: i,
            };
            let c = ctx.policy.sample(ctx.space, &mut rng);
            let helps = c.by_name(&space, "helps").unwrap().as_f64();
            let hurts = c.by_name(&space, "hurts").unwrap().as_f64();
            let y = 100.0 + helps - 40.0 * hurts;
            let obs = Observation::ok(c, y, 60.0);
            alg.observe(&ctx, &obs);
            history.push(obs);
        }
        let impacts = parameter_impacts(&mut alg, &space, &encoder).expect("trained");
        assert_eq!(impacts.len(), 3);
        let pos = top_positive(&impacts, 1);
        assert_eq!(pos[0].name, "helps");
        let neg = top_negative(&impacts, 1);
        assert_eq!(neg[0].name, "hurts");
        // The inert parameter ranks below both.
        assert_eq!(impacts.last().unwrap().name, "inert");
    }

    #[test]
    fn untrained_model_returns_none() {
        let space = space();
        let encoder = Encoder::new(&space);
        let mut alg = DeepTune::new(DeepTuneConfig::default());
        assert!(parameter_impacts(&mut alg, &space, &encoder).is_none());
    }

    #[test]
    fn axes_cover_domains() {
        let vals = axis_values(&ParamKind::log_int(1, 1_000_000));
        assert!(vals.len() >= 5);
        assert_eq!(vals.first(), Some(&Value::Int(1)));
        assert_eq!(vals.last(), Some(&Value::Int(1_000_000)));
        assert_eq!(axis_values(&ParamKind::Bool).len(), 2);
        assert_eq!(axis_values(&ParamKind::Tristate).len(), 3);
    }
}
