//! The Trailblazer engine: candidate-pool generation (Fig. 3, step 1).
//!
//! "DeepTune starts with the random generation of a diverse pool of
//! permutation candidates." The pool mixes fresh policy samples
//! (exploration fuel) with small mutations of the best configurations
//! found so far (exploitation fuel); the DTM and the scoring function then
//! decide which member is evaluated.

use rand::rngs::StdRng;
use rand::Rng;
use wf_configspace::{ConfigSpace, Configuration};
use wf_search::SamplePolicy;

/// Pool-generation parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolConfig {
    /// Fresh random candidates per iteration.
    pub random: usize,
    /// Mutated copies of incumbents per iteration.
    pub mutants: usize,
    /// Maximum parameters changed per mutation.
    pub max_changes: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            random: 64,
            mutants: 32,
            max_changes: 3,
        }
    }
}

/// Generates one candidate pool.
///
/// `incumbents` are the best configurations found so far (may be empty in
/// the first iterations). Duplicate fingerprints within the pool are
/// dropped, so the returned pool may be slightly smaller than
/// `random + mutants`.
pub fn generate_pool(
    space: &ConfigSpace,
    policy: &SamplePolicy,
    incumbents: &[Configuration],
    cfg: &PoolConfig,
    rng: &mut StdRng,
) -> Vec<Configuration> {
    let mut pool = Vec::with_capacity(cfg.random + cfg.mutants);
    let mut seen = std::collections::HashSet::new();
    for _ in 0..cfg.random {
        let c = policy.sample(space, rng);
        if seen.insert(c.fingerprint()) {
            pool.push(c);
        }
    }
    if !incumbents.is_empty() {
        for _ in 0..cfg.mutants {
            let base = &incumbents[rng.random_range(0..incumbents.len())];
            let changes = rng.random_range(1..=cfg.max_changes.max(1));
            let c = policy.mutate(space, base, changes, rng);
            if seen.insert(c.fingerprint()) {
                pool.push(c);
            }
        }
    }
    assert!(!pool.is_empty(), "pool generation produced nothing");
    pool
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use wf_configspace::{ParamKind, ParamSpec, Stage};

    fn space() -> ConfigSpace {
        let mut s = ConfigSpace::new();
        for i in 0..8 {
            s.add(ParamSpec::new(
                format!("p{i}"),
                ParamKind::int(0, 1000),
                Stage::Runtime,
            ));
        }
        s
    }

    #[test]
    fn pool_has_random_and_mutant_members() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(1);
        let policy = SamplePolicy::Uniform;
        let incumbent = s.default_config();
        let cfg = PoolConfig {
            random: 16,
            mutants: 16,
            max_changes: 2,
        };
        let pool = generate_pool(
            &s,
            &policy,
            std::slice::from_ref(&incumbent),
            &cfg,
            &mut rng,
        );
        assert!(pool.len() > 20);
        // Mutants stay near the incumbent; random samples do not.
        let near = pool
            .iter()
            .filter(|c| c.diff_indices(&incumbent).len() <= 2)
            .count();
        assert!(near >= 8, "near={near}");
    }

    #[test]
    fn pool_without_incumbents_is_pure_exploration() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(2);
        let policy = SamplePolicy::Uniform;
        let cfg = PoolConfig::default();
        let pool = generate_pool(&s, &policy, &[], &cfg, &mut rng);
        assert!(pool.len() <= cfg.random);
        assert!(!pool.is_empty());
    }

    #[test]
    fn pool_members_are_unique() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(3);
        let policy = SamplePolicy::Uniform;
        let cfg = PoolConfig::default();
        let pool = generate_pool(&s, &policy, &[s.default_config()], &cfg, &mut rng);
        let mut fps = std::collections::HashSet::new();
        for c in &pool {
            assert!(fps.insert(c.fingerprint()));
        }
    }
}
