//! The scoring function (§3.2, Eq. 2 and Eq. 3).
//!
//! Candidates are ranked by merging the model prediction, the predicted
//! uncertainty, and the dissimilarity to known configurations:
//!
//! * `ds(x, X) = 1 − 1/(1 + ‖x − X‖²)` — Eq. 2, computed against the
//!   nearest explored sample (`wf_configspace::distance::dissimilarity`);
//! * `sf(x, X) = α·ds(x, X) + (1 − α)·F_u(x)` — Eq. 3, with α = 0.5;
//! * candidates whose predicted crash probability exceeds a threshold are
//!   discarded first (the crash-avoidance competing methods lack);
//! * the surviving pool is ranked by `ŷ_norm + sf(x, X)`, with ŷ
//!   min–max normalized over the pool and sign-adjusted so larger is
//!   always better.
//!
//! Eq. 3 as printed contains only `ds` and `F_u`; the prose adds "the
//! model prediction". We follow the prose (see DESIGN.md §4); the
//! ablation bench isolates each term.

use crate::model::Prediction;
use wf_configspace::distance::dissimilarity;

/// Scoring-function parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScoreParams {
    /// Exploration/exploitation balance α of Eq. 3 (paper: 0.5).
    pub alpha: f64,
    /// Candidates with predicted crash probability above this are
    /// discarded (unless that empties the pool).
    pub crash_threshold: f64,
    /// Weight of the predicted performance term in the final ranking.
    pub prediction_weight: f64,
}

impl Default for ScoreParams {
    fn default() -> Self {
        ScoreParams {
            alpha: 0.5,
            crash_threshold: 0.5,
            prediction_weight: 1.0,
        }
    }
}

/// Eq. 3: merges dissimilarity and predicted uncertainty.
pub fn sf(alpha: f64, ds: f64, sigma_norm: f64) -> f64 {
    alpha * ds + (1.0 - alpha) * sigma_norm
}

/// Ranks a candidate pool; returns indices into the pool, best first.
///
/// `goodness` holds the *sign-adjusted* predicted performance (larger is
/// better); `features` the encoded candidates; `known` the encoded,
/// already-explored configurations.
pub fn rank(
    params: &ScoreParams,
    preds: &[Prediction],
    goodness: &[f64],
    features: &[Vec<f64>],
    known: &[Vec<f64>],
) -> Vec<usize> {
    assert_eq!(preds.len(), features.len());
    assert_eq!(preds.len(), goodness.len());
    assert!(!preds.is_empty(), "empty candidate pool");

    // Crash filter first.
    let mut survivors: Vec<usize> = (0..preds.len())
        .filter(|&i| preds[i].crash_prob <= params.crash_threshold)
        .collect();
    if survivors.is_empty() {
        // Everything looks crashy: keep the least-crashy half instead of
        // proposing nothing.
        let mut by_crash: Vec<usize> = (0..preds.len()).collect();
        by_crash.sort_by(|&a, &b| {
            preds[a]
                .crash_prob
                .partial_cmp(&preds[b].crash_prob)
                .unwrap()
        });
        survivors = by_crash[..preds.len().div_ceil(2)].to_vec();
    }

    // Pool-level min-max normalization of ŷ and σ̂.
    let y_norm = min_max(&survivors.iter().map(|&i| goodness[i]).collect::<Vec<_>>());
    let s_norm = min_max(
        &survivors
            .iter()
            .map(|&i| preds[i].sigma)
            .collect::<Vec<_>>(),
    );

    let mut scored: Vec<(usize, f64)> = survivors
        .iter()
        .enumerate()
        .map(|(pos, &i)| {
            let ds = dissimilarity(&features[i], known);
            let score = params.prediction_weight * y_norm[pos] + sf(params.alpha, ds, s_norm[pos]);
            (i, score)
        })
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    scored.into_iter().map(|(i, _)| i).collect()
}

fn min_max(values: &[f64]) -> Vec<f64> {
    let lo = values.iter().cloned().fold(f64::MAX, f64::min);
    let hi = values.iter().cloned().fold(f64::MIN, f64::max);
    if (hi - lo).abs() < 1e-12 {
        return vec![0.5; values.len()];
    }
    values.iter().map(|v| (v - lo) / (hi - lo)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pred(crash: f64, mu: f64, sigma: f64) -> Prediction {
        Prediction {
            crash_prob: crash,
            mu,
            sigma,
        }
    }

    #[test]
    fn sf_balances_terms() {
        assert_eq!(sf(0.5, 1.0, 0.0), 0.5);
        assert_eq!(sf(0.5, 0.0, 1.0), 0.5);
        assert_eq!(sf(0.0, 1.0, 0.3), 0.3);
        assert_eq!(sf(1.0, 0.7, 0.3), 0.7);
    }

    #[test]
    fn crashy_candidates_are_filtered() {
        let params = ScoreParams::default();
        let preds = vec![pred(0.9, 10.0, 0.1), pred(0.1, 1.0, 0.1)];
        let goodness = vec![10.0, 1.0];
        let features = vec![vec![0.0], vec![1.0]];
        let ranked = rank(&params, &preds, &goodness, &features, &[]);
        // The high-value candidate is predicted to crash; the safe one wins.
        assert_eq!(ranked[0], 1);
        assert_eq!(ranked.len(), 1);
    }

    #[test]
    fn all_crashy_keeps_least_crashy() {
        let params = ScoreParams::default();
        let preds = vec![
            pred(0.95, 1.0, 0.1),
            pred(0.7, 1.0, 0.1),
            pred(0.99, 1.0, 0.1),
        ];
        let goodness = vec![1.0, 1.0, 1.0];
        let features = vec![vec![0.0], vec![1.0], vec![2.0]];
        let ranked = rank(&params, &preds, &goodness, &features, &[]);
        assert!(ranked.contains(&1), "least crashy survives");
        assert_eq!(ranked.len(), 2, "keeps the better half");
    }

    #[test]
    fn prediction_dominates_when_uncertainty_equal() {
        let params = ScoreParams::default();
        let preds = vec![pred(0.0, 1.0, 0.2), pred(0.0, 5.0, 0.2)];
        let goodness = vec![1.0, 5.0];
        // Same distance from the known point.
        let features = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let known = vec![vec![0.0, 0.0]];
        let ranked = rank(&params, &preds, &goodness, &features, &known);
        assert_eq!(ranked[0], 1);
    }

    #[test]
    fn dissimilarity_breaks_ties_toward_unexplored() {
        let params = ScoreParams {
            prediction_weight: 0.0,
            ..Default::default()
        };
        let preds = vec![pred(0.0, 1.0, 0.2), pred(0.0, 1.0, 0.2)];
        let goodness = vec![1.0, 1.0];
        let features = vec![vec![0.01], vec![5.0]];
        let known = vec![vec![0.0]];
        let ranked = rank(&params, &preds, &goodness, &features, &known);
        assert_eq!(ranked[0], 1, "remote candidate explores more");
    }

    #[test]
    fn minimization_is_handled_by_goodness_sign() {
        // Caller sign-adjusts: for latency, goodness = -latency.
        let params = ScoreParams::default();
        let preds = vec![pred(0.0, 300.0, 0.1), pred(0.0, 200.0, 0.1)];
        let goodness = vec![-300.0, -200.0];
        let features = vec![vec![0.0], vec![0.0]];
        let ranked = rank(&params, &preds, &goodness, &features, &[]);
        assert_eq!(ranked[0], 1, "lower latency wins");
    }
}
