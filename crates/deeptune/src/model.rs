//! The DeepTune Model (DTM) — §3.2, Fig. 4.
//!
//! A multitask neural network `F(x) → (k̂, ŷ, σ̂)` mapping a configuration's
//! feature vector to a crash probability, an expected performance, and a
//! predicted uncertainty. Two branches:
//!
//! * the **prediction branch** `F_p`: dense → ReLU → dropout stacked twice,
//!   with three heads — crash logits (2 classes, trained with `L_CCE`),
//!   performance mean, and log-variance (the two trained jointly with the
//!   Kendall-&-Gal heteroscedastic loss `L_Reg`);
//! * the **uncertainty branch** `F_u`: a stack of Gaussian RBF layers
//!   (Eq. 1), each fed the concatenation of the previous layers' latents
//!   (`z = z1 + z2` in Fig. 4), ending in a softplus head producing σ̂.
//!   Centroids are regularized with the Chamfer distance (`L_Cham`) so
//!   they track the latent distribution; inputs far from every centroid
//!   produce near-zero activations, which the σ̂ head learns to map to
//!   high uncertainty — the outlier robustness the paper designs for.
//!
//! One deviation from the paper's constants, recorded in DESIGN.md: RBF
//! distances are *dimension-normalized* (`‖z − c‖²/d`) so the smoothing
//! parameter is independent of feature count; the default `gamma = 1.0`
//! plays the role of the paper's 0.1 at their feature scale. γ stays
//! configurable and the ablation bench sweeps it.

use wf_nn::loss::{chamfer, heteroscedastic_regression, weighted_categorical_cross_entropy};
use wf_nn::{
    sigmoid, softplus, softplus_grad, Adam, Dense, Dropout, Layer, Matrix, Optimizer, Rbf, Relu,
    Tensor,
};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Hyperparameters of the DTM.
#[derive(Clone, Debug, PartialEq)]
pub struct DtmConfig {
    /// Input feature dimensionality.
    pub input_dim: usize,
    /// Hidden width of the prediction branch.
    pub hidden: usize,
    /// Centroids per RBF layer.
    pub centroids: usize,
    /// RBF smoothing parameter over dimension-normalized distances.
    pub gamma: f64,
    /// Dropout rate.
    pub dropout: f64,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Weight initialization / dropout seed.
    pub seed: u64,
}

impl DtmConfig {
    /// A sensible default for `input_dim` features.
    pub fn for_input(input_dim: usize) -> Self {
        DtmConfig {
            input_dim,
            hidden: 48,
            centroids: 24,
            gamma: 1.0,
            dropout: 0.1,
            learning_rate: 3e-3,
            seed: 0x0d7e,
        }
    }
}

/// The model's predictions for a batch row.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Prediction {
    /// Probability that the configuration crashes.
    pub crash_prob: f64,
    /// Predicted performance in *normalized* target units.
    pub mu: f64,
    /// Predicted uncertainty σ̂ (normalized target units, ≥ 0).
    pub sigma: f64,
}

/// Loss breakdown of one training step (`L = L_CCE + L_Reg + L_Cham`, plus
/// the σ̂ regression term that ties the uncertainty branch to observed
/// errors).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LossBreakdown {
    /// Categorical cross-entropy of the crash head.
    pub cce: f64,
    /// Heteroscedastic regression loss.
    pub reg: f64,
    /// Chamfer centroid regularizer (both RBF layers).
    pub cham: f64,
    /// σ̂-vs-|error| regression term.
    pub sigma: f64,
}

impl LossBreakdown {
    /// Total loss.
    pub fn total(&self) -> f64 {
        self.cce + self.reg + self.cham + self.sigma
    }
}

/// The DeepTune Model.
pub struct Dtm {
    cfg: DtmConfig,
    // Prediction branch.
    l1: Dense,
    r1: Relu,
    dr1: Dropout,
    l2: Dense,
    r2: Relu,
    dr2: Dropout,
    crash_head: Dense,
    mu_head: Dense,
    logvar_head: Dense,
    // Uncertainty branch.
    rbf1: Rbf,
    rbf2: Rbf,
    sigma_head: Dense,
    opt: Adam,
}

/// Cached forward activations needed by the backward pass (the layers
/// cache their own inputs; this carries only what the losses read).
struct ForwardPass {
    crash_logits: Matrix,
    mu: Matrix,
    logvar: Matrix,
    z2: Matrix,
    sigma_raw: Matrix,
}

impl Dtm {
    /// Creates a freshly initialized model.
    pub fn new(cfg: DtmConfig) -> Self {
        assert!(cfg.input_dim > 0 && cfg.hidden > 0 && cfg.centroids > 0);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let d = cfg.input_dim;
        let h = cfg.hidden;
        let k = cfg.centroids;
        Dtm {
            l1: Dense::new(d, h, &mut rng),
            r1: Relu::new(),
            dr1: Dropout::new(cfg.dropout, cfg.seed ^ 0x1),
            l2: Dense::new(h, h, &mut rng),
            r2: Relu::new(),
            dr2: Dropout::new(cfg.dropout, cfg.seed ^ 0x2),
            crash_head: Dense::new(h, 2, &mut rng),
            mu_head: Dense::new(h, 1, &mut rng),
            logvar_head: Dense::new(h, 1, &mut rng),
            // Dimension-aware smoothing: gamma_eff = gamma * sqrt(dim)
            // makes exp(-||z-c||^2 / (2 gamma_eff^2)) equivalent to a
            // dimension-normalized distance with smoothing gamma.
            rbf1: Rbf::new(d, k, cfg.gamma * (d as f64).sqrt(), &mut rng),
            rbf2: Rbf::new(k + h, k, cfg.gamma * ((k + h) as f64).sqrt(), &mut rng),
            sigma_head: Dense::new(k, 1, &mut rng),
            opt: Adam::new(cfg.learning_rate),
            cfg,
        }
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &DtmConfig {
        &self.cfg
    }

    /// Number of trainable parameters.
    pub fn parameter_count(&self) -> usize {
        let d = self.cfg.input_dim;
        let h = self.cfg.hidden;
        let k = self.cfg.centroids;
        (d * h + h) + (h * h + h) + (h * 2 + 2) + (h + 1) * 2 + (k * d) + (k * (k + h)) + (k + 1)
    }

    /// Bytes of parameter + optimizer state (Fig. 7's memory accounting:
    /// Adam holds two moments per parameter).
    pub fn memory_bytes(&self) -> usize {
        self.parameter_count() * 3 * std::mem::size_of::<f64>()
    }

    fn forward(&mut self, x: &Matrix, train: bool) -> ForwardPass {
        // Prediction branch.
        let a1 = self.l1.forward(x, train);
        let a1 = self.r1.forward(&a1, train);
        let h1 = self.dr1.forward(&a1, train);
        let a2 = self.l2.forward(&h1, train);
        let a2 = self.r2.forward(&a2, train);
        let h2 = self.dr2.forward(&a2, train);
        let crash_logits = self.crash_head.forward(&h2, train);
        let mu = self.mu_head.forward(&h2, train);
        let logvar = self.logvar_head.forward(&h2, train);
        // Uncertainty branch (Fig. 4): z1 is the input itself (borrowed,
        // never copied), z2 concatenates the first RBF activations with
        // the prediction latents.
        let phi1 = self.rbf1.forward(x, train);
        let z2 = phi1.concat_cols(&h1);
        let phi2 = self.rbf2.forward(&z2, train);
        let sigma_raw = self.sigma_head.forward(&phi2, train);
        ForwardPass {
            crash_logits,
            mu,
            logvar,
            z2,
            sigma_raw,
        }
    }

    /// Predicts crash probability, normalized performance, and σ̂ for each
    /// row of `x` (inference mode: dropout off).
    pub fn predict(&mut self, x: &Matrix) -> Vec<Prediction> {
        let pass = self.forward(x, false);
        (0..x.rows())
            .map(|r| {
                let crash_prob = {
                    let a = pass.crash_logits.get(r, 0);
                    let b = pass.crash_logits.get(r, 1);
                    // Class 1 = crash; softmax of two logits is a sigmoid.
                    sigmoid(b - a)
                };
                Prediction {
                    crash_prob,
                    mu: pass.mu.get(r, 0),
                    sigma: softplus(pass.sigma_raw.get(r, 0)),
                }
            })
            .collect()
    }

    /// One training step on a batch.
    ///
    /// `targets` holds normalized performance values (ignored for crashed
    /// rows); `crashed` flags each row. Returns the loss breakdown.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    pub fn train_batch(&mut self, x: &Matrix, targets: &[f64], crashed: &[bool]) -> LossBreakdown {
        let breakdown = self.compute_grads(x, targets, crashed);
        self.step();
        breakdown
    }

    /// Computes `L = L_CCE + L_Reg + L_Cham` (+ the σ̂ term) and
    /// *accumulates* gradients into every tensor without applying an
    /// optimizer step. [`Dtm::train_batch`] is this plus one Adam step;
    /// the gradient-check tests use it directly.
    pub fn compute_grads(
        &mut self,
        x: &Matrix,
        targets: &[f64],
        crashed: &[bool],
    ) -> LossBreakdown {
        assert_eq!(x.rows(), targets.len());
        assert_eq!(x.rows(), crashed.len());
        assert_eq!(x.cols(), self.cfg.input_dim);
        let pass = self.forward(x, true);
        self.zero_grads();
        let b = x.rows();

        // --- L_CCE on the crash head (all rows). -------------------------
        // Crashing configurations are the minority class (~1/3 of random
        // samples), so the loss is inverse-frequency weighted: without
        // this the crash head systematically under-predicts crashes and
        // Table 3's failure accuracy degenerates toward coin-flipping.
        let labels: Vec<usize> = crashed.iter().map(|c| *c as usize).collect();
        let n_crash = labels.iter().filter(|&&l| l == 1).count();
        let class_weights = if n_crash == 0 || n_crash == b {
            [1.0, 1.0]
        } else {
            let bf = b as f64;
            [
                bf / (2.0 * (b - n_crash) as f64),
                bf / (2.0 * n_crash as f64),
            ]
        };
        let (cce, grad_logits) =
            weighted_categorical_cross_entropy(&pass.crash_logits, &labels, &class_weights);

        // --- L_Reg on non-crashed rows. ----------------------------------
        // Mask crashed rows by zeroing their gradient contributions.
        let ok_rows: Vec<usize> = (0..b).filter(|r| !crashed[*r]).collect();
        let (reg, grad_mu, grad_logvar) = if ok_rows.is_empty() {
            (0.0, Matrix::zeros(b, 1), Matrix::zeros(b, 1))
        } else {
            let mu_ok = pass.mu.select_rows(&ok_rows);
            let lv_ok = pass.logvar.select_rows(&ok_rows);
            let y_ok: Vec<f64> = ok_rows.iter().map(|&r| targets[r]).collect();
            let (reg, gm, gl) = heteroscedastic_regression(&mu_ok, &lv_ok, &y_ok);
            let mut grad_mu = Matrix::zeros(b, 1);
            let mut grad_lv = Matrix::zeros(b, 1);
            for (i, &r) in ok_rows.iter().enumerate() {
                grad_mu.set(r, 0, gm.get(i, 0));
                grad_lv.set(r, 0, gl.get(i, 0));
            }
            (reg, grad_mu, grad_lv)
        };

        // --- σ̂ regression: match the prediction branch's actual error. ---
        // Stop-gradient on mu: the uncertainty branch adapts to the
        // predictor, not the other way around.
        let mut sigma_loss = 0.0;
        let mut grad_sigma_raw = Matrix::zeros(b, 1);
        if !ok_rows.is_empty() {
            let nb = ok_rows.len() as f64;
            for &r in &ok_rows {
                let err = (pass.mu.get(r, 0) - targets[r]).abs();
                let raw = pass.sigma_raw.get(r, 0);
                let s = softplus(raw);
                let diff = s - err;
                sigma_loss += diff * diff / nb;
                grad_sigma_raw.set(r, 0, 2.0 * diff * softplus_grad(raw) / nb);
            }
        }

        // --- Backward: prediction branch. --------------------------------
        let g_h2_crash = self.crash_head.backward(&grad_logits);
        let g_h2_mu = self.mu_head.backward(&grad_mu);
        let g_h2_lv = self.logvar_head.backward(&grad_logvar);
        let mut g_h2 = g_h2_crash;
        g_h2.add_assign(&g_h2_mu);
        g_h2.add_assign(&g_h2_lv);
        let g = self.dr2.backward(&g_h2);
        let g = self.r2.backward(&g);
        let g_h1_pred = self.l2.backward(&g);
        // The uncertainty branch reads h1 but does not reshape it
        // (stop-gradient, see module docs); only the prediction gradient
        // flows back to layer 1.
        let g = self.dr1.backward(&g_h1_pred);
        let g = self.r1.backward(&g);
        let _ = self.l1.backward(&g);

        // --- Backward: uncertainty branch. --------------------------------
        let g_phi2 = self.sigma_head.backward(&grad_sigma_raw);
        let g_z2 = self.rbf2.backward(&g_phi2);
        // Split z2 grads back to phi1 (ignore the h1 part: stop-gradient).
        let (g_phi1, _g_h1_unc) = g_z2.split_cols(self.cfg.centroids);
        let _ = self.rbf1.backward(&g_phi1);

        // --- L_Cham: pull centroids onto the latent distribution. --------
        // Weighted by 1/dim so the regularizer stays commensurate with the
        // prediction losses at any feature count. z1 is the raw input `x`.
        let lam1 = 1.0 / self.cfg.input_dim as f64;
        let lam2 = 1.0 / (self.cfg.centroids + self.cfg.hidden) as f64;
        let (cham1, mut grad_c1) = chamfer(&self.rbf1.centroids().value, x);
        grad_c1.scale(lam1);
        self.rbf1.centroids_mut().grad.add_assign(&grad_c1);
        let (cham2, mut grad_c2) = chamfer(&self.rbf2.centroids().value, &pass.z2);
        grad_c2.scale(lam2);
        self.rbf2.centroids_mut().grad.add_assign(&grad_c2);

        LossBreakdown {
            cce,
            reg,
            cham: lam1 * cham1 + lam2 * cham2,
            sigma: sigma_loss,
        }
    }

    fn zero_grads(&mut self) {
        for t in self.tensors() {
            t.zero_grad();
        }
    }

    fn step(&mut self) {
        // Split borrows: the optimizer and the layers are disjoint fields.
        let Dtm {
            l1,
            l2,
            crash_head,
            mu_head,
            logvar_head,
            rbf1,
            rbf2,
            sigma_head,
            opt,
            ..
        } = self;
        let mut tensors: Vec<&mut Tensor> = Vec::new();
        tensors.extend(l1.tensors());
        tensors.extend(l2.tensors());
        tensors.extend(crash_head.tensors());
        tensors.extend(mu_head.tensors());
        tensors.extend(logvar_head.tensors());
        tensors.extend(rbf1.tensors());
        tensors.extend(rbf2.tensors());
        tensors.extend(sigma_head.tensors());
        opt.step(&mut tensors);
    }

    /// All trainable tensors in a stable order (the optimizer keys state by
    /// position).
    fn tensors(&mut self) -> Vec<&mut Tensor> {
        let mut out = Vec::new();
        out.extend(self.l1.tensors());
        out.extend(self.l2.tensors());
        out.extend(self.crash_head.tensors());
        out.extend(self.mu_head.tensors());
        out.extend(self.logvar_head.tensors());
        out.extend(self.rbf1.tensors());
        out.extend(self.rbf2.tensors());
        out.extend(self.sigma_head.tensors());
        out
    }

    /// Snapshot of all weights (for transfer-learning checkpoints).
    pub fn export_weights(&mut self) -> Vec<Matrix> {
        self.tensors().iter().map(|t| t.value.clone()).collect()
    }

    /// Restores weights exported by [`Dtm::export_weights`].
    ///
    /// # Panics
    ///
    /// Panics on a count or shape mismatch — a truncated checkpoint must
    /// not half-load.
    pub fn import_weights(&mut self, weights: &[Matrix]) {
        let mut tensors = self.tensors();
        assert_eq!(tensors.len(), weights.len(), "checkpoint tensor count");
        for (t, w) in tensors.iter_mut().zip(weights.iter()) {
            assert_eq!(
                (t.value.rows(), t.value.cols()),
                (w.rows(), w.cols()),
                "checkpoint tensor shape"
            );
            t.value = w.clone();
        }
        // Optimizer moments belong to the old trajectory.
        self.opt.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn toy_batch(n: usize, d: usize, seed: u64) -> (Matrix, Vec<f64>, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Matrix::from_fn(n, d, |_, _| rng.random::<f64>());
        // Ground truth: y = 2*x0 - x1; crash iff x2 > 0.8.
        let mut ys = Vec::with_capacity(n);
        let mut crashed = Vec::with_capacity(n);
        for r in 0..n {
            let crash = x.get(r, 2) > 0.8;
            crashed.push(crash);
            ys.push(if crash {
                0.0
            } else {
                2.0 * x.get(r, 0) - x.get(r, 1)
            });
        }
        (x, ys, crashed)
    }

    #[test]
    fn training_reduces_total_loss() {
        let mut m = Dtm::new(DtmConfig::for_input(6));
        let (x, y, c) = toy_batch(64, 6, 1);
        let first = m.train_batch(&x, &y, &c);
        let mut last = first;
        for _ in 0..80 {
            last = m.train_batch(&x, &y, &c);
        }
        assert!(
            last.total() < first.total() * 0.6,
            "first={:.4} last={:.4}",
            first.total(),
            last.total()
        );
    }

    #[test]
    fn learns_crash_boundary() {
        let mut m = Dtm::new(DtmConfig::for_input(6));
        let (x, y, c) = toy_batch(128, 6, 2);
        for _ in 0..150 {
            m.train_batch(&x, &y, &c);
        }
        let (xt, _, ct) = toy_batch(64, 6, 99);
        let preds = m.predict(&xt);
        let correct = preds
            .iter()
            .zip(ct.iter())
            .filter(|(p, c)| (p.crash_prob > 0.5) == **c)
            .count();
        assert!(correct >= 48, "crash accuracy {correct}/64");
    }

    #[test]
    fn learns_regression_target() {
        let mut m = Dtm::new(DtmConfig::for_input(6));
        let (x, y, c) = toy_batch(128, 6, 3);
        for _ in 0..200 {
            m.train_batch(&x, &y, &c);
        }
        let preds = m.predict(&x);
        let mut se = 0.0;
        let mut n = 0.0;
        for (r, p) in preds.iter().enumerate() {
            if !c[r] {
                se += (p.mu - y[r]).powi(2);
                n += 1.0;
            }
        }
        let rmse = (se / n).sqrt();
        // Targets span roughly [-1, 2]; an untrained net sits near RMSE 1.
        assert!(rmse < 0.35, "rmse={rmse}");
    }

    #[test]
    fn uncertainty_rises_for_outliers() {
        let mut m = Dtm::new(DtmConfig::for_input(6));
        let (x, y, c) = toy_batch(128, 6, 4);
        for _ in 0..150 {
            m.train_batch(&x, &y, &c);
        }
        // In-distribution points.
        let preds_in = m.predict(&x);
        let mean_in: f64 = preds_in.iter().map(|p| p.sigma).sum::<f64>() / preds_in.len() as f64;
        // Far outliers.
        let x_out = Matrix::filled(16, 6, 8.0);
        let preds_out = m.predict(&x_out);
        let mean_out: f64 = preds_out.iter().map(|p| p.sigma).sum::<f64>() / preds_out.len() as f64;
        assert!(
            mean_out > mean_in,
            "outlier sigma {mean_out} should exceed in-distribution {mean_in}"
        );
    }

    #[test]
    fn export_import_round_trips() {
        let mut a = Dtm::new(DtmConfig::for_input(5));
        let (x, y, c) = toy_batch(32, 5, 5);
        for _ in 0..20 {
            a.train_batch(&x, &y, &c);
        }
        let weights = a.export_weights();
        let mut b = Dtm::new(DtmConfig::for_input(5));
        b.import_weights(&weights);
        let pa = a.predict(&x);
        let pb = b.predict(&x);
        for (u, v) in pa.iter().zip(pb.iter()) {
            assert!((u.mu - v.mu).abs() < 1e-12);
            assert!((u.crash_prob - v.crash_prob).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "checkpoint tensor shape")]
    fn import_rejects_wrong_shapes() {
        let mut a = Dtm::new(DtmConfig::for_input(5));
        let mut b = Dtm::new(DtmConfig::for_input(7));
        let w = b.export_weights();
        a.import_weights(&w);
    }

    /// Finite-difference check of the multi-branch backward pass.
    ///
    /// Stop-gradients are part of the design (module docs): the sigma loss
    /// does not reshape the prediction branch, and the Chamfer batch side
    /// does not reshape latents. Each tensor is therefore checked against
    /// the numeric derivative of exactly the loss terms that flow to it:
    ///
    /// * crash/logvar heads, rbf2 centroids, sigma head — the full loss;
    /// * l1/l2/mu head — `L_CCE + L_Reg` (the sigma/Chamfer paths into
    ///   them are severed by design);
    /// * rbf1 centroids — skipped (their analytic gradient mixes the
    ///   propagated sigma path with the Chamfer-1 term while the numeric
    ///   full loss adds the unpropagated Chamfer-2 batch path; the RBF
    ///   layer itself is gradient-checked in `wf-nn`).
    #[test]
    fn full_model_gradients_match_finite_differences() {
        let cfg = DtmConfig {
            input_dim: 4,
            hidden: 6,
            centroids: 3,
            gamma: 1.0,
            dropout: 0.0, // deterministic forward
            learning_rate: 1e-3,
            seed: 77,
        };
        let mut m = Dtm::new(cfg);
        let (x, y, c) = toy_batch(8, 4, 7);

        // Tensor order (see Dtm::tensors): l1{W,b} l2{W,b} crash{W,b}
        // mu{W,b} logvar{W,b} rbf1c rbf2c sigma{W,b}.
        #[derive(Clone, Copy, PartialEq)]
        enum Target {
            Full,
            CceReg,
            Skip,
        }
        let targets = [
            Target::CceReg, // l1 W
            Target::CceReg, // l1 b
            Target::CceReg, // l2 W
            Target::CceReg, // l2 b
            Target::Full,   // crash W
            Target::Full,   // crash b
            Target::CceReg, // mu W (sigma reads |mu - y| with stop-grad)
            Target::CceReg, // mu b
            Target::Full,   // logvar W
            Target::Full,   // logvar b
            Target::Skip,   // rbf1 centroids
            Target::Full,   // rbf2 centroids
            Target::Full,   // sigma W
            Target::Full,   // sigma b
        ];

        let _ = m.compute_grads(&x, &y, &c);
        let analytic: Vec<Matrix> = m.tensors().iter().map(|t| t.grad.clone()).collect();
        assert_eq!(analytic.len(), targets.len());

        let loss_of = |b: &LossBreakdown, target: Target| match target {
            Target::Full => b.total(),
            Target::CceReg => b.cce + b.reg,
            Target::Skip => 0.0,
        };

        let eps = 1e-5;
        let mut checked = 0;
        for (ti, &target) in targets.iter().enumerate() {
            if target == Target::Skip {
                continue;
            }
            let len = analytic[ti].len();
            for k in 0..len.min(4) {
                let idx = (k * 7) % len;
                let base = m.tensors()[ti].value.data()[idx];

                m.tensors()[ti].value.data_mut()[idx] = base + eps;
                let up = loss_of(&m.compute_grads(&x, &y, &c), target);
                m.tensors()[ti].value.data_mut()[idx] = base - eps;
                let down = loss_of(&m.compute_grads(&x, &y, &c), target);
                m.tensors()[ti].value.data_mut()[idx] = base;

                let numeric = (up - down) / (2.0 * eps);
                let got = analytic[ti].data()[idx];
                let denom = numeric.abs().max(got.abs()).max(1e-3);
                assert!(
                    ((numeric - got) / denom).abs() < 2e-3,
                    "tensor {ti} entry {idx}: analytic {got} vs numeric {numeric}"
                );
                checked += 1;
            }
        }
        assert!(checked >= 30, "checked only {checked} weights");
    }

    #[test]
    fn memory_accounting_matches_parameters() {
        let m = Dtm::new(DtmConfig::for_input(10));
        assert_eq!(m.memory_bytes(), m.parameter_count() * 24);
        // And stays constant regardless of how much data was seen: the
        // O(1)-memory property of Fig. 7.
        let mut m2 = Dtm::new(DtmConfig::for_input(10));
        let (x, y, c) = toy_batch(64, 10, 6);
        for _ in 0..10 {
            m2.train_batch(&x, &y, &c);
        }
        assert_eq!(m2.memory_bytes(), m.memory_bytes());
    }
}
