//! `wf-deeptune`: the DeepTune optimization algorithm — the paper's core
//! contribution (§3.2, §3.3).
//!
//! * [`model`] — the DeepTune Model (DTM): a multitask NN predicting crash
//!   probability, performance, and uncertainty, with the RBF uncertainty
//!   branch of Eq. 1 and the `L = L_CCE + L_Reg + L_Cham` training loss;
//! * [`score`] — Eq. 2's dissimilarity and Eq. 3's scoring function, plus
//!   the crash-filtered ranking;
//! * [`trailblazer`] — candidate-pool generation (Fig. 3);
//! * [`algorithm`] — [`DeepTune`]: the `wf-search` plug-in tying pool →
//!   prediction → ranking → learning together;
//! * [`transfer`] — §3.3 checkpoints with a versioned text format;
//! * [`importance`] — the §4.1 high-impact-parameter queries.

pub mod algorithm;
pub mod importance;
pub mod model;
pub mod score;
pub mod trailblazer;
pub mod transfer;

pub use algorithm::{DeepTune, DeepTuneConfig};
pub use importance::{
    parameter_impacts, parameter_impacts_at, top_negative, top_positive, ParamImpact,
};
pub use model::{Dtm, DtmConfig, LossBreakdown, Prediction};
pub use score::{rank, sf, ScoreParams};
pub use trailblazer::{generate_pool, PoolConfig};
pub use transfer::{Checkpoint, CheckpointError};
