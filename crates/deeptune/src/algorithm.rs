//! DeepTune as a pluggable search algorithm (Fig. 3's full loop).
//!
//! Each iteration: 1 generate a candidate pool (Trailblazer), 2 predict
//! performance/crash/uncertainty with the DTM, 3 rank with the scoring
//! function, 4 hand the top candidate to the platform, 5 update the model
//! with the observation. Everything the model consumes is normalized:
//! features are z-scored over the replay buffer, targets are z-scored
//! *goodness* (sign-adjusted metric, so maximization is uniform inside the
//! model).

use crate::model::{Dtm, DtmConfig, Prediction};
use crate::score::{rank, ScoreParams};
use crate::trailblazer::{generate_pool, PoolConfig};
use crate::transfer::Checkpoint;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use wf_configspace::Configuration;
use wf_nn::{Matrix, ScalarNorm, ZScore};
use wf_search::host_clock::HostTimer;
use wf_search::{AlgoStats, Observation, SearchAlgorithm, SearchContext};

/// DeepTune hyperparameters.
#[derive(Clone, Debug, PartialEq)]
pub struct DeepTuneConfig {
    /// Pure-exploration iterations before the model drives the search
    /// (skipped when warm-started from a checkpoint).
    pub warmup: usize,
    /// Candidate-pool shape.
    pub pool: PoolConfig,
    /// Scoring-function parameters (Eq. 2/3).
    pub score: ScoreParams,
    /// Training epochs over the replay buffer per observation.
    pub epochs_per_observe: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Incumbents mutated by the pool.
    pub incumbents: usize,
    /// Hidden width of the DTM.
    pub hidden: usize,
    /// RBF centroids per layer.
    pub centroids: usize,
    /// RBF smoothing (dimension-normalized distances).
    pub gamma: f64,
    /// Dropout rate.
    pub dropout: f64,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Seed for weight init and minibatch shuffling.
    pub seed: u64,
}

impl Default for DeepTuneConfig {
    fn default() -> Self {
        DeepTuneConfig {
            warmup: 10,
            pool: PoolConfig::default(),
            score: ScoreParams::default(),
            epochs_per_observe: 6,
            batch_size: 32,
            incumbents: 3,
            hidden: 48,
            centroids: 24,
            gamma: 1.0,
            dropout: 0.1,
            learning_rate: 3e-3,
            seed: 0xdeeb,
        }
    }
}

/// The DeepTune search algorithm.
pub struct DeepTune {
    cfg: DeepTuneConfig,
    model: Option<Dtm>,
    /// Checkpoint to warm-start from at first use (§3.3).
    pending_checkpoint: Option<Checkpoint>,
    /// Whether this instance was warm-started (reported by experiments).
    transferred: bool,
    // Replay buffer (raw encoded features; goodness targets).
    xs: Vec<Vec<f64>>,
    goodness: Vec<Option<f64>>,
    crashed: Vec<bool>,
    x_norm: Option<ZScore>,
    y_norm: ScalarNorm,
    train_rng: StdRng,
    last_update_seconds: f64,
}

impl DeepTune {
    /// Creates a cold-start DeepTune.
    pub fn new(cfg: DeepTuneConfig) -> Self {
        let train_rng = StdRng::seed_from_u64(cfg.seed ^ 0x7ea1);
        DeepTune {
            cfg,
            model: None,
            pending_checkpoint: None,
            transferred: false,
            xs: Vec::new(),
            goodness: Vec::new(),
            crashed: Vec::new(),
            x_norm: None,
            y_norm: ScalarNorm::identity(),
            train_rng,
            last_update_seconds: 0.0,
        }
    }

    /// Creates a DeepTune warm-started from a checkpoint (§3.3 transfer
    /// learning): the model weights, normalizers, and crash knowledge are
    /// reused; warmup is skipped.
    pub fn with_checkpoint(cfg: DeepTuneConfig, checkpoint: Checkpoint) -> Self {
        let mut dt = DeepTune::new(cfg);
        dt.pending_checkpoint = Some(checkpoint);
        dt.transferred = true;
        dt
    }

    /// Whether this instance was warm-started.
    pub fn is_transferred(&self) -> bool {
        self.transferred
    }

    /// Extracts a transfer-learning checkpoint of the trained model.
    ///
    /// Returns `None` before the model exists (no observations yet).
    pub fn checkpoint(&mut self) -> Option<Checkpoint> {
        let x_norm = self.x_norm.clone()?;
        let model = self.model.as_mut()?;
        Some(Checkpoint {
            input_dim: model.config().input_dim,
            hidden: model.config().hidden,
            centroids: model.config().centroids,
            gamma: model.config().gamma,
            weights: model.export_weights(),
            x_mean: x_norm.means().to_vec(),
            x_std: x_norm.stds().to_vec(),
            y_mean: self.y_norm.mean(),
            y_std: self.y_norm.std(),
        })
    }

    /// Observations ingested so far.
    pub fn observations_seen(&self) -> usize {
        self.xs.len()
    }

    /// Predicts (crash probability, normalized goodness, σ̂) for raw
    /// encoded feature vectors. Used by the importance analysis (§4.1).
    pub fn predict_raw(&mut self, raw: &[Vec<f64>]) -> Option<Vec<Prediction>> {
        let model = self.model.as_mut()?;
        let x_norm = self.x_norm.as_ref()?;
        let dim = model.config().input_dim;
        let mut flat = Vec::with_capacity(raw.len() * dim);
        for r in raw {
            assert_eq!(r.len(), dim, "feature width mismatch");
            flat.extend_from_slice(r);
        }
        let x = x_norm.transform(&Matrix::from_vec(raw.len(), dim, flat));
        Some(model.predict(&x))
    }

    /// Like [`DeepTune::predict_raw`] but with `mu`/`sigma` de-normalized
    /// to *goodness* units (the sign-adjusted metric): the Table 3
    /// accuracy evaluation compares these against measured values.
    pub fn predict_goodness(&mut self, raw: &[Vec<f64>]) -> Option<Vec<Prediction>> {
        let y_norm = self.y_norm;
        let preds = self.predict_raw(raw)?;
        Some(
            preds
                .into_iter()
                .map(|p| Prediction {
                    crash_prob: p.crash_prob,
                    mu: y_norm.inverse(p.mu),
                    sigma: y_norm.inverse_scale(p.sigma),
                })
                .collect(),
        )
    }

    /// Ensures the model exists (lazily sized from the encoder) and is
    /// warm-started if a checkpoint is pending.
    fn ensure_model(&mut self, input_dim: usize) {
        if self.model.is_some() {
            return;
        }
        let dtm_cfg = DtmConfig {
            input_dim,
            hidden: self.cfg.hidden,
            centroids: self.cfg.centroids,
            gamma: self.cfg.gamma,
            dropout: self.cfg.dropout,
            learning_rate: self.cfg.learning_rate,
            seed: self.cfg.seed,
        };
        let mut model = Dtm::new(dtm_cfg);
        if let Some(ckpt) = self.pending_checkpoint.take() {
            assert_eq!(
                ckpt.input_dim, input_dim,
                "checkpoint was trained on a different space"
            );
            model.import_weights(&ckpt.weights);
            self.x_norm = Some(ZScore::from_stats(ckpt.x_mean.clone(), ckpt.x_std.clone()));
            self.y_norm = ScalarNorm::from_stats(ckpt.y_mean, ckpt.y_std);
        }
        self.model = Some(model);
    }

    /// Whether the model is ready to drive proposals.
    fn model_ready(&self) -> bool {
        self.model.is_some()
            && self.x_norm.is_some()
            && (self.xs.len() >= self.cfg.warmup || self.transferred)
    }

    /// Refits the feature/target normalizers on the replay buffer.
    fn refit_normalizers(&mut self) {
        let n = self.xs.len();
        if n == 0 {
            return;
        }
        // With a fresh transfer checkpoint, keep the donor's normalizers
        // until enough local data exists to re-estimate them stably.
        if self.transferred && n < 8 {
            return;
        }
        let dim = self.xs[0].len();
        let mut flat = Vec::with_capacity(n * dim);
        for x in &self.xs {
            flat.extend_from_slice(x);
        }
        self.x_norm = Some(ZScore::fit(&Matrix::from_vec(n, dim, flat)));
        let ok: Vec<f64> = self.goodness.iter().flatten().copied().collect();
        if !ok.is_empty() {
            self.y_norm = ScalarNorm::fit(&ok);
        }
    }

    /// Runs the per-observation training epochs.
    fn train(&mut self) {
        let n = self.xs.len();
        if n < 4 {
            return;
        }
        let Some(x_norm) = self.x_norm.clone() else {
            return;
        };
        let dim = self.xs[0].len();
        self.ensure_model(dim);
        let y_norm = self.y_norm;
        let batch = self.cfg.batch_size.max(4).min(n);
        let mut indices: Vec<usize> = (0..n).collect();
        for _ in 0..self.cfg.epochs_per_observe {
            indices.shuffle(&mut self.train_rng);
            for chunk in indices.chunks(batch) {
                let mut flat = Vec::with_capacity(chunk.len() * dim);
                let mut ys = Vec::with_capacity(chunk.len());
                let mut cr = Vec::with_capacity(chunk.len());
                for &i in chunk {
                    flat.extend_from_slice(&self.xs[i]);
                    ys.push(match self.goodness[i] {
                        Some(g) => y_norm.transform(g),
                        None => 0.0,
                    });
                    cr.push(self.crashed[i]);
                }
                let xb = x_norm.transform(&Matrix::from_vec(chunk.len(), dim, flat));
                self.model
                    .as_mut()
                    .expect("ensure_model ran")
                    .train_batch(&xb, &ys, &cr);
            }
        }
    }
}

impl SearchAlgorithm for DeepTune {
    fn name(&self) -> &'static str {
        "deeptune"
    }

    fn propose(&mut self, ctx: &SearchContext<'_>, rng: &mut StdRng) -> Configuration {
        let t0 = HostTimer::start();
        if self.pending_checkpoint.is_some() {
            self.ensure_model(ctx.encoder.dim());
        }
        let out = if !self.model_ready() {
            ctx.policy.sample(ctx.space, rng)
        } else {
            // 1: diverse candidate pool around the best configurations.
            let mut ranked_history: Vec<&Observation> =
                ctx.history.iter().filter(|o| o.value.is_some()).collect();
            ranked_history.sort_by(|a, b| {
                ctx.goodness(b.value.unwrap())
                    .partial_cmp(&ctx.goodness(a.value.unwrap()))
                    .unwrap()
            });
            let incumbents: Vec<Configuration> = ranked_history
                .iter()
                .take(self.cfg.incumbents)
                .map(|o| o.config.clone())
                .collect();
            let pool = generate_pool(ctx.space, ctx.policy, &incumbents, &self.cfg.pool, rng);

            // 2: predict.
            let features: Vec<Vec<f64>> = pool
                .iter()
                .map(|c| ctx.encoder.encode(ctx.space, c))
                .collect();
            let preds = self
                .predict_raw(&features)
                .expect("model_ready() implies a usable model");
            let goodness: Vec<f64> = preds.iter().map(|p| p.mu).collect();

            // 3: rank against the explored set. The replay buffer already
            // holds every observed configuration's raw encoding in history
            // order, so the usual case borrows it instead of re-encoding
            // the whole history each proposal (an O(n·dim) saving per
            // iteration). Callers that hand propose a history the model
            // was never told about fall back to encoding it directly.
            let reencoded: Vec<Vec<f64>>;
            let known: &[Vec<f64>] = if self.xs.len() == ctx.history.len() {
                &self.xs
            } else {
                reencoded = ctx
                    .history
                    .iter()
                    .map(|o| ctx.encoder.encode(ctx.space, &o.config))
                    .collect();
                &reencoded
            };
            let order = rank(&self.cfg.score, &preds, &goodness, &features, known);
            pool[order[0]].clone()
        };
        self.last_update_seconds = t0.seconds();
        out
    }

    fn observe(&mut self, ctx: &SearchContext<'_>, obs: &Observation) {
        let t0 = HostTimer::start();
        let x = ctx.encoder.encode(ctx.space, &obs.config);
        self.xs.push(x);
        self.goodness.push(obs.value.map(|v| ctx.goodness(v)));
        self.crashed.push(obs.crashed);
        self.refit_normalizers();
        self.ensure_model(ctx.encoder.dim());
        self.train();
        self.last_update_seconds += t0.seconds();
    }

    fn begin_epoch(&mut self, transfer: bool) {
        // Continuous sessions: the workload shifted, the per-epoch replay
        // buffer is stale. With `transfer`, self-checkpoint first — the
        // trained DTM's weights and normalizers seed the next epoch
        // exactly like a §3.3 cross-target transfer (warmup skipped,
        // donor normalizers kept until 8 local observations); without it,
        // restart cold. `train_rng` keeps advancing its stream either
        // way, so an uninterrupted run and a replayed one stay bit-equal.
        let ckpt = if transfer { self.checkpoint() } else { None };
        self.xs.clear();
        self.goodness.clear();
        self.crashed.clear();
        self.model = None;
        self.x_norm = None;
        self.y_norm = ScalarNorm::identity();
        self.transferred = false;
        self.pending_checkpoint = None;
        if let Some(ckpt) = ckpt {
            self.pending_checkpoint = Some(ckpt);
            self.transferred = true;
        }
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }

    fn stats(&self) -> AlgoStats {
        // Memory: fixed model parameters + the replay buffer (linear in n
        // — the O(n) memory of Fig. 7, against the GP's O(n²)).
        let model_bytes = self.model.as_ref().map(|m| m.memory_bytes()).unwrap_or(0);
        let buffer_bytes: usize =
            self.xs.iter().map(|x| x.len() * 8).sum::<usize>() + self.goodness.len() * 16;
        AlgoStats {
            last_update_seconds: self.last_update_seconds,
            memory_bytes: model_bytes + buffer_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_configspace::{ConfigSpace, Encoder, ParamKind, ParamSpec, Stage};
    use wf_jobfile::Direction;
    use wf_search::SamplePolicy;

    fn space() -> ConfigSpace {
        let mut s = ConfigSpace::new();
        s.add(ParamSpec::new("a", ParamKind::int(0, 100), Stage::Runtime));
        s.add(ParamSpec::new("b", ParamKind::int(0, 100), Stage::Runtime));
        s.add(ParamSpec::new("c", ParamKind::Bool, Stage::Runtime));
        s
    }

    /// Objective: maximize a, crash when c is on.
    fn run_session(alg: &mut DeepTune, iters: usize, seed: u64) -> Vec<Observation> {
        let space = space();
        let encoder = Encoder::new(&space);
        let policy = SamplePolicy::Uniform;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut history: Vec<Observation> = Vec::new();
        for i in 0..iters {
            let c = {
                let ctx = SearchContext {
                    space: &space,
                    encoder: &encoder,
                    direction: Direction::Maximize,
                    policy: &policy,
                    history: &history,
                    iteration: i,
                };
                alg.propose(&ctx, &mut rng)
            };
            let crash = c.by_name(&space, "c").unwrap().as_bool().unwrap();
            let obs = if crash {
                Observation::crash(c, 10.0)
            } else {
                let a = c.by_name(&space, "a").unwrap().as_int().unwrap() as f64;
                Observation::ok(c, a, 60.0)
            };
            let ctx = SearchContext {
                space: &space,
                encoder: &encoder,
                direction: Direction::Maximize,
                policy: &policy,
                history: &history,
                iteration: i,
            };
            alg.observe(&ctx, &obs);
            history.push(obs);
        }
        history
    }

    #[test]
    fn learns_to_avoid_crashes_and_climb() {
        let mut alg = DeepTune::new(DeepTuneConfig {
            warmup: 8,
            epochs_per_observe: 4,
            ..DeepTuneConfig::default()
        });
        let history = run_session(&mut alg, 60, 42);
        let early_crashes = history[..20].iter().filter(|o| o.crashed).count();
        let late_crashes = history[40..].iter().filter(|o| o.crashed).count();
        assert!(
            late_crashes < early_crashes.max(3),
            "crash learning: early={early_crashes} late={late_crashes}"
        );
        let late_best = history[40..]
            .iter()
            .filter_map(|o| o.value)
            .fold(f64::MIN, f64::max);
        assert!(late_best > 88.0, "late best {late_best}");
    }

    #[test]
    fn checkpoint_round_trip_transfers_crash_knowledge() {
        let mut donor = DeepTune::new(DeepTuneConfig {
            warmup: 8,
            ..DeepTuneConfig::default()
        });
        let _ = run_session(&mut donor, 50, 7);
        let ckpt = donor.checkpoint().expect("trained model");

        let mut fresh = DeepTune::with_checkpoint(DeepTuneConfig::default(), ckpt);
        assert!(fresh.is_transferred());
        let history = run_session(&mut fresh, 25, 8);
        let crashes = history.iter().filter(|o| o.crashed).count();
        // The crash boundary (c = on) was already learned by the donor.
        assert!(
            (crashes as f64 / history.len() as f64) < 0.2,
            "transfer crash rate {crashes}/{}",
            history.len()
        );
    }

    #[test]
    fn memory_grows_linearly_not_quadratically() {
        let mut alg = DeepTune::new(DeepTuneConfig {
            warmup: 5,
            epochs_per_observe: 1,
            ..DeepTuneConfig::default()
        });
        let space = space();
        let encoder = Encoder::new(&space);
        let policy = SamplePolicy::Uniform;
        let mut rng = StdRng::seed_from_u64(3);
        let mut history: Vec<Observation> = Vec::new();
        let mut mems = Vec::new();
        for i in 0..60 {
            let ctx = SearchContext {
                space: &space,
                encoder: &encoder,
                direction: Direction::Maximize,
                policy: &policy,
                history: &history,
                iteration: i,
            };
            let c = ctx.policy.sample(ctx.space, &mut rng);
            let obs = Observation::ok(c, 1.0, 1.0);
            alg.observe(&ctx, &obs);
            history.push(obs);
            mems.push(alg.stats().memory_bytes);
        }
        let d1 = mems[39] - mems[19];
        let d2 = mems[59] - mems[39];
        // Linear growth: equal increments per 20 observations.
        assert!(
            (d1 as f64 - d2 as f64).abs() < d1 as f64 * 0.2 + 1.0,
            "increments {d1} vs {d2}"
        );
    }

    #[test]
    fn warmup_is_pure_policy_sampling() {
        let mut alg = DeepTune::new(DeepTuneConfig {
            warmup: 100,
            ..DeepTuneConfig::default()
        });
        let history = run_session(&mut alg, 20, 5);
        // No model-driven crash avoidance during warmup: crash rate stays
        // near the ~50% the objective imposes (c is a fair coin).
        let crashes = history.iter().filter(|o| o.crashed).count();
        assert!(crashes >= 4, "warmup should not avoid crashes: {crashes}");
    }
}
