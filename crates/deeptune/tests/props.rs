//! Property tests: checkpoint round-trips over arbitrary weights, and
//! scoring-function invariants.

use proptest::prelude::*;
use wf_deeptune::model::Prediction;
use wf_deeptune::{rank, sf, Checkpoint, ScoreParams};
use wf_nn::Matrix;

fn finite_f64() -> impl Strategy<Value = f64> {
    // Round-trippable floats (text format uses {:e}).
    (-1e12f64..1e12).prop_map(|v| (v * 1e6).round() / 1e6)
}

fn matrix_strategy() -> impl Strategy<Value = Matrix> {
    (1usize..6, 1usize..6).prop_flat_map(|(r, c)| {
        proptest::collection::vec(finite_f64(), r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn checkpoint_text_round_trips(
        weights in proptest::collection::vec(matrix_strategy(), 1..6),
        x_stats in proptest::collection::vec((finite_f64(), 0.001f64..1e6), 1..8),
        y_mean in finite_f64(),
        y_std in 0.001f64..1e6,
    ) {
        let ckpt = Checkpoint {
            input_dim: x_stats.len(),
            hidden: 8,
            centroids: 4,
            gamma: 1.0,
            weights,
            x_mean: x_stats.iter().map(|(m, _)| *m).collect(),
            x_std: x_stats.iter().map(|(_, s)| *s).collect(),
            y_mean,
            y_std,
        };
        let text = ckpt.to_text();
        let back = Checkpoint::from_text(&text).expect("round-trip parses");
        prop_assert_eq!(back, ckpt);
    }

    #[test]
    fn sf_is_a_convex_combination(alpha in 0.0f64..=1.0, ds in 0.0f64..=1.0, sigma in 0.0f64..=1.0) {
        let v = sf(alpha, ds, sigma);
        let lo = ds.min(sigma);
        let hi = ds.max(sigma);
        prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
    }

    #[test]
    fn rank_returns_a_valid_permutation_subset(
        rows in proptest::collection::vec((0.0f64..=1.0, -10.0f64..10.0, 0.0f64..5.0), 1..20),
    ) {
        let preds: Vec<Prediction> = rows
            .iter()
            .map(|(crash, mu, sigma)| Prediction {
                crash_prob: *crash,
                mu: *mu,
                sigma: *sigma,
            })
            .collect();
        let goodness: Vec<f64> = preds.iter().map(|p| p.mu).collect();
        let features: Vec<Vec<f64>> = (0..preds.len()).map(|i| vec![i as f64]).collect();
        let order = rank(&ScoreParams::default(), &preds, &goodness, &features, &[]);
        prop_assert!(!order.is_empty());
        // Indices are unique and in range.
        let mut seen = std::collections::HashSet::new();
        for i in &order {
            prop_assert!(*i < preds.len());
            prop_assert!(seen.insert(*i));
        }
        // The filter never drops a candidate that is strictly safer than a
        // kept one.
        let kept_max_crash = order
            .iter()
            .map(|&i| preds[i].crash_prob)
            .fold(f64::MIN, f64::max);
        for (i, p) in preds.iter().enumerate() {
            if !order.contains(&i) {
                prop_assert!(
                    p.crash_prob >= kept_max_crash - 1e-12,
                    "dropped {} (crash {}) while keeping crashier candidates",
                    i,
                    p.crash_prob
                );
            }
        }
    }
}
