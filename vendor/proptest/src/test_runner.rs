//! Test configuration, errors, and the deterministic test RNG.

use rand::SeedableRng;

/// The RNG all strategies draw from.
pub type TestRng = rand::rngs::StdRng;

/// Builds the case RNG for a given seed-stream position.
pub fn rng_from_seed(seed: u64) -> TestRng {
    TestRng::seed_from_u64(seed)
}

/// Derives a stable per-test seed from the test's name (FNV-1a), so runs
/// are reproducible without any environment plumbing.
pub fn seed_for(test_name: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Per-block configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of passing cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration that runs `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case is invalid and should be regenerated (from `prop_assume!`).
    Reject(String),
    /// The property does not hold.
    Fail(String),
}

/// Result type the `proptest!` macro's case closures return.
pub type TestCaseResult = Result<(), TestCaseError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_stable_and_distinct() {
        assert_eq!(seed_for("alpha"), seed_for("alpha"));
        assert_ne!(seed_for("alpha"), seed_for("beta"));
    }
}
