//! Generation from the tiny regex subset the workspace's tests use.
//!
//! Supported grammar, applied to whole `&str` strategies:
//!
//! * `[...]` character classes with literal chars and `a-z` ranges
//!   (a trailing `-` is literal);
//! * `\PC` — "any printable (non-control) character";
//! * any other literal character;
//! * each item may carry a `{n}` or `{m,n}` repetition count.
//!
//! Patterns outside this subset panic at generation time, which in a test
//! context surfaces immediately and loudly.

use crate::test_runner::TestRng;
use rand::Rng;

#[derive(Debug)]
enum Item {
    /// A set of candidate characters.
    Class(Vec<char>),
    /// A literal character.
    Literal(char),
}

/// Printable sample for `\PC`: ASCII printables plus a few multi-byte
/// characters so UTF-8 handling gets exercised.
fn printable_alphabet() -> Vec<char> {
    let mut chars: Vec<char> = (0x20u8..0x7f).map(|b| b as char).collect();
    chars.extend(['é', 'λ', '中', '🦀', '∞', 'ß']);
    chars
}

fn parse(pattern: &str) -> Vec<(Item, usize, usize)> {
    let mut chars = pattern.chars().peekable();
    let mut items = Vec::new();
    while let Some(c) = chars.next() {
        let item = match c {
            '[' => {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    let c = chars.next().unwrap_or_else(|| {
                        panic!("unterminated character class in pattern {pattern:?}")
                    });
                    match c {
                        ']' => break,
                        '-' => {
                            // Range if bracketed by chars, else literal.
                            match (prev, chars.peek()) {
                                (Some(lo), Some(&hi)) if hi != ']' => {
                                    chars.next();
                                    for ch in lo..=hi {
                                        set.push(ch);
                                    }
                                    prev = None;
                                }
                                _ => {
                                    set.push('-');
                                    prev = Some('-');
                                }
                            }
                        }
                        other => {
                            set.push(other);
                            prev = Some(other);
                        }
                    }
                }
                assert!(
                    !set.is_empty(),
                    "empty character class in pattern {pattern:?}"
                );
                Item::Class(set)
            }
            '\\' => match chars.next() {
                Some('P') => match chars.next() {
                    Some('C') => Item::Class(printable_alphabet()),
                    other => panic!("unsupported escape \\P{other:?} in pattern {pattern:?}"),
                },
                Some(lit @ ('\\' | '.' | '-' | '[' | ']' | '{' | '}')) => Item::Literal(lit),
                other => panic!("unsupported escape \\{other:?} in pattern {pattern:?}"),
            },
            other => Item::Literal(other),
        };
        // Optional {n} / {m,n} repetition.
        let (lo, hi) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            loop {
                match chars.next() {
                    Some('}') => break,
                    Some(c) => spec.push(c),
                    None => panic!("unterminated repetition in pattern {pattern:?}"),
                }
            }
            match spec.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("repetition lower bound"),
                    n.trim().parse().expect("repetition upper bound"),
                ),
                None => {
                    let n = spec.trim().parse().expect("repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        items.push((item, lo, hi));
    }
    items
}

/// Generates one string matching `pattern`.
pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for (item, lo, hi) in parse(pattern) {
        let count = rng.random_range(lo..=hi);
        for _ in 0..count {
            match &item {
                Item::Literal(c) => out.push(*c),
                Item::Class(set) => out.push(set[rng.random_range(0..set.len())]),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_from_seed;

    #[test]
    fn identifier_patterns_match_shape() {
        let mut rng = rng_from_seed(8);
        for _ in 0..128 {
            let s = generate_from_pattern("[a-z][a-z0-9_]{0,10}", &mut rng);
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_lowercase());
            assert!(s.len() <= 11);
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn class_with_trailing_dash_and_dot() {
        let mut rng = rng_from_seed(9);
        for _ in 0..256 {
            let s = generate_from_pattern("[a-zA-Z0-9 _.-]{1,8}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 8);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || " _.-".contains(c)));
        }
    }

    #[test]
    fn printable_escape_has_bounded_length() {
        let mut rng = rng_from_seed(10);
        for _ in 0..64 {
            let s = generate_from_pattern("\\PC{0,200}", &mut rng);
            assert!(s.chars().count() <= 200);
            assert!(s.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn exact_repetition_counts() {
        let mut rng = rng_from_seed(11);
        let s = generate_from_pattern("[A-Z]{3}x", &mut rng);
        assert_eq!(s.chars().count(), 4);
        assert!(s.ends_with('x'));
    }
}
