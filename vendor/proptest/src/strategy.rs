//! The [`Strategy`] trait and combinators.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no shrinking: a strategy is just a
/// deterministic function of the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Generates an intermediate value, then generates from the strategy
    /// `f` builds out of it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }

    /// Builds a recursive strategy: `self` generates leaves, and `f` wraps
    /// an inner strategy into a branch strategy. `depth` bounds nesting;
    /// `_desired_size` and `_expected_branch_size` are accepted for API
    /// compatibility and ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut tier = leaf.clone();
        for _ in 0..depth {
            tier = Union::new(vec![leaf.clone(), f(tier).boxed()]).boxed();
        }
        tier
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A cloneable, type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies; built by [`crate::prop_oneof!`].
pub struct Union<T> {
    variants: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `variants` is empty.
    pub fn new(variants: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!variants.is_empty(), "prop_oneof! needs at least one arm");
        Union { variants }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.random_range(0..self.variants.len());
        self.variants[idx].generate(rng)
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            variants: self.variants.clone(),
        }
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// `&str` regex-subset strategies (see [`crate::string`] for the grammar).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_from_seed;

    #[test]
    fn ranges_tuples_and_map_compose() {
        let mut rng = rng_from_seed(1);
        let strat = (1usize..5, 0.0f64..1.0).prop_map(|(n, f)| vec![f; n]);
        for _ in 0..64 {
            let v = strat.generate(&mut rng);
            assert!((1..5).contains(&v.len()));
            assert!(v.iter().all(|f| (0.0..1.0).contains(f)));
        }
    }

    #[test]
    fn union_hits_every_arm() {
        let mut rng = rng_from_seed(2);
        let strat = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let draws: Vec<u8> = (0..64).map(|_| strat.generate(&mut rng)).collect();
        assert!(draws.contains(&1) && draws.contains(&2));
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug)]
        #[allow(dead_code)] // the Leaf payload exists to exercise prop_map
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        let strat = (0u8..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 4, |inner| {
                crate::collection::vec(inner, 0..3).prop_map(Tree::Node)
            });
        let mut rng = rng_from_seed(3);
        for _ in 0..128 {
            let t = strat.generate(&mut rng);
            fn depth(t: &Tree) -> usize {
                match t {
                    Tree::Leaf(_) => 0,
                    Tree::Node(cs) => 1 + cs.iter().map(depth).max().unwrap_or(0),
                }
            }
            assert!(depth(&t) <= 3);
        }
    }

    #[test]
    fn flat_map_threads_intermediate_values() {
        let strat = (1usize..4).prop_flat_map(|n| crate::collection::vec(0u8..=1, n..n + 1));
        let mut rng = rng_from_seed(4);
        for _ in 0..32 {
            let v = strat.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }
}
