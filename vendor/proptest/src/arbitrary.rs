//! `any::<T>()` — full-domain strategies for primitive types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::{Rng, Standard};

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Returns the full-domain strategy for `Self`.
    fn arbitrary() -> AnyStrategy<Self>;
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary + Standard> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.random::<T>()
    }
}

macro_rules! impl_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary() -> AnyStrategy<$t> {
                AnyStrategy(PhantomData)
            }
        }
    )*};
}
impl_arbitrary!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Full-domain strategy for `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    T::arbitrary()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_from_seed;

    #[test]
    fn any_covers_the_domain_eventually() {
        let mut rng = rng_from_seed(5);
        let bools: Vec<bool> = (0..64).map(|_| any::<bool>().generate(&mut rng)).collect();
        assert!(bools.contains(&true) && bools.contains(&false));
        let signed: Vec<i32> = (0..64).map(|_| any::<i32>().generate(&mut rng)).collect();
        assert!(signed.iter().any(|v| *v < 0) && signed.iter().any(|v| *v > 0));
    }
}
