//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! re-implements the subset of the proptest 1.x API the workspace's
//! property tests use:
//!
//! * the [`strategy::Strategy`] trait with `prop_map`, `prop_flat_map`,
//!   `prop_recursive`, and `boxed`;
//! * strategies for ranges, tuples (arity 2–6), [`strategy::Just`],
//!   [`arbitrary::any`], regex-like `&str` patterns, and
//!   [`collection::vec`];
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`],
//!   [`prop_assert_eq!`], [`prop_assert_ne!`], and [`prop_assume!`]
//!   macros;
//! * [`test_runner::ProptestConfig`] with `with_cases`.
//!
//! Differences from real proptest: generation is derived deterministically
//! from the test name (no `PROPTEST_` env handling) and failing cases are
//! reported but **not shrunk** — acceptable for a CI gate, where the fix is
//! to re-run the named test under a debugger.

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Runs a block of property tests.
///
/// Supports the standard form: an optional
/// `#![proptest_config(...)]` header followed by `#[test]` functions whose
/// arguments use `name in strategy` syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $config; $($rest)*);
    };
    (@impl $config:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let mut passed: u32 = 0;
                let mut rejected: u32 = 0;
                let mut stream: u64 = $crate::test_runner::seed_for(stringify!($name));
                while passed < config.cases {
                    let case_seed = stream;
                    let mut rng = $crate::test_runner::rng_from_seed(case_seed);
                    stream = stream.wrapping_add(0x9e37_79b9_7f4a_7c15);
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(why)) => {
                            rejected += 1;
                            if rejected > 16 * config.cases + 1024 {
                                panic!(
                                    "proptest '{}': too many prop_assume rejections (last: {})",
                                    stringify!($name),
                                    why
                                );
                            }
                        }
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest '{}' failed at case {} (rng_from_seed({:#x}) reproduces it): {}",
                                stringify!($name),
                                passed,
                                case_seed,
                                msg
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Fails the current property-test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: {} == {}",
            stringify!($left),
            stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Fails the current case unless the two expressions compare unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: {} != {}",
            stringify!($left),
            stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left != *right, $($fmt)+);
    }};
}

/// Discards the current case (without failing) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
