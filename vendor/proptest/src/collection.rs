//! Collection strategies (`vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Inclusive length bounds for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with lengths drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.random_range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Builds a strategy producing vectors of `element` values, mirroring
/// `proptest::collection::vec`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_from_seed;

    #[test]
    fn lengths_respect_bounds() {
        let mut rng = rng_from_seed(6);
        let strat = vec(0u8..10, 2..5);
        for _ in 0..64 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
        let fixed = vec(0u8..10, 4);
        assert_eq!(fixed.generate(&mut rng).len(), 4);
    }
}
