//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! this vendored crate re-implements exactly the subset of the rand 0.9 API
//! the workspace uses: the [`Rng`] / [`RngCore`] / [`SeedableRng`] traits,
//! a deterministic [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64),
//! range sampling, and [`seq::SliceRandom::shuffle`].
//!
//! It is NOT cryptographically secure and makes no attempt to match the
//! value streams of the real `StdRng`; the workspace only relies on
//! determinism-per-seed and reasonable statistical quality.

pub mod rngs;
pub mod seq;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (upper half of a `u64` draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be produced uniformly from an RNG, mirroring what the
/// real crate's `StandardUniform` distribution covers for our call sites.
pub trait Standard: Sized {
    /// Draws one uniformly-distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

/// Ranges that [`Rng::random_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::sample_standard(rng) % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (u128::sample_standard(rng) % span) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + <$t>::sample_standard(rng) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                start + <$t>::sample_standard(rng) * (end - start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// High-level random value generation, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniformly-distributed value of type `T`.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`. Panics on an empty range.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Builds an RNG whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}
