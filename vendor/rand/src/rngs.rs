//! Concrete RNGs.

use crate::{RngCore, SeedableRng};

/// Deterministic xoshiro256++ generator seeded via SplitMix64.
///
/// Stands in for `rand::rngs::StdRng`; the only contract the workspace
/// relies on is "same seed, same stream".
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Alias: the workspace treats `SmallRng` and `StdRng` identically.
pub type SmallRng = StdRng;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
            let i = rng.random_range(3..10);
            assert!((3..10).contains(&i));
            let j = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&j));
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 10_000;
        let mean = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
