//! Offline stand-in for the [`crossbeam`](https://crates.io/crates/crossbeam)
//! crate, implementing only `crossbeam::thread::scope` on top of
//! `std::thread::scope` (stable since Rust 1.63).

pub mod thread {
    //! Scoped threads with the crossbeam `scope(|s| ...)` calling convention.

    use std::any::Any;

    /// A scope handle; closures spawned through it may borrow from the
    /// enclosing stack frame.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result, or the panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope itself so
        /// it can spawn further threads, matching crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            ScopedJoinHandle {
                inner: inner_scope.spawn(move || {
                    let reentrant = Scope { inner: inner_scope };
                    f(&reentrant)
                }),
            }
        }
    }

    /// Runs `f` with a scope in which borrowing scoped threads can be
    /// spawned; all threads are joined before `scope` returns.
    ///
    /// crossbeam reports unjoined child panics through the returned
    /// `Result`; this std-backed version propagates them as panics from
    /// `std::thread::scope` instead, which the workspace's
    /// `.expect("crossbeam scope")` call sites treat identically.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_borrow_and_join() {
            let data = [1u64, 2, 3, 4];
            let total = super::scope(|s| {
                let handles: Vec<_> = data.iter().map(|v| s.spawn(move |_| v * 10)).collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
            })
            .unwrap();
            assert_eq!(total, 100);
        }

        #[test]
        fn nested_spawn_via_scope_arg() {
            let n = super::scope(|s| {
                s.spawn(|inner| inner.spawn(|_| 7).join().unwrap())
                    .join()
                    .unwrap()
            })
            .unwrap();
            assert_eq!(n, 7);
        }
    }
}
