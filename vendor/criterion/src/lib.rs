//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Implements the `criterion_group!` / `criterion_main!` macros,
//! [`Criterion::bench_function`], [`Bencher::iter`] and
//! [`Bencher::iter_batched`], timing every iteration individually and
//! reporting the *median* wall-clock time per iteration (a scheduling
//! spike in one sample cannot skew the reported figure). The per-run
//! *minimum* is kept alongside it in [`BenchRecord`]: for deterministic
//! compute, contention only ever adds time, so the minimum is the
//! noise-robust statistic the `wfctl bench` regression gate compares.
//! Sampling is deliberately small so `cargo bench` stays fast; this is a
//! smoke harness, not a statistics engine.

use std::time::{Duration, Instant};

/// Batch sizing hint; accepted for API compatibility, ignored.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// One finished benchmark's measurement, kept so harness-driving tools
/// (e.g. `wfctl bench`) can consume results programmatically instead of
/// scraping stdout.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRecord {
    /// The benchmark id passed to [`Criterion::bench_function`].
    pub id: String,
    /// Median wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Minimum wall-clock nanoseconds per iteration (the noise floor).
    pub min_ns_per_iter: f64,
    /// Total iterations timed.
    pub iters: u64,
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    quiet: bool,
    results: Vec<BenchRecord>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            quiet: false,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Suppresses the per-benchmark stdout line (results stay available
    /// through [`Criterion::results`]).
    pub fn quiet(mut self) -> Self {
        self.quiet = true;
        self
    }

    /// CLI-args hook; a no-op in this stand-in.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Every benchmark measured so far, in execution order.
    pub fn results(&self) -> &[BenchRecord] {
        &self.results
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            budget: self.sample_size,
        };
        f(&mut b);
        let total_iters: u64 = b.samples.iter().map(|(n, _)| n).sum();
        // Median of the per-iteration times: each sample's duration is
        // normalized by its iteration count first, so `iter` (one
        // iteration per sample) and hand-rolled multi-iteration samples
        // aggregate the same way.
        let mut per_iter_ns: Vec<f64> = b
            .samples
            .iter()
            .filter(|(n, _)| *n > 0)
            .map(|(n, d)| d.as_secs_f64() * 1e9 / *n as f64)
            .collect();
        per_iter_ns.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        let median_ns = match per_iter_ns.len() {
            0 => 0.0,
            len if len % 2 == 1 => per_iter_ns[len / 2],
            len => (per_iter_ns[len / 2 - 1] + per_iter_ns[len / 2]) / 2.0,
        };
        let min_ns = per_iter_ns.first().copied().unwrap_or(0.0);
        if !self.quiet {
            let median = Duration::from_secs_f64(median_ns / 1e9);
            println!("{id:<48} time: [{median:>12.3?}/iter median of {total_iters} iters]");
        }
        self.results.push(BenchRecord {
            id: id.to_string(),
            ns_per_iter: median_ns,
            min_ns_per_iter: min_ns,
            iters: total_iters,
        });
        self
    }
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<(u64, Duration)>,
    budget: usize,
}

impl Bencher {
    /// Times `budget` calls of `routine`, one sample per call.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        for _ in 0..self.budget {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push((1, start.elapsed()));
        }
    }

    /// Times `budget` calls of `routine` (one sample per call), excluding
    /// per-call `setup` time.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.budget {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push((1, start.elapsed()));
        }
    }
}

/// Re-export for code that uses `criterion::black_box`.
pub use std::hint::black_box;

/// Declares a benchmark group function, in either the positional or the
/// `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` that runs every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0u64;
        c.bench_function("counting", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 3);
    }

    #[test]
    fn results_record_every_benchmark() {
        let mut c = Criterion::default().sample_size(2).quiet();
        c.bench_function("first", |b| b.iter(|| 1 + 1));
        c.bench_function("second", |b| b.iter(|| 2 + 2));
        let results = c.results();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].id, "first");
        assert_eq!(results[1].id, "second");
        assert_eq!(results[0].iters, 2);
        assert!(results[0].ns_per_iter >= 0.0);
    }

    #[test]
    fn iter_batched_runs_setup_per_call() {
        let mut c = Criterion::default().sample_size(4);
        let mut setups = 0u64;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    setups
                },
                |v| v * 2,
                BatchSize::SmallInput,
            );
        });
        assert_eq!(setups, 4);
    }
}
