//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Implements the `criterion_group!` / `criterion_main!` macros,
//! [`Criterion::bench_function`], [`Bencher::iter`] and
//! [`Bencher::iter_batched`], reporting mean wall-clock time per iteration
//! to stdout. Sampling is deliberately small so `cargo bench` stays fast;
//! this is a smoke harness, not a statistics engine.

use std::time::{Duration, Instant};

/// Batch sizing hint; accepted for API compatibility, ignored.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// CLI-args hook; a no-op in this stand-in.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            budget: self.sample_size,
        };
        f(&mut b);
        let total_iters: u64 = b.samples.iter().map(|(n, _)| n).sum();
        let total_time: Duration = b.samples.iter().map(|(_, d)| *d).sum();
        let per_iter = if total_iters == 0 {
            Duration::ZERO
        } else {
            total_time / total_iters as u32
        };
        println!("{id:<48} time: [{per_iter:>12.3?}/iter over {total_iters} iters]");
        self
    }
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<(u64, Duration)>,
    budget: usize,
}

impl Bencher {
    /// Times `budget` calls of `routine`.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.budget {
            std::hint::black_box(routine());
        }
        self.samples.push((self.budget as u64, start.elapsed()));
    }

    /// Times `budget` calls of `routine`, excluding per-call `setup` time.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut timed = Duration::ZERO;
        for _ in 0..self.budget {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            timed += start.elapsed();
        }
        self.samples.push((self.budget as u64, timed));
    }
}

/// Re-export for code that uses `criterion::black_box`.
pub use std::hint::black_box;

/// Declares a benchmark group function, in either the positional or the
/// `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` that runs every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0u64;
        c.bench_function("counting", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 3);
    }

    #[test]
    fn iter_batched_runs_setup_per_call() {
        let mut c = Criterion::default().sample_size(4);
        let mut setups = 0u64;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    setups
                },
                |v| v * 2,
                BatchSize::SmallInput,
            );
        });
        assert_eq!(setups, 4);
    }
}
