//! Registry conformance: every registered target — built-in or
//! downstream — must build, run a short session to completion, and
//! round-trip its keyword through job-file parsing; duplicate keywords
//! must be rejected. Plus the end-to-end proof that the `linux-6.0-net`
//! scenario plugs in without touching the core crates, including through
//! the `wfctl` binary.

use std::process::Command;
use wayfinder::prelude::*;

/// The registry under test: built-ins plus the downstream scenario.
fn registry() -> TargetRegistry {
    wayfinder::scenarios::registry()
}

/// Small spaces and budgets keep the conformance sweep fast; the RISC-V
/// target still exercises real (virtual) builds.
const CONFORMANCE_PARAMS: usize = 56;
const CONFORMANCE_ITERS: usize = 5;

#[test]
fn every_registered_target_builds_and_runs_to_completion() {
    let registry = registry();
    assert!(registry.len() >= 6, "expected built-ins + scenario");
    for factory in registry.factories() {
        let keyword = factory.keyword().to_string();
        let mut session = SessionBuilder::new()
            .registry(registry.clone())
            .target(&keyword)
            .algorithm(AlgorithmChoice::Random)
            .runtime_params(CONFORMANCE_PARAMS)
            .iterations(CONFORMANCE_ITERS)
            .workers(1)
            .seed(41)
            .build()
            .unwrap_or_else(|e| panic!("{keyword} failed to build: {e}"));
        let descriptor = session.platform().descriptor().clone();
        assert_eq!(
            descriptor.app,
            factory.default_app(),
            "{keyword}: default app mismatch"
        );
        assert!(
            factory.apps().contains(&descriptor.app),
            "{keyword}: default app not in supported list"
        );
        let outcome = session.run();
        assert_eq!(
            outcome.summary.iterations, CONFORMANCE_ITERS,
            "{keyword}: session did not run to its budget"
        );
    }
}

#[test]
fn every_keyword_round_trips_through_a_job_file() {
    let registry = registry();
    for factory in registry.factories() {
        let keyword = factory.keyword().to_string();
        // Learn the target's default app and primary metric from a probe
        // instantiation, then write the job file a user would.
        let probe = factory
            .instantiate(&TargetRequest {
                app: factory.default_app().to_string(),
                runtime_params: CONFORMANCE_PARAMS,
            })
            .unwrap_or_else(|e| panic!("{keyword} default instantiation failed: {e}"));
        let descriptor = probe.target.descriptor().clone();
        let text = format!(
            "name: conformance\nos: {keyword}\napp: {}\nmetric: {}\nalgorithm: random\nseed: 23\nbudget:\n  iterations: {CONFORMANCE_ITERS}\n",
            descriptor.app, descriptor.metric,
        );
        let job = Job::parse(&text).unwrap_or_else(|e| panic!("{keyword} job parse: {e}"));
        assert_eq!(job.os, keyword, "jobfile os keyword round-trip");
        let mut session = SessionBuilder::from_job(&job)
            .unwrap_or_else(|e| panic!("{keyword} from_job: {e}"))
            .registry(registry.clone())
            .runtime_params(CONFORMANCE_PARAMS)
            .workers(1)
            .build()
            .unwrap_or_else(|e| panic!("{keyword} build from job: {e}"));
        assert_eq!(session.platform().descriptor().app, descriptor.app);
        let outcome = session.run();
        assert_eq!(outcome.summary.iterations, CONFORMANCE_ITERS, "{keyword}");
    }
}

#[test]
fn duplicate_keyword_registration_is_rejected() {
    let mut registry = registry();
    let err = wayfinder::scenarios::register(&mut registry)
        .expect_err("second registration of the same keyword must fail");
    assert_eq!(
        err,
        BuildError::DuplicateKeyword {
            keyword: "linux-6.0-net".into()
        }
    );
    // The registry is unchanged: the scenario still resolves once.
    assert!(registry.get("linux-6.0-net").is_some());
}

#[test]
fn scenario_runs_end_to_end_without_core_edits() {
    // The downstream target: searched space restricted to the network
    // stack, memcached identity on the descriptor, real headroom over the
    // default configuration.
    let job = Job::parse(
        "name: net-e2e\nos: linux-6.0-net\napp: memcached\nmetric: throughput\nalgorithm: random\nseed: 9\nbudget:\n  iterations: 30\n",
    )
    .expect("job parses");
    let mut session = SessionBuilder::from_job(&job)
        .expect("job maps to a builder")
        .registry(registry())
        .build()
        .expect("the scenario resolves through the registry");
    let descriptor = session.platform().descriptor().clone();
    assert_eq!(descriptor.name, "linux-6.0-net");
    assert_eq!(descriptor.app, "memcached");
    assert_eq!(descriptor.unit, "ops/s");
    for spec in session.platform().space().specs() {
        assert!(
            spec.name.starts_with("net.")
                || wayfinder::scenarios::NET_EXTRA_PARAMS.contains(&spec.name.as_str()),
            "non-network parameter {} leaked into the tuned space",
            spec.name
        );
    }
    let outcome = session.run();
    assert_eq!(outcome.summary.iterations, 30);
    let best = outcome.summary.best_metric.expect("a survivor");
    assert!(
        best > 700_000.0,
        "memcached throughput {best} implausibly low"
    );

    // Unsupported apps are rejected with the typed error.
    let err = SessionBuilder::new()
        .registry(registry())
        .target("linux-6.0-net")
        .app(AppId::Redis)
        .iterations(1)
        .build()
        .unwrap_err();
    assert!(matches!(err, BuildError::IncompatibleApp { .. }), "{err}");
}

#[test]
fn scenario_surfaces_through_the_wfctl_binary() {
    // `wfctl targets` lists the downstream keyword...
    let out = Command::new(env!("CARGO_BIN_EXE_wfctl"))
        .arg("targets")
        .output()
        .expect("wfctl targets runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("linux-6.0-net"), "{stdout}");
    assert!(stdout.contains("memcached"), "{stdout}");

    // ... and `wfctl run --os linux-6.0-net` drives it to completion.
    let out = Command::new(env!("CARGO_BIN_EXE_wfctl"))
        .args([
            "run",
            "--os",
            "linux-6.0-net",
            "--iterations",
            "5",
            "--seed",
            "3",
            "--workers",
            "1",
        ])
        .output()
        .expect("wfctl run runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("memcached on linux-6.0-net"), "{stdout}");
    assert!(stdout.contains("best throughput"), "{stdout}");

    // Unknown targets exit with the distinct UnknownTarget message and a
    // listing hint.
    let out = Command::new(env!("CARGO_BIN_EXE_wfctl"))
        .args(["run", "--os", "plan9"])
        .output()
        .expect("wfctl run runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown target \"plan9\""), "{stderr}");
    assert!(stderr.contains("wfctl targets"), "{stderr}");
}
