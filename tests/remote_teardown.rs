//! Regression tests for worker teardown in the remote backend: dropping
//! a [`RemoteBackend`] — cleanly or mid-panic — reaps every `wf-evald`
//! worker it launched, and a failed `spawn` kills the children it had
//! already started before returning the error. A session crash must
//! never leave orphaned evald processes grinding in the background.

#![cfg(unix)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};
use wayfinder::platform::remote::{RemoteBackend, RemoteSpec};

const JOB: &str = "name: teardown\nos: linux-4.19\nalgorithm: random\nseed: 1\nworkers: 2\nruntime_params: 64\nbudget:\n  iterations: 4\n";

fn evald_spec() -> RemoteSpec {
    RemoteSpec {
        command: env!("CARGO_BIN_EXE_wf-evald").into(),
        args: vec!["--job-inline".into(), JOB.into()],
    }
}

fn alive(pid: u32) -> bool {
    Path::new(&format!("/proc/{pid}")).exists()
}

/// Waits for every pid to disappear from the process table. Children are
/// reaped (`wait`ed) by the backend, so a dead worker leaves no zombie
/// and its `/proc` entry vanishes.
fn assert_all_dead(pids: &[u32], context: &str) {
    assert!(!pids.is_empty(), "{context}: no worker pids were recorded");
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let survivors: Vec<u32> = pids.iter().copied().filter(|&p| alive(p)).collect();
        if survivors.is_empty() {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "{context}: leaked worker processes {survivors:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn clean_drop_reaps_every_worker() {
    let backend = RemoteBackend::spawn(2, &evald_spec()).expect("workers launch");
    let pids = backend.child_pids();
    assert_eq!(pids.len(), 2, "one child per lane");
    assert!(
        pids.iter().all(|&p| alive(p)),
        "workers are running while the backend is held"
    );
    drop(backend);
    assert_all_dead(&pids, "clean drop");
}

#[test]
fn panicking_session_still_reaps_workers() {
    let mut pids = Vec::new();
    let result = catch_unwind(AssertUnwindSafe(|| {
        let backend = RemoteBackend::spawn(2, &evald_spec()).expect("workers launch");
        pids = backend.child_pids();
        // The backend is live on the stack when the panic unwinds
        // through it — exactly the crash-mid-session shape.
        panic!("session blew up mid-wave");
    }));
    assert!(result.is_err(), "the closure must panic");
    assert_all_dead(&pids, "panicked drop");
}

#[test]
fn failed_spawn_kills_already_launched_workers() {
    let dir = std::env::temp_dir().join(format!("wf-teardown-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let pidbase = dir.join("lane");
    // Lane 0 records its pid and parks; lane 1 waits until lane 0 is
    // provably up, then exits nonzero — forcing spawn's "worker exited
    // before connecting" error while lane 0 is still running.
    let script = dir.join("fake-worker.sh");
    std::fs::write(
        &script,
        "#!/bin/sh\npidbase=\"$1\"; lane=\"$5\"\nif [ \"$lane\" = \"0\" ]; then\n  echo $$ > \"$pidbase.tmp\" && mv \"$pidbase.tmp\" \"$pidbase.0\"\n  exec sleep 60\nfi\nwhile [ ! -f \"$pidbase.0\" ]; do sleep 0.01; done\nexit 3\n",
    )
    .unwrap();
    let mut perms = std::fs::metadata(&script).unwrap().permissions();
    std::os::unix::fs::PermissionsExt::set_mode(&mut perms, 0o755);
    std::fs::set_permissions(&script, perms).unwrap();

    let spec = RemoteSpec {
        command: script.clone(),
        args: vec![pidbase.to_str().unwrap().into()],
    };
    let err = match RemoteBackend::spawn(2, &spec) {
        Err(e) => e,
        Ok(_) => panic!("lane 1 dying must fail the launch"),
    };
    assert!(
        err.to_string().contains("worker exited before connecting"),
        "the error names the early exit: {err}"
    );

    let pidfile = PathBuf::from(format!("{}.0", pidbase.display()));
    let recorded = std::fs::read_to_string(&pidfile)
        .expect("lane 0 recorded its pid before lane 1 exited")
        .trim()
        .parse::<u32>()
        .expect("pidfile holds a pid");
    assert_all_dead(&[recorded], "failed spawn");
    std::fs::remove_dir_all(&dir).ok();
}
