//! End-to-end guarantees of the session store: for every registered
//! target and every search algorithm, a campaign interrupted at a wave
//! boundary and resumed from its on-disk store produces the exact same
//! history, best configuration, and compute clock as the uninterrupted
//! campaign — without re-evaluating a single completed candidate — and
//! `wfctl` drives the whole flow from the command line.

use std::path::PathBuf;
use std::process::Command;
use wayfinder::prelude::*;
use wayfinder::scenarios;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wf-e2e-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn build(keyword: &str, algorithm: AlgorithmChoice, iterations: usize) -> SpecializationSession {
    SessionBuilder::new()
        .name("equivalence")
        .target(keyword)
        .registry(scenarios::registry())
        .algorithm(algorithm)
        .runtime_params(64)
        .iterations(iterations)
        .seed(4242)
        .workers(2)
        .build()
        .expect("registered targets build")
}

/// Everything the resume guarantee covers, bit-exact per record.
fn trace(session: &SpecializationSession) -> Vec<(u64, Option<u64>, bool, bool, u64, u64)> {
    session
        .platform()
        .history()
        .records()
        .iter()
        .map(|r| {
            (
                r.config.fingerprint(),
                r.metric.map(f64::to_bits),
                r.crashed(),
                r.build_skipped,
                r.duration_s.to_bits(),
                r.finished_at_s.to_bits(),
            )
        })
        .collect()
}

/// Runs `keyword` × `algorithm` to completion twice — once uninterrupted,
/// once interrupted after `interrupt_waves` waves and resumed from the
/// store — and asserts the resumed campaign is indistinguishable.
fn assert_resume_equivalent(
    keyword: &str,
    algorithm: fn() -> AlgorithmChoice,
    iterations: usize,
    interrupt_waves: usize,
    tag: &str,
) {
    let mut full = build(keyword, algorithm(), iterations);
    let full_outcome = full.run();

    let dir = temp_dir(tag);
    let mut interrupted = build(keyword, algorithm(), iterations);
    let store = SessionStore::create(&dir, interrupted.resolved_job()).expect("fresh store");
    {
        let mut sink = store.sink().expect("event log");
        for _ in 0..interrupt_waves {
            interrupted.platform_mut().step_wave_with(&mut sink);
        }
    }
    let interrupted_len = interrupted.platform().history().len();
    assert!(
        interrupted_len < iterations,
        "{tag}: interrupt must land mid-campaign ({interrupted_len}/{iterations})"
    );
    drop(interrupted); // the crash: only the store survives

    let mut resumed =
        SessionBuilder::resume_with(&dir, scenarios::registry()).expect("store resumes");
    assert_eq!(
        resumed.platform().history().len(),
        interrupted_len,
        "{tag}: replay restores the stored prefix"
    );
    let resumed_outcome = {
        let mut sink = store.sink().expect("append");
        resumed.run_with(&mut sink)
    };

    assert_eq!(trace(&full), trace(&resumed), "{tag}: histories diverged");
    assert_eq!(
        full_outcome.best.as_ref().map(|(c, _)| c.fingerprint()),
        resumed_outcome.best.as_ref().map(|(c, _)| c.fingerprint()),
        "{tag}: best configuration diverged"
    );
    assert_eq!(
        full_outcome.best.as_ref().map(|(_, v)| v.to_bits()),
        resumed_outcome.best.as_ref().map(|(_, v)| v.to_bits()),
        "{tag}: best objective diverged"
    );
    assert_eq!(
        full_outcome.summary.compute_s.to_bits(),
        resumed_outcome.summary.compute_s.to_bits(),
        "{tag}: compute clock diverged"
    );
    assert_eq!(
        full_outcome.summary.elapsed_s.to_bits(),
        resumed_outcome.summary.elapsed_s.to_bits(),
        "{tag}: wall clock diverged"
    );

    // The store now holds the complete campaign.
    let loaded = SessionStore::open(&dir)
        .expect("open")
        .load()
        .expect("load");
    assert_eq!(loaded.records.len(), iterations, "{tag}");
    assert!(loaded.finished, "{tag}");
    std::fs::remove_dir_all(&dir).ok();
}

/// The acceptance matrix: every registered target × {random, grid,
/// bayes, causal}, interrupted after two waves.
#[test]
fn resume_equivalence_for_every_target_and_algorithm() {
    type Factory = fn() -> AlgorithmChoice;
    let algorithms: [(&str, Factory); 4] = [
        ("random", || AlgorithmChoice::Random),
        ("grid", || AlgorithmChoice::Grid),
        ("bayes", || AlgorithmChoice::Bayesian),
        ("causal", || AlgorithmChoice::Causal),
    ];
    for keyword in scenarios::registry().keywords() {
        for (name, algorithm) in algorithms {
            let tag = format!("{keyword}-{name}");
            assert_resume_equivalent(&keyword, algorithm, 8, 2, &tag);
        }
    }
}

/// Interrupting at *any* wave boundary resumes exactly — not just the
/// midpoint.
#[test]
fn resume_equivalence_at_every_wave_boundary() {
    for k in 1..4 {
        assert_resume_equivalent(
            "linux-4.19",
            || AlgorithmChoice::Random,
            8,
            k,
            &format!("boundary-{k}"),
        );
    }
}

/// DeepTune's replay retrains the surrogate from the persisted
/// observations, so even the model-based paper algorithm resumes exactly.
#[test]
fn resume_equivalence_for_deeptune() {
    assert_resume_equivalent("linux-4.19", || AlgorithmChoice::DeepTune, 6, 1, "deeptune");
}

/// A resumed-then-finished store replays a *third* time: stores stay
/// valid across arbitrarily many interruptions.
#[test]
fn stores_survive_repeated_resumes() {
    let dir = temp_dir("repeated");
    let mut first = build("linux-6.0-net", AlgorithmChoice::Random, 9);
    let store = SessionStore::create(&dir, first.resolved_job()).unwrap();
    {
        let mut sink = store.sink().unwrap();
        first.platform_mut().step_wave_with(&mut sink);
    }
    drop(first);

    // Second segment: two more waves, then "crash" again.
    let mut second = SessionBuilder::resume_with(&dir, scenarios::registry()).unwrap();
    {
        let mut sink = store.sink().unwrap();
        second.platform_mut().step_wave_with(&mut sink);
        second.platform_mut().step_wave_with(&mut sink);
    }
    drop(second);

    // Third segment runs to completion.
    let mut third = SessionBuilder::resume_with(&dir, scenarios::registry()).unwrap();
    assert_eq!(third.platform().history().len(), 6);
    let outcome = {
        let mut sink = store.sink().unwrap();
        third.run_with(&mut sink)
    };
    assert_eq!(outcome.summary.iterations, 9);

    let mut full = build("linux-6.0-net", AlgorithmChoice::Random, 9);
    let full_outcome = full.run();
    assert_eq!(trace(&full), trace(&third));
    assert_eq!(
        full_outcome.summary.compute_s.to_bits(),
        outcome.summary.compute_s.to_bits()
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The resume guarantee extends across epoch boundaries: a continuous
/// session interrupted *after* its first confirmed drift replays the
/// stored epochs offline and finishes bit-identical to the
/// uninterrupted run — same records, same epoch count, same persisted
/// `EpochStarted`/`DriftDetected` trail.
#[test]
fn continuous_sessions_resume_across_epoch_boundaries() {
    fn build_continuous(iterations: usize) -> SpecializationSession {
        SessionBuilder::new()
            .name("continuous-equivalence")
            .app(AppId::Nginx)
            .algorithm(AlgorithmChoice::Random)
            .runtime_params(56)
            .iterations(iterations)
            .seed(4711)
            .workers(2)
            .continuous(DriftSpec {
                shift_at_s: 600.0,
                window: 4,
                threshold: 0.12,
                min_epoch: 6,
                ..DriftSpec::default()
            })
            .build()
            .expect("continuous sessions build on the sim target")
    }
    const ITERATIONS: usize = 44;

    let full_dir = temp_dir("continuous-full");
    let mut full = build_continuous(ITERATIONS);
    let full_store = SessionStore::create(&full_dir, full.resolved_job()).unwrap();
    {
        let mut sink = full_store.sink().unwrap();
        full.run_with(&mut sink);
    }
    assert!(
        full.platform().epoch() >= 1,
        "the step must confirm at least one drift"
    );

    // Interrupt one wave past the first epoch boundary.
    let dir = temp_dir("continuous-resume");
    let mut interrupted = build_continuous(ITERATIONS);
    let store = SessionStore::create(&dir, interrupted.resolved_job()).unwrap();
    {
        let mut sink = store.sink().unwrap();
        // Stepping waves directly bypasses `run_with`'s session-start
        // emission, so open epoch 0 the way a real driver does.
        let epoch_zero = interrupted
            .platform()
            .epoch_zero_event()
            .expect("continuous sessions open with epoch 0");
        sink.on_event(&epoch_zero);
        while interrupted.platform().epoch() == 0 {
            assert!(
                interrupted.platform().history().len() < ITERATIONS,
                "budget exhausted before the drift confirmed"
            );
            interrupted.platform_mut().step_wave_with(&mut sink);
        }
        interrupted.platform_mut().step_wave_with(&mut sink);
    }
    drop(interrupted); // the crash: only the store survives

    // The manifest carries `mode: continuous` + the drift spec, so the
    // plain resume path rebuilds the detector and replays the epochs.
    let mut resumed = SessionBuilder::resume(&dir).expect("continuous store resumes");
    assert!(
        resumed.platform().epoch() >= 1,
        "replay must re-derive the epoch boundary offline"
    );
    {
        let mut sink = store.sink().unwrap();
        resumed.run_with(&mut sink);
    }

    assert_eq!(
        trace(&full),
        trace(&resumed),
        "continuous histories diverged"
    );
    assert_eq!(full.platform().epoch(), resumed.platform().epoch());

    // Both persisted trails agree, drift record for drift record.
    let a = full_store.load().unwrap();
    let b = store.load().unwrap();
    assert_eq!(a.records.len(), ITERATIONS);
    assert_eq!(a.epochs, b.epochs, "persisted epoch trails diverged");
    assert_eq!(a.drift_events, b.drift_events);
    assert!(a.epochs.len() >= 2, "epoch 0 plus every reopened epoch");
    assert!(!a.drift_events.is_empty());
    full_store.verify_chain().unwrap();
    store.verify_chain().unwrap();
    std::fs::remove_dir_all(&full_dir).ok();
    std::fs::remove_dir_all(&dir).ok();
}

fn wfctl(args: &[&str]) -> (bool, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_wfctl"))
        .args(args)
        .output()
        .expect("wfctl runs");
    let text = String::from_utf8_lossy(&output.stdout).into_owned();
    (output.status.success(), text)
}

/// The CLI smoke the CI leg mirrors: run a campaign to completion, run
/// the same job to half budget, resume it to the full budget, and demand
/// byte-identical offline reports.
#[test]
fn wfctl_run_resume_report_round_trip() {
    let base = temp_dir("cli");
    std::fs::create_dir_all(&base).unwrap();
    let job = base.join("job.yaml");
    std::fs::write(
        &job,
        "name: smoke\nos: linux-4.19\nalgorithm: random\nseed: 11\nworkers: 1\nruntime_params: 64\nbudget:\n  iterations: 10\n",
    )
    .unwrap();
    let job = job.to_str().unwrap().to_string();
    let full = base.join("full").to_str().unwrap().to_string();
    let half = base.join("half").to_str().unwrap().to_string();

    let (ok, _) = wfctl(&["run", &job, "--out", &full]);
    assert!(ok, "full run");
    let (ok, _) = wfctl(&["run", &job, "--out", &half, "--iterations", "5"]);
    assert!(ok, "half run");
    let (ok, resumed) = wfctl(&["resume", &half, "--iterations", "10"]);
    assert!(ok, "resume");
    assert!(
        resumed.contains("replayed 5 evaluation(s)"),
        "resume replays the stored prefix:\n{resumed}"
    );

    let (ok, report_full) = wfctl(&["report", &full]);
    assert!(ok, "report full");
    let (ok, report_half) = wfctl(&["report", &half]);
    assert!(ok, "report half");
    assert_eq!(
        report_full, report_half,
        "interrupted+resumed report must match the uninterrupted one"
    );
    assert!(report_full.contains("status: finished, 10 evaluation(s)"));

    // Reports are rendered offline: corrupting nothing, evaluating
    // nothing — rendering twice is instant and stable.
    let (_, again) = wfctl(&["report", &full]);
    assert_eq!(report_full, again);

    // A second `run --out` into an existing store is refused with a
    // resume hint.
    let output = Command::new(env!("CARGO_BIN_EXE_wfctl"))
        .args(["run", &job, "--out", &full])
        .output()
        .unwrap();
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("resume"), "{stderr}");

    // Unknown flags stay hard errors (flag-parity satellite).
    let output = Command::new(env!("CARGO_BIN_EXE_wfctl"))
        .args(["run", &job, "--bogus"])
        .output()
        .unwrap();
    assert!(!output.status.success());

    // The new run flags are accepted.
    let quick = base.join("quick").to_str().unwrap().to_string();
    let (ok, _) = wfctl(&[
        "run",
        &job,
        "--out",
        &quick,
        "--iterations",
        "4",
        "--repetitions",
        "2",
        "--time-budget-s",
        "100000",
    ]);
    assert!(ok, "repetitions/time-budget flags");

    // `validate` previews the resolved defaults a manifest would record.
    let (ok, validated) = wfctl(&["validate", &job]);
    assert!(ok, "validate");
    assert!(
        validated.contains("resolved defaults:"),
        "validate preview:\n{validated}"
    );
    std::fs::remove_dir_all(&base).ok();
}
