//! End-to-end daemon lifecycle: a real `wfd` process serves concurrent
//! sessions over its Unix socket, and each daemon-run session is
//! *bit-identical* to the same job run standalone with `wfctl run` —
//! sessions share nothing but the target registry. Shutdown via SIGINT
//! is graceful: the socket is removed and every ledger hash-verifies.

#![cfg(unix)]

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn wfctl(args: &[&str]) -> (bool, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_wfctl"))
        .args(args)
        .output()
        .expect("wfctl runs");
    (
        output.status.success(),
        String::from_utf8_lossy(&output.stdout).into_owned(),
    )
}

fn job_yaml(name: &str, seed: u64) -> String {
    format!(
        "name: {name}\nos: linux-4.19\nalgorithm: random\nseed: {seed}\nworkers: 2\nruntime_params: 64\nbudget:\n  iterations: 8\n"
    )
}

fn wait_for(deadline: Instant, what: &str, mut done: impl FnMut() -> bool) {
    while !done() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(25));
    }
}

struct Wfd {
    child: Child,
    socket: PathBuf,
}

impl Wfd {
    fn start(root: &Path) -> Wfd {
        let child = Command::new(env!("CARGO_BIN_EXE_wfd"))
            .args(["--root", root.to_str().unwrap()])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("wfd spawns");
        let socket = root.join("wfd.sock");
        Wfd { child, socket }
    }
}

impl Drop for Wfd {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

#[test]
fn concurrent_daemon_sessions_match_standalone_runs_bit_for_bit() {
    let base = std::env::temp_dir().join(format!("wf-daemon-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();
    let root = base.join("root");
    let root_s = root.to_str().unwrap().to_string();

    let mut wfd = Wfd::start(&root);
    wait_for(
        Instant::now() + Duration::from_secs(30),
        "the daemon socket",
        || wfd.socket.exists(),
    );

    // Submit four jobs back to back so their sessions overlap in the
    // daemon; each must still come out identical to a solo run.
    let seeds = [11u64, 12, 13, 14];
    let mut jobs = Vec::new();
    let mut stores = Vec::new();
    for (i, &seed) in seeds.iter().enumerate() {
        let job = base.join(format!("job{i}.yaml"));
        std::fs::write(&job, job_yaml(&format!("tenant-{i}"), seed)).unwrap();
        let job = job.to_str().unwrap().to_string();
        let (ok, out) = wfctl(&["submit", &job, "--daemon", &root_s]);
        assert!(ok, "submit succeeds:\n{out}");
        assert!(
            out.contains(&format!("as session {}", i + 1)),
            "sessions get sequential ids:\n{out}"
        );
        let store = out
            .lines()
            .find_map(|l| l.strip_prefix("store: "))
            .unwrap_or_else(|| panic!("submit prints the store dir:\n{out}"))
            .to_string();
        jobs.push(job);
        stores.push(store);
    }

    // All four run to completion; `sessions` converges on four
    // finished rows with no failures.
    wait_for(
        Instant::now() + Duration::from_secs(120),
        "all sessions to finish",
        || {
            let (ok, out) = wfctl(&["sessions", "--daemon", &root_s]);
            assert!(ok, "sessions succeeds:\n{out}");
            assert!(!out.contains("failed"), "no session may fail:\n{out}");
            out.matches("finished").count() == seeds.len()
        },
    );

    // Watching a finished session drains an immediate end frame.
    let (ok, out) = wfctl(&["watch", "1", "--daemon", &root_s]);
    assert!(ok, "watch succeeds:\n{out}");
    assert!(
        out.contains("session 1 finished"),
        "watch reports the terminal status:\n{out}"
    );

    for (i, (job, store)) in jobs.iter().zip(&stores).enumerate() {
        // The daemon ledger is hash-chain clean...
        let (ok, out) = wfctl(&["verify", store]);
        assert!(ok, "daemon ledger {i} verifies:\n{out}");
        // ...and the session is indistinguishable from a solo run.
        let reference = base.join(format!("ref{i}"));
        let reference = reference.to_str().unwrap();
        let (ok, _) = wfctl(&["run", job, "--out", reference]);
        assert!(ok, "reference run {i}");
        let (ok, daemon_report) = wfctl(&["report", store]);
        assert!(ok);
        let (ok, solo_report) = wfctl(&["report", reference]);
        assert!(ok);
        assert_eq!(
            daemon_report, solo_report,
            "daemon session {i} must be bit-identical to its solo run"
        );
    }

    // SIGINT shuts the daemon down cleanly and removes its socket.
    let sigint = Command::new("kill")
        .args(["-INT", &wfd.child.id().to_string()])
        .status()
        .expect("kill runs");
    assert!(sigint.success());
    let status = wfd.child.wait().expect("wfd exits");
    assert!(status.success(), "wfd exits cleanly on SIGINT: {status}");
    assert!(!wfd.socket.exists(), "shutdown removes the socket");
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn stop_parks_a_session_that_resume_can_finish() {
    let base = std::env::temp_dir().join(format!("wf-daemon-stop-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();
    let root = base.join("root");
    let root_s = root.to_str().unwrap().to_string();

    let wfd = Wfd::start(&root);
    wait_for(
        Instant::now() + Duration::from_secs(30),
        "the daemon socket",
        || wfd.socket.exists(),
    );

    // A budget the session cannot finish before we stop it.
    let job = base.join("job.yaml");
    std::fs::write(
        &job,
        "name: parked\nos: linux-4.19\nalgorithm: random\nseed: 7\nworkers: 2\nruntime_params: 64\nbudget:\n  iterations: 200000\n",
    )
    .unwrap();
    let (ok, out) = wfctl(&["submit", job.to_str().unwrap(), "--daemon", &root_s]);
    assert!(ok, "submit succeeds:\n{out}");
    let store = out
        .lines()
        .find_map(|l| l.strip_prefix("store: "))
        .expect("submit prints the store dir")
        .to_string();

    // Let it make visible progress, then park it.
    wait_for(
        Instant::now() + Duration::from_secs(60),
        "visible progress",
        || {
            std::fs::read_to_string(Path::new(&store).join("events.jsonl"))
                .map(|t| t.matches("\"event\":\"candidate\"").count() >= 4)
                .unwrap_or(false)
        },
    );
    let (ok, _) = wfctl(&["stop", "1", "--daemon", &root_s]);
    assert!(ok, "stop succeeds");
    wait_for(
        Instant::now() + Duration::from_secs(60),
        "the session to park",
        || {
            let (ok, out) = wfctl(&["sessions", "--daemon", &root_s]);
            assert!(ok);
            out.contains("stopped")
        },
    );

    // The parked store is chain-clean and resumable offline.
    let (ok, _) = wfctl(&["verify", &store]);
    assert!(ok, "parked ledger verifies");
    let parked = std::fs::read_to_string(Path::new(&store).join("events.jsonl"))
        .unwrap()
        .matches("\"event\":\"candidate\"")
        .count();
    let budget = (parked + 4).to_string();
    let (ok, out) = wfctl(&["resume", &store, "--iterations", &budget]);
    assert!(ok, "a parked daemon store resumes offline:\n{out}");
    let (ok, _) = wfctl(&["verify", &store]);
    assert!(ok, "resumed ledger verifies");
    drop(wfd);
    std::fs::remove_dir_all(&base).ok();
}
