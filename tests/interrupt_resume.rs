//! Regression tests for SIGINT handling in `wfctl run`: Ctrl-C is
//! caught, the wave loop stops at the next wave boundary with the event
//! log flushed and checkpointed, the process exits with the
//! interrupt-style code 130 and a resume hint, and `wfctl resume`
//! continues the store so that interrupted-then-resumed equals
//! uninterrupted — the interrupt loses at most the in-flight wave.

#![cfg(unix)]

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wf-sigint-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn wfctl(args: &[&str]) -> (bool, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_wfctl"))
        .args(args)
        .output()
        .expect("wfctl runs");
    (
        output.status.success(),
        String::from_utf8_lossy(&output.stdout).into_owned(),
    )
}

/// Counts completed candidate lines currently visible in the log.
fn candidate_lines(store: &Path) -> usize {
    std::fs::read_to_string(store.join("events.jsonl"))
        .map(|text| {
            text.lines()
                .filter(|l| l.contains("\"event\":\"candidate\""))
                .count()
        })
        .unwrap_or(0)
}

/// The SIGINT contract extends to continuous sessions: interrupting
/// after the first epoch boundary, resuming, and reporting must be
/// indistinguishable from the uninterrupted run — including the
/// adaptation-trajectory table the report renders from the persisted
/// epoch records.
#[test]
fn sigint_mid_continuous_session_resumes_identically() {
    let base = temp_dir("drift");
    let job = base.join("job.yaml");
    std::fs::write(
        &job,
        "name: sigint-drift\nos: linux-4.19\nalgorithm: random\nseed: 29\nworkers: 2\nruntime_params: 56\nmode: continuous\nbudget:\n  iterations: 200000\ndrift:\n  scenario: step\n  shift_at_s: 600\n  window: 4\n  threshold: 0.12\n  min_epoch: 6\n",
    )
    .unwrap();
    let job = job.to_str().unwrap().to_string();
    let store = base.join("interrupted");

    let mut child = Command::new(env!("CARGO_BIN_EXE_wfctl"))
        .args(["run", &job, "--out", store.to_str().unwrap()])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("wfctl spawns");

    // Let the run get well past the first drift confirmation (the step
    // shifts at ~10 evaluations, the detector needs a handful more)
    // before pulling the plug.
    let deadline = Instant::now() + Duration::from_secs(60);
    while candidate_lines(&store) < 26 {
        assert!(Instant::now() < deadline, "session never crossed the shift");
        assert!(
            child.try_wait().expect("try_wait").is_none(),
            "wfctl exited before it could be interrupted"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    let sigint = Command::new("kill")
        .args(["-INT", &child.id().to_string()])
        .status()
        .expect("kill runs");
    assert!(sigint.success(), "kill -INT failed");
    let output = child.wait_with_output().expect("wfctl exits");
    assert_eq!(output.status.code(), Some(130));

    let (ok, _) = wfctl(&["verify", store.to_str().unwrap()]);
    assert!(ok, "interrupted continuous ledger hash-verifies");
    let epochs_seen = std::fs::read_to_string(store.join("events.jsonl"))
        .unwrap()
        .lines()
        .filter(|l| l.contains("\"event\":\"epoch_started\""))
        .count();
    assert!(
        epochs_seen >= 2,
        "the interrupt must land past the first reopened epoch ({epochs_seen})"
    );

    let n = candidate_lines(&store);
    let total_s = (n + 10).to_string();
    let (ok, resumed) = wfctl(&["resume", store.to_str().unwrap(), "--iterations", &total_s]);
    assert!(ok, "continuous resume completes:\n{resumed}");

    let reference = base.join("reference");
    let (ok, _) = wfctl(&[
        "run",
        &job,
        "--out",
        reference.to_str().unwrap(),
        "--iterations",
        &total_s,
    ]);
    assert!(ok, "reference run");

    let (ok, report_resumed) = wfctl(&["report", store.to_str().unwrap()]);
    assert!(ok);
    let (ok, report_reference) = wfctl(&["report", reference.to_str().unwrap()]);
    assert!(ok);
    assert_eq!(
        report_resumed, report_reference,
        "interrupted+resumed trajectory must match the uninterrupted one"
    );
    assert!(
        report_resumed.contains("adaptation trajectory"),
        "the report renders the epoch trail:\n{report_resumed}"
    );
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn sigint_parks_at_a_wave_boundary_and_resume_completes_identically() {
    let base = temp_dir("run");
    let job = base.join("job.yaml");
    // A budget far larger than the interrupt point, so the signal always
    // lands mid-campaign.
    std::fs::write(
        &job,
        "name: sigint\nos: linux-4.19\nalgorithm: random\nseed: 23\nworkers: 2\nruntime_params: 64\nbudget:\n  iterations: 200000\n",
    )
    .unwrap();
    let job = job.to_str().unwrap().to_string();
    let store = base.join("interrupted");

    let mut child = Command::new(env!("CARGO_BIN_EXE_wfctl"))
        .args(["run", &job, "--out", store.to_str().unwrap()])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("wfctl spawns");

    // Wait until the session is demonstrably mid-campaign (the handler is
    // installed before the first wave runs, so visible progress implies
    // SIGINT will be caught, not fatal).
    let deadline = Instant::now() + Duration::from_secs(60);
    while candidate_lines(&store) < 6 {
        assert!(
            Instant::now() < deadline,
            "session never made visible progress"
        );
        assert!(
            child.try_wait().expect("try_wait").is_none(),
            "wfctl exited before it could be interrupted"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    let sigint = Command::new("kill")
        .args(["-INT", &child.id().to_string()])
        .status()
        .expect("kill runs");
    assert!(sigint.success(), "kill -INT failed");

    let output = child.wait_with_output().expect("wfctl exits");
    assert_eq!(
        output.status.code(),
        Some(130),
        "an interrupted run exits with code 130"
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("interrupted: stopped at a wave boundary"),
        "stderr announces the clean stop:\n{stderr}"
    );
    assert!(
        stderr.contains("wfctl resume"),
        "stderr offers the resume hint:\n{stderr}"
    );

    // The store parked on a consistent wave boundary: the ledger chain
    // verifies, and the visible records are whole waves (workers = 2).
    let (ok, verified) = wfctl(&["verify", store.to_str().unwrap()]);
    assert!(ok, "interrupted ledger hash-verifies:\n{verified}");
    let n = candidate_lines(&store);
    assert!(n >= 6, "the progress we saw is durable");
    assert_eq!(n % 2, 0, "only whole waves are persisted");

    // Resume to a reachable budget; a fresh uninterrupted run of the
    // same budget must be byte-identical, report for report.
    let total = n + 20;
    let total_s = total.to_string();
    let (ok, resumed) = wfctl(&["resume", store.to_str().unwrap(), "--iterations", &total_s]);
    assert!(ok, "resume completes:\n{resumed}");
    assert!(
        resumed.contains(&format!("replayed {n} evaluation(s)")),
        "resume replays every interrupted evaluation (n = {n}):\n{resumed}"
    );

    let reference = base.join("reference");
    let (ok, _) = wfctl(&[
        "run",
        &job,
        "--out",
        reference.to_str().unwrap(),
        "--iterations",
        &total_s,
    ]);
    assert!(ok, "reference run");

    let (ok, report_resumed) = wfctl(&["report", store.to_str().unwrap()]);
    assert!(ok);
    let (ok, report_reference) = wfctl(&["report", reference.to_str().unwrap()]);
    assert!(ok);
    assert_eq!(
        report_resumed, report_reference,
        "interrupted+resumed must be indistinguishable from uninterrupted"
    );

    // Both final ledgers verify end to end.
    let (ok, _) = wfctl(&["verify", store.to_str().unwrap()]);
    assert!(ok);
    let (ok, _) = wfctl(&["verify", reference.to_str().unwrap()]);
    assert!(ok);
    std::fs::remove_dir_all(&base).ok();
}
