//! Integration tests for paper claims that no single crate can check on
//! its own: the §4.1 high-impact-parameter recovery and the C1 headline
//! (automatic improvement over the default configuration).

use wayfinder::deeptune::{top_negative, top_positive};
use wayfinder::prelude::*;

/// §4.1: after a session, the model's importance query surfaces the
/// documented parameters — positives like `net.core.somaxconn` /
/// `net.core.rmem_default` / `vm.stat_interval`, negatives like
/// `kernel.printk_delay` / `vm.block_dump`.
#[test]
fn high_impact_parameters_are_recovered() {
    let mut session = SessionBuilder::new()
        .app(AppId::Nginx)
        .algorithm(AlgorithmChoice::DeepTune)
        .runtime_params(56)
        .iterations(60)
        .seed(41)
        .build()
        .unwrap();
    let _ = session.run();
    let impacts = session.parameter_impacts().expect("trained model");

    let positives: Vec<&str> = top_positive(&impacts, 10)
        .iter()
        .map(|p| p.name.as_str())
        .collect();
    let documented_positive = [
        "net.core.somaxconn",
        "net.core.rmem_default",
        "net.ipv4.tcp_max_syn_backlog",
        "net.ipv4.tcp_keepalive_time",
        "vm.stat_interval",
        "net.core.default_qdisc",
        "net.ipv4.tcp_congestion_control",
    ];
    let hits = documented_positive
        .iter()
        .filter(|d| positives.contains(*d))
        .count();
    assert!(
        hits >= 2,
        "expected documented positives in the top-10, got {positives:?}"
    );

    let negatives: Vec<&str> = top_negative(&impacts, 10)
        .iter()
        .map(|p| p.name.as_str())
        .collect();
    let documented_negative = ["kernel.printk_delay", "vm.block_dump", "kernel.printk"];
    let neg_hits = documented_negative
        .iter()
        .filter(|d| negatives.contains(*d))
        .count();
    assert!(
        neg_hits >= 1,
        "expected documented negatives in the top-10, got {negatives:?}"
    );
}

/// C1 (reduced scale): Wayfinder automatically finds an Nginx
/// configuration faster than the default, fully automatically.
#[test]
fn wayfinder_improves_nginx_over_the_default() {
    let mut session = SessionBuilder::new()
        .app(AppId::Nginx)
        .algorithm(AlgorithmChoice::DeepTune)
        .runtime_params(56)
        .iterations(60)
        .seed(43)
        .build()
        .unwrap();
    let outcome = session.run();
    let best = outcome.summary.best_metric.expect("found something");
    // The Table 2 default is 15 731 req/s; at 60 iterations a few percent
    // of the 24% full-budget gain must already be realized.
    assert!(
        best > 15_731.0 * 1.04,
        "best {best} should clearly beat the default"
    );
    // And the crash rate stays below random's ~1/3 as the model learns.
    assert!(
        outcome.summary.crash_rate < 0.33,
        "crash rate {}",
        outcome.summary.crash_rate
    );
}
