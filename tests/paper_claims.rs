//! Integration tests for paper claims that no single crate can check on
//! its own: the §4.1 high-impact-parameter recovery and the C1 headline
//! (automatic improvement over the default configuration).

use wayfinder::deeptune::{top_negative, top_positive};
use wayfinder::prelude::*;

/// §4.1: after a session, the model's importance query surfaces the
/// documented parameters — positives like `net.core.somaxconn` /
/// `net.core.rmem_default` / `vm.stat_interval`, negatives like
/// `kernel.printk_delay` / `vm.block_dump`.
///
/// A single short session's ranking is seed-noisy (the paper queries fully
/// trained models), so the claim is checked on impacts averaged over three
/// independent replicate sessions — the estimator a practitioner would
/// actually use at this budget.
#[test]
fn high_impact_parameters_are_recovered() {
    let mut best: std::collections::HashMap<String, f64> = std::collections::HashMap::new();
    let mut worst: std::collections::HashMap<String, f64> = std::collections::HashMap::new();
    const REPLICATES: u64 = 3;
    for seed in 201..201 + REPLICATES {
        let mut session = SessionBuilder::new()
            .app(AppId::Nginx)
            .algorithm(AlgorithmChoice::DeepTune)
            .runtime_params(56)
            .iterations(120)
            .seed(seed)
            // The paper's sessions evaluate sequentially; keep the claim
            // check on that pipeline even when WF_WORKERS widens the pool.
            .workers(1)
            .build()
            .unwrap();
        let _ = session.run();
        let replicate = session.parameter_impacts().expect("trained model");
        for impact in &replicate {
            *best.entry(impact.name.clone()).or_default() += impact.best_delta / REPLICATES as f64;
            *worst.entry(impact.name.clone()).or_default() +=
                impact.worst_delta / REPLICATES as f64;
        }
    }
    let impacts: Vec<wayfinder::deeptune::ParamImpact> = best
        .iter()
        .map(|(name, b)| wayfinder::deeptune::ParamImpact {
            name: name.clone(),
            best_delta: *b,
            worst_delta: worst[name],
        })
        .collect();

    let positives: Vec<&str> = top_positive(&impacts, 10)
        .iter()
        .map(|p| p.name.as_str())
        .collect();
    let documented_positive = [
        "net.core.somaxconn",
        "net.core.rmem_default",
        "net.ipv4.tcp_max_syn_backlog",
        "net.ipv4.tcp_keepalive_time",
        "vm.stat_interval",
        "net.core.default_qdisc",
        "net.ipv4.tcp_congestion_control",
    ];
    let hits = documented_positive
        .iter()
        .filter(|d| positives.contains(*d))
        .count();
    assert!(
        hits >= 2,
        "expected documented positives in the top-10, got {positives:?}"
    );

    let negatives: Vec<&str> = top_negative(&impacts, 10)
        .iter()
        .map(|p| p.name.as_str())
        .collect();
    let documented_negative = ["kernel.printk_delay", "vm.block_dump", "kernel.printk"];
    let neg_hits = documented_negative
        .iter()
        .filter(|d| negatives.contains(*d))
        .count();
    assert!(
        neg_hits >= 1,
        "expected documented negatives in the top-10, got {negatives:?}"
    );
}

/// C1 (reduced scale): Wayfinder automatically finds an Nginx
/// configuration faster than the default, fully automatically.
#[test]
fn wayfinder_improves_nginx_over_the_default() {
    let mut session = SessionBuilder::new()
        .app(AppId::Nginx)
        .algorithm(AlgorithmChoice::DeepTune)
        .runtime_params(56)
        .iterations(60)
        .seed(43)
        // Sequential pipeline: the C1 claim is about the paper's setup.
        .workers(1)
        .build()
        .unwrap();
    let outcome = session.run();
    let best = outcome.summary.best_metric.expect("found something");
    // The Table 2 default is 15 731 req/s; at 60 iterations a few percent
    // of the 24% full-budget gain must already be realized.
    assert!(
        best > 15_731.0 * 1.04,
        "best {best} should clearly beat the default"
    );
    // And the crash rate stays below random's ~1/3 as the model learns.
    assert!(
        outcome.summary.crash_rate < 0.33,
        "crash rate {}",
        outcome.summary.crash_rate
    );
}
