//! Integration tests for paper claims that no single crate can check on
//! its own: the §4.1 high-impact-parameter recovery, the C1 headline
//! (automatic improvement over the default configuration), and the
//! continuous-specialization claim (transfer-seeded re-specialization
//! recovers from a workload shift in fewer evaluations than a cold
//! restart).

use wayfinder::deeptune::{top_negative, top_positive, DeepTune, DeepTuneConfig};
use wayfinder::jobfile::Budget;
use wayfinder::kconfig::LinuxVersion;
use wayfinder::ossim::{App, SimOs};
use wayfinder::platform::{Session as PlatformSession, SessionSpec};
use wayfinder::prelude::*;

/// §4.1: after a session, the model's importance query surfaces the
/// documented parameters — positives like `net.core.somaxconn` /
/// `net.core.rmem_default` / `vm.stat_interval`, negatives like
/// `kernel.printk_delay` / `vm.block_dump`.
///
/// A single short session's ranking is seed-noisy (the paper queries fully
/// trained models), so the claim is checked on impacts averaged over three
/// independent replicate sessions — the estimator a practitioner would
/// actually use at this budget.
#[test]
fn high_impact_parameters_are_recovered() {
    let mut best: std::collections::HashMap<String, f64> = std::collections::HashMap::new();
    let mut worst: std::collections::HashMap<String, f64> = std::collections::HashMap::new();
    const REPLICATES: u64 = 3;
    for seed in 201..201 + REPLICATES {
        let mut session = SessionBuilder::new()
            .app(AppId::Nginx)
            .algorithm(AlgorithmChoice::DeepTune)
            .runtime_params(56)
            .iterations(120)
            .seed(seed)
            // The paper's sessions evaluate sequentially; keep the claim
            // check on that pipeline even when WF_WORKERS widens the pool.
            .workers(1)
            .build()
            .unwrap();
        let _ = session.run();
        let replicate = session.parameter_impacts().expect("trained model");
        for impact in &replicate {
            *best.entry(impact.name.clone()).or_default() += impact.best_delta / REPLICATES as f64;
            *worst.entry(impact.name.clone()).or_default() +=
                impact.worst_delta / REPLICATES as f64;
        }
    }
    let impacts: Vec<wayfinder::deeptune::ParamImpact> = best
        .iter()
        .map(|(name, b)| wayfinder::deeptune::ParamImpact {
            name: name.clone(),
            best_delta: *b,
            worst_delta: worst[name],
        })
        .collect();

    let positives: Vec<&str> = top_positive(&impacts, 10)
        .iter()
        .map(|p| p.name.as_str())
        .collect();
    let documented_positive = [
        "net.core.somaxconn",
        "net.core.rmem_default",
        "net.ipv4.tcp_max_syn_backlog",
        "net.ipv4.tcp_keepalive_time",
        "vm.stat_interval",
        "net.core.default_qdisc",
        "net.ipv4.tcp_congestion_control",
    ];
    let hits = documented_positive
        .iter()
        .filter(|d| positives.contains(*d))
        .count();
    assert!(
        hits >= 2,
        "expected documented positives in the top-10, got {positives:?}"
    );

    let negatives: Vec<&str> = top_negative(&impacts, 10)
        .iter()
        .map(|p| p.name.as_str())
        .collect();
    let documented_negative = ["kernel.printk_delay", "vm.block_dump", "kernel.printk"];
    let neg_hits = documented_negative
        .iter()
        .filter(|d| negatives.contains(*d))
        .count();
    assert!(
        neg_hits >= 1,
        "expected documented negatives in the top-10, got {negatives:?}"
    );
}

/// What one continuous run did after its first confirmed drift.
struct Recovery {
    /// History index where epoch 1 opened.
    epoch1_start: usize,
    /// The phase epoch 1 opened under (e.g. `shifted`, `day`, `flash`).
    phase: String,
    /// Objectives of every candidate from `epoch1_start` to the end of
    /// the budget, in iteration order.
    post: Vec<Option<f64>>,
}

/// Runs a continuous DeepTune session on Nginx and extracts the
/// first-epoch recovery trajectory.
fn continuous_recovery(scenario: DriftScenarioId, shift_at_s: f64, transfer: bool) -> Recovery {
    let spec = DriftSpec {
        scenario,
        shift_at_s,
        transfer,
        ..DriftSpec::default()
    };
    let mut session = SessionBuilder::new()
        .app(AppId::Nginx)
        .algorithm(AlgorithmChoice::DeepTune)
        .runtime_params(56)
        .iterations(90)
        .seed(47)
        .workers(1)
        .continuous(spec)
        .build()
        .unwrap();
    let mut sink = RecordingSink::new();
    let _ = session.run_with(&mut sink);
    let mut epoch1: Option<(usize, String)> = None;
    let mut post = Vec::new();
    for event in &sink.events {
        match event {
            SessionEvent::EpochStarted {
                epoch: 1,
                first_iteration,
                phase,
                ..
            } => epoch1 = Some((*first_iteration, phase.clone())),
            SessionEvent::CandidateEvaluated(r) => {
                if let Some((start, _)) = &epoch1 {
                    if r.iteration >= *start {
                        post.push(r.objective);
                    }
                }
            }
            _ => {}
        }
    }
    let (epoch1_start, phase) = epoch1.expect("the shift must confirm a drift");
    Recovery {
        epoch1_start,
        phase,
        post,
    }
}

/// Empirical post-shift oracle: the best objective a long-budget static
/// DeepTune session finds on the shifted phase's response surface. The
/// analytic headroom bound in `DriftSchedule::oracle_metric` is an upper
/// bound search rarely attains, so the claim is checked against what is
/// actually reachable.
fn post_shift_oracle(scenario: DriftScenarioId, shift_at_s: f64, phase: &str) -> f64 {
    let os = SimOs::linux_runtime(LinuxVersion::V4_19, 56);
    let app = App::by_id(AppId::Nginx);
    let kind = DriftScenario::parse(scenario.keyword()).unwrap();
    let schedule = DriftSchedule::scenario(kind, &os, &app, shift_at_s);
    let phase_app = schedule
        .phases()
        .iter()
        .find(|p| p.name == phase)
        .expect("epoch phase exists in the schedule")
        .app
        .clone();
    let mut session = PlatformSession::new(
        os,
        phase_app,
        Box::new(DeepTune::new(DeepTuneConfig {
            seed: 0xdeeb ^ 47,
            ..DeepTuneConfig::default()
        })),
        SessionSpec {
            budget: Budget {
                iterations: Some(100),
                time_seconds: None,
            },
            seed: 47,
            workers: 1,
            ..SessionSpec::default()
        },
    );
    session
        .run()
        .best_objective
        .expect("oracle run found something")
}

/// Evaluations after the epoch boundary until the trajectory first
/// reaches `threshold`; `None` when the budget runs out first.
fn evals_to_reach(post: &[Option<f64>], threshold: f64) -> Option<usize> {
    post.iter()
        .position(|o| o.is_some_and(|v| v >= threshold))
        .map(|i| i + 1)
}

/// Continuous-specialization claim: on all three simulated drift
/// scenarios, transfer-seeded re-specialization reaches within 5% of the
/// post-shift oracle in measurably fewer evaluations than a cold
/// restart. Transfer and cold runs share a seed, so their epoch-0 prefix
/// — and hence the detection point — is identical; they diverge exactly
/// at `begin_epoch`.
#[test]
fn transfer_seeded_respecialization_beats_cold_restart() {
    let scenarios = [
        (DriftScenarioId::Step, 900.0),
        (DriftScenarioId::Diurnal, 1500.0),
        (DriftScenarioId::FlashCrowd, 900.0),
    ];
    let mut total_transfer = 0usize;
    let mut total_cold = 0usize;
    for (scenario, shift_at_s) in scenarios {
        let warm = continuous_recovery(scenario, shift_at_s, true);
        let cold = continuous_recovery(scenario, shift_at_s, false);
        assert_eq!(
            warm.epoch1_start, cold.epoch1_start,
            "{scenario:?}: detection must not depend on the reseed mode"
        );
        assert_eq!(warm.phase, cold.phase);
        let oracle = post_shift_oracle(scenario, shift_at_s, &warm.phase);
        let threshold = 0.95 * oracle;
        let budget = warm.post.len();
        let warm_evals = evals_to_reach(&warm.post, threshold);
        let cold_evals = evals_to_reach(&cold.post, threshold);
        println!(
            "{scenario:?}: epoch1 at {}, phase {}, oracle {oracle:.0}, \
             transfer {warm_evals:?} / cold {cold_evals:?} of {budget} evals",
            warm.epoch1_start, warm.phase
        );
        let warm_evals = warm_evals.unwrap_or_else(|| {
            panic!("{scenario:?}: transfer-seeded run never reached 95% of the oracle")
        });
        // A cold run that never recovers within the budget is censored
        // at budget + 1 — a conservative floor on its true cost.
        let cold_evals = cold_evals.unwrap_or(budget + 1);
        assert!(
            warm_evals <= cold_evals,
            "{scenario:?}: transfer {warm_evals} should not lag cold {cold_evals}"
        );
        total_transfer += warm_evals;
        total_cold += cold_evals;
    }
    assert!(
        total_transfer < total_cold,
        "transfer ({total_transfer} evals) must beat cold ({total_cold}) overall"
    );
}

/// C1 (reduced scale): Wayfinder automatically finds an Nginx
/// configuration faster than the default, fully automatically.
#[test]
fn wayfinder_improves_nginx_over_the_default() {
    let mut session = SessionBuilder::new()
        .app(AppId::Nginx)
        .algorithm(AlgorithmChoice::DeepTune)
        .runtime_params(56)
        .iterations(60)
        .seed(43)
        // Sequential pipeline: the C1 claim is about the paper's setup.
        .workers(1)
        .build()
        .unwrap();
    let outcome = session.run();
    let best = outcome.summary.best_metric.expect("found something");
    // The Table 2 default is 15 731 req/s; at 60 iterations a few percent
    // of the 24% full-budget gain must already be realized.
    assert!(
        best > 15_731.0 * 1.04,
        "best {best} should clearly beat the default"
    );
    // And the crash rate stays below random's ~1/3 as the model learns.
    assert!(
        outcome.summary.crash_rate < 0.33,
        "crash rate {}",
        outcome.summary.crash_rate
    );
}
