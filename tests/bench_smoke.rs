//! Smoke test for the `wfctl bench` perf harness: the quick suite must
//! run end to end through the real binary, emit JSON that parses, cover
//! every declared op exactly once, and be shape-stable across runs (same
//! ops in the same order — the property the committed baseline and the
//! CI regression gate lean on). The `--target` variant gets the same
//! treatment over a registered compile-stage space, plus a clear error
//! for unknown keywords.

use std::path::Path;
use std::process::Command;
use wayfinder::bench::perf;

fn run_bench_args(out: &Path, extra: &[&str]) -> perf::BenchDoc {
    let output = Command::new(env!("CARGO_BIN_EXE_wfctl"))
        .args(["bench", "--quick", "--out"])
        .arg(out)
        .args(extra)
        .output()
        .expect("wfctl bench runs");
    assert!(
        output.status.success(),
        "wfctl bench failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let text = std::fs::read_to_string(out).expect("bench JSON written");
    perf::parse_json_doc(&text).expect("bench JSON parses")
}

fn run_bench(out: &Path) -> Vec<perf::OpResult> {
    run_bench_args(out, &[]).ops
}

#[test]
fn quick_bench_covers_every_declared_op_and_is_shape_stable() {
    let dir = std::env::temp_dir().join(format!("wf-bench-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");

    // `--out` into a directory that does not exist yet must create the
    // parents rather than fail with a raw ENOENT after the whole suite
    // has already been timed.
    let nested = dir.join("fresh").join("sub").join("first.json");
    assert!(!nested.parent().unwrap().exists());
    let first = run_bench(&nested);
    let declared = perf::declared_ops();
    let emitted: Vec<(String, u64)> = first.iter().map(|r| (r.op.clone(), r.n)).collect();
    assert_eq!(
        emitted, declared,
        "emitted ops must cover every declared op, in order"
    );
    for r in &first {
        assert!(
            r.min_ns_per_iter.is_finite()
                && r.min_ns_per_iter > 0.0
                && r.min_ns_per_iter <= r.ns_per_iter,
            "{} (n={}) has an inconsistent noise floor {} vs median {}",
            r.op,
            r.n,
            r.min_ns_per_iter,
            r.ns_per_iter
        );
        assert!(
            r.ns_per_iter.is_finite() && r.ns_per_iter > 0.0,
            "{} (n={}) measured a nonsensical {}ns",
            r.op,
            r.n,
            r.ns_per_iter
        );
        assert!(
            (r.throughput_per_s - 1e9 / r.ns_per_iter.max(1e-3)).abs()
                <= r.throughput_per_s * 1e-9 + 1e-6,
            "{}: throughput does not match ns/iter",
            r.op
        );
    }

    // A second run has the same shape (timings differ, the contract
    // doesn't), and the two runs compare cleanly through the same parser
    // the CI gate uses.
    let second = run_bench(&dir.join("second.json"));
    let second_ops: Vec<(String, u64)> = second.iter().map(|r| (r.op.clone(), r.n)).collect();
    assert_eq!(second_ops, emitted, "op shape drifted between runs");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn target_bench_covers_the_per_target_suite() {
    let dir = std::env::temp_dir().join(format!("wf-bench-target-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");

    // Per-target baselines land in nested paths like
    // `baselines/BENCH_unikraft.json`; the parent must be created too.
    let out = dir.join("baselines").join("BENCH_unikraft.json");
    let doc = run_bench_args(&out, &["--target", "unikraft"]);
    assert_eq!(
        doc.suite,
        perf::target_suite_tag("unikraft"),
        "per-target documents must carry the target's suite tag"
    );
    assert!(doc.quick, "the quick flag must round-trip");
    let emitted: Vec<(String, u64)> = doc.ops.iter().map(|r| (r.op.clone(), r.n)).collect();
    assert_eq!(
        emitted,
        perf::target_declared_ops(),
        "emitted ops must cover every declared per-target op, in order"
    );
    // The same document must satisfy the staleness check the CI gate
    // applies to committed per-target baselines.
    let declared = perf::declared_ops_for(&doc.suite).expect("suite tag resolves");
    assert!(
        perf::stale_ops_in(&declared, &doc.ops).is_empty(),
        "a fresh per-target run must not look stale to its own suite"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_bench_target_fails_with_the_registry_listing() {
    let output = Command::new(env!("CARGO_BIN_EXE_wfctl"))
        .args(["bench", "--quick", "--target", "no-such-target"])
        .output()
        .expect("wfctl runs");
    assert!(
        !output.status.success(),
        "an unknown target keyword must fail"
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("unknown bench target") && stderr.contains("no-such-target"),
        "error must name the bad keyword: {stderr}"
    );
    // The error doubles as discovery: it lists what *is* registered.
    assert!(
        stderr.contains("unikraft") && stderr.contains("linux-riscv"),
        "error must list the registered targets: {stderr}"
    );
}
