//! The incremental-refit equivalence proofs behind the `wfctl bench`
//! perf work: speeding up the surrogates must not move a single
//! proposal.
//!
//! * `bayes`: an O(n²) incremental Cholesky extension per observe (full
//!   refit only at wave boundaries) must leave the fitted model — and
//!   therefore every subsequent `propose`/`propose_batch` — **bit-for-
//!   bit identical** to the from-scratch O(n³) refit
//!   (`BayesOpt::with_full_refit(true)`).
//! * `bayes` pool scoring: the batched matrix-level EI solve (kernel
//!   columns packed candidate-interleaved, one forward substitution per
//!   block) must propose exactly what the per-candidate reference loop
//!   (`BayesOpt::with_scalar_ei(true)`) proposes.
//! * `causal`: intervention rankings maintained from running raw-moment
//!   sums must match the published rescan-the-history variant
//!   (`CausalSearch::with_scratch_stats(true)`) exactly.
//! * `causal` skeleton: the sepset-reusing incremental PC sweep must
//!   leave the same adjacency — and the same rankings — as the full
//!   conditioning-set re-enumeration
//!   (`CausalSearch::with_scratch_skeleton(true)`).
//!
//! All properties are exercised across every registered target's space
//! (the five paper targets plus the `scenarios` registrations), with
//! histories fed through a random mix of single observes and wave-sized
//! `observe_batch` calls, successes and crashes alike.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use wayfinder::core::TargetRequest;
use wayfinder::jobfile::Direction;
use wayfinder::platform::derive_seed;
use wayfinder::search::{
    BayesOpt, CausalSearch, Observation, SamplePolicy, SearchAlgorithm, SearchContext,
};
use wf_configspace::{ConfigSpace, Encoder};

/// Runtime-space size for Linux-style targets (small keeps cases fast).
const PARAMS: usize = 56;

/// Materializes (keyword, space, policy) for every registered target —
/// each property case runs over the full registry.
fn all_target_spaces() -> Vec<(String, ConfigSpace, SamplePolicy)> {
    let registry = wayfinder::scenarios::registry();
    registry
        .factories()
        .map(|factory| {
            let instance = factory
                .instantiate(&TargetRequest {
                    app: factory.default_app().to_string(),
                    runtime_params: PARAMS,
                })
                .expect("registered targets instantiate with their defaults");
            (
                factory.keyword().to_string(),
                instance.target.space().clone(),
                instance.policy,
            )
        })
        .collect()
}

/// A deterministic synthetic history: per-candidate RNG streams via
/// `derive_seed`, values from the encoding, every seventh a crash.
fn history(
    space: &ConfigSpace,
    encoder: &Encoder,
    policy: &SamplePolicy,
    seed: u64,
    n: usize,
) -> Vec<Observation> {
    (0..n)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(derive_seed(seed, i as u64));
            let config = policy.sample(space, &mut rng);
            if i % 7 == 3 {
                Observation::crash(config, 15.0)
            } else {
                let x = encoder.encode(space, &config);
                let value: f64 = x
                    .iter()
                    .enumerate()
                    .map(|(d, v)| v * (d as f64 % 5.0 - 2.0))
                    .sum();
                Observation::ok(config, value, 60.0)
            }
        })
        .collect()
}

/// Feeds `observations` to both algorithms through an identical mix of
/// single observes and wave boundaries: chunk sizes cycle 1, 3, 1, 2 (a
/// chunk of one goes through `observe`, larger chunks through
/// `observe_batch`).
fn feed_both(
    a: &mut dyn SearchAlgorithm,
    b: &mut dyn SearchAlgorithm,
    space: &ConfigSpace,
    encoder: &Encoder,
    policy: &SamplePolicy,
    observations: &[Observation],
) {
    let mut fed = 0;
    let mut shapes = [1usize, 3, 1, 2].iter().cycle();
    while fed < observations.len() {
        let size = (*shapes.next().unwrap()).min(observations.len() - fed);
        let ctx = SearchContext {
            space,
            encoder,
            direction: Direction::Maximize,
            policy,
            history: &observations[..fed],
            iteration: fed,
        };
        let chunk = &observations[fed..fed + size];
        if size == 1 {
            a.observe(&ctx, &chunk[0]);
            b.observe(&ctx, &chunk[0]);
        } else {
            a.observe_batch(&ctx, chunk);
            b.observe_batch(&ctx, chunk);
        }
        fed += size;
    }
}

/// Fingerprints a batch of proposals for comparison messages.
fn fingerprints(configs: &[wf_configspace::Configuration]) -> Vec<u64> {
    configs.iter().map(|c| c.fingerprint()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn incremental_bayes_refit_matches_full_refit(
        seed in 0u64..1_000_000,
        n in 8usize..16,
    ) {
        for (keyword, space, policy) in all_target_spaces() {
            let encoder = Encoder::new(&space);
            let observations = history(&space, &encoder, &policy, seed, n);

            let mut incremental = BayesOpt::new();
            let mut full = BayesOpt::new().with_full_refit(true);
            feed_both(&mut incremental, &mut full, &space, &encoder, &policy, &observations);

            // Identical model ⇒ identical next wave from identical RNG
            // state.
            let ctx = SearchContext {
                space: &space,
                encoder: &encoder,
                direction: Direction::Maximize,
                policy: &policy,
                history: &observations,
                iteration: n,
            };
            let mut rng_a = StdRng::seed_from_u64(derive_seed(seed, 1 << 40));
            let mut rng_b = StdRng::seed_from_u64(derive_seed(seed, 1 << 40));
            let wave_a = incremental.propose_batch(4, &ctx, &mut rng_a);
            let wave_b = full.propose_batch(4, &ctx, &mut rng_b);
            prop_assert_eq!(
                &wave_a, &wave_b,
                "{}: incremental vs full proposals diverged ({:?} vs {:?})",
                keyword, fingerprints(&wave_a), fingerprints(&wave_b)
            );
            // And the single-candidate path too.
            let single_a = incremental.propose(&ctx, &mut rng_a);
            let single_b = full.propose(&ctx, &mut rng_b);
            prop_assert_eq!(single_a, single_b, "{}: single proposals diverged", keyword);
        }
    }

    #[test]
    fn batched_pool_ei_matches_per_candidate_ei(
        seed in 0u64..1_000_000,
        n in 8usize..16,
    ) {
        for (keyword, space, policy) in all_target_spaces() {
            let encoder = Encoder::new(&space);
            let observations = history(&space, &encoder, &policy, seed, n);

            let mut batched = BayesOpt::new();
            let mut scalar = BayesOpt::new().with_scalar_ei(true);
            feed_both(&mut batched, &mut scalar, &space, &encoder, &policy, &observations);

            // Identical scores ⇒ the same argmax over the same sampled
            // pool ⇒ identical proposals from identical RNG state.
            let ctx = SearchContext {
                space: &space,
                encoder: &encoder,
                direction: Direction::Maximize,
                policy: &policy,
                history: &observations,
                iteration: n,
            };
            let mut rng_a = StdRng::seed_from_u64(derive_seed(seed, 3 << 40));
            let mut rng_b = StdRng::seed_from_u64(derive_seed(seed, 3 << 40));
            let wave_a = batched.propose_batch(4, &ctx, &mut rng_a);
            let wave_b = scalar.propose_batch(4, &ctx, &mut rng_b);
            prop_assert_eq!(
                &wave_a, &wave_b,
                "{}: batched vs per-candidate EI proposals diverged ({:?} vs {:?})",
                keyword, fingerprints(&wave_a), fingerprints(&wave_b)
            );
            let single_a = batched.propose(&ctx, &mut rng_a);
            let single_b = scalar.propose(&ctx, &mut rng_b);
            prop_assert_eq!(single_a, single_b, "{}: single proposals diverged", keyword);
        }
    }

    #[test]
    fn incremental_skeleton_matches_scratch_skeleton(
        seed in 0u64..1_000_000,
        n in 8usize..16,
    ) {
        for (keyword, space, policy) in all_target_spaces() {
            let encoder = Encoder::new(&space);
            let observations = history(&space, &encoder, &policy, seed, n);

            // Isolate the skeleton axis: both sides keep incremental
            // column statistics; only the PC sweep differs.
            let mut incremental = CausalSearch::new();
            let mut scratch = CausalSearch::new().with_scratch_skeleton(true);
            feed_both(&mut incremental, &mut scratch, &space, &encoder, &policy, &observations);

            let ctx = SearchContext {
                space: &space,
                encoder: &encoder,
                direction: Direction::Maximize,
                policy: &policy,
                history: &observations,
                iteration: n,
            };
            let mut rng_a = StdRng::seed_from_u64(derive_seed(seed, 4 << 40));
            let mut rng_b = StdRng::seed_from_u64(derive_seed(seed, 4 << 40));
            let wave_a = incremental.propose_batch(4, &ctx, &mut rng_a);
            let wave_b = scratch.propose_batch(4, &ctx, &mut rng_b);
            prop_assert_eq!(
                &wave_a, &wave_b,
                "{}: sepset-reusing vs scratch skeleton proposals diverged ({:?} vs {:?})",
                keyword, fingerprints(&wave_a), fingerprints(&wave_b)
            );
            let single_a = incremental.propose(&ctx, &mut rng_a);
            let single_b = scratch.propose(&ctx, &mut rng_b);
            prop_assert_eq!(single_a, single_b, "{}: single proposals diverged", keyword);
        }
    }

    #[test]
    fn incremental_causal_ranking_matches_rebuilt_ranking(
        seed in 0u64..1_000_000,
        n in 8usize..16,
    ) {
        for (keyword, space, policy) in all_target_spaces() {
            let encoder = Encoder::new(&space);
            let observations = history(&space, &encoder, &policy, seed, n);

            let mut incremental = CausalSearch::new();
            let mut scratch = CausalSearch::new().with_scratch_stats(true);
            feed_both(&mut incremental, &mut scratch, &space, &encoder, &policy, &observations);

            let ctx = SearchContext {
                space: &space,
                encoder: &encoder,
                direction: Direction::Maximize,
                policy: &policy,
                history: &observations,
                iteration: n,
            };
            let mut rng_a = StdRng::seed_from_u64(derive_seed(seed, 2 << 40));
            let mut rng_b = StdRng::seed_from_u64(derive_seed(seed, 2 << 40));
            let wave_a = incremental.propose_batch(4, &ctx, &mut rng_a);
            let wave_b = scratch.propose_batch(4, &ctx, &mut rng_b);
            prop_assert_eq!(
                &wave_a, &wave_b,
                "{}: incremental vs scratch rankings diverged ({:?} vs {:?})",
                keyword, fingerprints(&wave_a), fingerprints(&wave_b)
            );
            let single_a = incremental.propose(&ctx, &mut rng_a);
            let single_b = scratch.propose(&ctx, &mut rng_b);
            prop_assert_eq!(single_a, single_b, "{}: single proposals diverged", keyword);
        }
    }
}
