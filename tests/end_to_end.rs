//! Cross-crate integration tests: job files → sessions → outcomes,
//! checkpoint persistence, prober-built custom targets, and the facade's
//! determinism guarantees.

use wayfinder::deeptune::Checkpoint;
use wayfinder::ossim::{SimOs, SysctlTree};
use wayfinder::platform::{probe_runtime_space, Objective, Session, SessionSpec};
use wayfinder::prelude::*;
use wayfinder::search::{RandomSearch, SamplePolicy};
use wf_configspace::{ConfigSpace, NamedConfig, Value};
use wf_jobfile::Budget;
use wf_kconfig::LinuxVersion;

#[test]
fn job_file_drives_a_full_session() {
    let job = Job::parse(
        "name: e2e\nos: linux-4.19\napp: nginx\nmetric: throughput\nalgorithm: deeptune\nseed: 4\nbudget:\n  iterations: 14\npinned:\n  - name: kernel.randomize_va_space\n    value: 2\n",
    )
    .expect("job parses");
    let mut session = SessionBuilder::from_job(&job)
        .expect("job maps to a session")
        .runtime_params(56)
        .build()
        .expect("session builds");
    let outcome = session.run();
    assert_eq!(outcome.summary.iterations, 14);
    assert!(outcome.best.is_some());
    // The §3.5 pin held for every explored configuration.
    let space = session.platform().space();
    for r in session.platform().history().records() {
        assert_eq!(
            r.config.by_name(space, "kernel.randomize_va_space"),
            Some(Value::Int(2))
        );
    }
}

#[test]
fn checkpoints_survive_disk_round_trips() {
    let mut donor = SessionBuilder::new()
        .app(AppId::Redis)
        .runtime_params(56)
        .iterations(10)
        .seed(8)
        .build()
        .unwrap();
    let _ = donor.run();
    let ckpt = donor.transfer_checkpoint().expect("trained");

    let path = std::env::temp_dir().join("wayfinder-e2e-checkpoint.txt");
    std::fs::write(&path, ckpt.to_text()).expect("write checkpoint");
    let text = std::fs::read_to_string(&path).expect("read checkpoint");
    let restored = Checkpoint::from_text(&text).expect("parse checkpoint");
    assert_eq!(restored, ckpt);
    let _ = std::fs::remove_file(&path);

    // The restored checkpoint warm-starts a new session.
    let mut receiver = SessionBuilder::new()
        .app(AppId::Nginx)
        .algorithm(AlgorithmChoice::DeepTuneTransfer(restored))
        .runtime_params(56)
        .iterations(8)
        .seed(9)
        .build()
        .unwrap();
    let outcome = receiver.run();
    assert!(outcome.best.is_some());
}

#[test]
fn probed_space_becomes_a_searchable_target() {
    // §3.4 end to end: probe the kernel's sysctl tree, build a space from
    // the inferred parameters, assemble a custom target, and search it.
    let reference = SimOs::linux_runtime(LinuxVersion::V4_19, 56);
    let mut tree = SysctlTree::from_space(&reference.space);
    let rules = reference.crash_rules.clone();
    let defaults = reference.defaults_view.clone();
    let mut crash_probe = |name: &str, value: &str| {
        let mut view = NamedConfig::empty();
        if let Ok(v) = value.parse::<i64>() {
            view.set(name.to_string(), Value::Int(v));
        }
        wayfinder::ossim::first_crash(&rules, &view, &defaults).is_some()
    };
    let report = probe_runtime_space(&mut tree, &mut crash_probe);
    assert!(report.specs.len() > 40, "probed {}", report.specs.len());

    let mut space = ConfigSpace::new();
    for spec in report.specs {
        space.add(spec);
    }
    let mut os = reference.clone();
    os.name = "linux-4.19-probed".into();
    os.space = space;
    let app = wayfinder::ossim::App::by_id(AppId::Nginx);
    let mut session = Session::new(
        os,
        app,
        Box::new(RandomSearch::new()),
        SessionSpec {
            objective: Objective::Metric,
            policy: SamplePolicy::Uniform,
            budget: Budget {
                iterations: Some(10),
                time_seconds: None,
            },
            seed: 17,
            ..SessionSpec::default()
        },
    );
    let summary = session.run();
    assert_eq!(summary.iterations, 10);
    assert!(summary.best_metric.is_some(), "probed space is searchable");
}

#[test]
fn sessions_are_deterministic_across_the_facade() {
    let run = || {
        let mut s = SessionBuilder::new()
            .app(AppId::Sqlite)
            .algorithm(AlgorithmChoice::Random)
            .runtime_params(56)
            .iterations(12)
            .seed(2024)
            .build()
            .unwrap();
        let o = s.run();
        (
            o.summary.best_metric,
            o.summary.crash_rate,
            o.summary.elapsed_s,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert!((a.2 - b.2).abs() < 1e-9);
}

#[test]
fn all_algorithms_complete_on_every_target() {
    // Smoke coverage of the full algorithm x target matrix the facade
    // exposes (grid/causal included, which no figure exercises directly).
    for algorithm in [
        AlgorithmChoice::Random,
        AlgorithmChoice::Grid,
        AlgorithmChoice::Bayesian,
        AlgorithmChoice::Causal,
        AlgorithmChoice::DeepTune,
    ] {
        let mut s = SessionBuilder::new()
            .app(AppId::Redis)
            .algorithm(algorithm)
            .runtime_params(56)
            .iterations(6)
            .seed(33)
            .build()
            .unwrap();
        let o = s.run();
        assert_eq!(o.summary.iterations, 6);
    }
    // Unikraft target with Bayesian (the Fig. 9 pairing).
    let mut s = SessionBuilder::new()
        .os(OsFlavor::Unikraft)
        .app(AppId::Nginx)
        .algorithm(AlgorithmChoice::Bayesian)
        .iterations(6)
        .seed(34)
        .build()
        .unwrap();
    assert_eq!(s.run().summary.iterations, 6);
}

#[test]
fn worker_pool_keeps_the_outcome_and_cuts_the_wall_clock() {
    // The same job at workers: 4 vs workers: 1 — identical history-free
    // (random) search, so the best configuration must match exactly while
    // the virtual wall clock drops by at least the 2x the acceptance
    // criteria demand (4 overlapped evaluations per wave).
    let run = |workers: usize| {
        let job = Job::parse(&format!(
            "name: e2e-pool\nos: linux-4.19\napp: nginx\nmetric: throughput\nalgorithm: random\nseed: 71\nworkers: {workers}\nbudget:\n  iterations: 16\n",
        ))
        .expect("job parses");
        let mut session = SessionBuilder::from_job(&job)
            .expect("job maps to a session")
            .runtime_params(56)
            .build()
            .expect("session builds");
        let outcome = session.run();
        (outcome, session)
    };
    let (narrow, _) = run(1);
    let (wide, wide_session) = run(4);

    let (narrow_best, narrow_value) = narrow.best.expect("narrow run found something");
    let (wide_best, wide_value) = wide.best.expect("wide run found something");
    assert_eq!(
        narrow_best.fingerprint(),
        wide_best.fingerprint(),
        "worker count changed the best configuration"
    );
    assert_eq!(narrow_value, wide_value);
    assert!(
        wide.summary.elapsed_s < narrow.summary.elapsed_s,
        "wall clock must strictly drop: {} vs {}",
        wide.summary.elapsed_s,
        narrow.summary.elapsed_s
    );
    assert!(
        narrow.summary.elapsed_s >= 2.0 * wide.summary.elapsed_s,
        "expected >= 2x wall-clock cut, got {:.2}x",
        narrow.summary.elapsed_s / wide.summary.elapsed_s
    );
    // Same total compute either way; the pool only overlaps it.
    assert!((narrow.summary.compute_s - wide.summary.compute_s).abs() < 1e-6);
    assert_eq!(wide.summary.workers, 4);
    assert_eq!(wide.summary.waves, 4);
    // The per-wave metrics surface through the platform session.
    let waves = wide_session.platform().waves();
    assert_eq!(waves.len(), 4);
    for w in waves {
        assert!(w.busy_s >= w.wall_s);
        assert!(w.occupancy(4) > 0.5, "suspiciously idle wave: {w:?}");
    }
}

#[test]
fn rebuild_skip_kicks_in_for_repeated_compile_configs() {
    // §3.1: identical compile fingerprints share an image. Grid search on
    // Unikraft revisits the default-with-one-change pattern, so later
    // boolean axes re-use cached images... but every grid point differs in
    // exactly one compile option, so what this actually asserts is that
    // builds happen and the cache bookkeeping stays consistent.
    let mut s = SessionBuilder::new()
        .os(OsFlavor::Unikraft)
        .app(AppId::Nginx)
        .algorithm(AlgorithmChoice::Grid)
        .iterations(10)
        .seed(35)
        .build()
        .unwrap();
    let o = s.run();
    let (hits, misses) = o.summary.cache_stats;
    assert_eq!((hits + misses) as usize, 10);
    assert!(misses > 0);
}
