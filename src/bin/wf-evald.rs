//! `wf-evald`: the Wayfinder remote evaluation worker.
//!
//! `wf_platform::RemoteBackend` launches one `wf-evald` process per
//! evaluator lane. Each worker connects back over the Unix socket named
//! by `--connect`, announces its `--lane` in a hello frame, rebuilds
//! the evaluation target from the session's *resolved* job (shipped
//! inline via `--job-inline`, or a file via `--job`), and then serves
//! the length-prefixed eval protocol until the session closes the
//! stream:
//!
//! ```sh
//! wf-evald --job-inline "$(cat resolved.yaml)" --connect /tmp/wf.sock --lane 0
//! ```
//!
//! Because the job is the fully resolved manifest (every omitted key
//! already expanded), every worker materializes the exact same target
//! the session dispatches to — same space, same pins, same app — which
//! is what keeps remote evaluation bit-identical to in-process.

use std::os::unix::net::UnixStream;
use std::process::ExitCode;
use wayfinder::core::target_from_job;
use wayfinder::platform::serve;
use wayfinder::prelude::*;

const USAGE: &str = "usage:\n  wf-evald (--job-inline YAML | --job PATH) --connect SOCKET --lane N\n                              serve the Wayfinder remote-eval protocol for\n                              one lane over the given Unix socket; normally\n                              launched by a session's remote backend, not\n                              by hand";

struct Args {
    job_yaml: String,
    connect: String,
    lane: usize,
}

fn parse_args(rest: &[String]) -> Result<Args, String> {
    let mut job_yaml: Option<String> = None;
    let mut connect: Option<String> = None;
    let mut lane: Option<usize> = None;
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        let v = rest
            .get(*i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?;
        *i += 2;
        Ok(v.clone())
    };
    while i < rest.len() {
        match rest[i].as_str() {
            "--job-inline" => job_yaml = Some(value(&mut i, "--job-inline")?),
            "--job" => {
                let path = value(&mut i, "--job")?;
                let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
                job_yaml = Some(text);
            }
            "--connect" => connect = Some(value(&mut i, "--connect")?),
            "--lane" => {
                let v = value(&mut i, "--lane")?;
                lane = Some(
                    v.parse()
                        .map_err(|_| format!("--lane must be an integer, got {v:?}"))?,
                );
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(Args {
        job_yaml: job_yaml.ok_or("a job is required (--job-inline or --job)")?,
        connect: connect.ok_or("--connect <socket> is required")?,
        lane: lane.ok_or("--lane <n> is required")?,
    })
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if matches!(argv.first().map(String::as_str), Some("--help" | "-h")) {
        println!("wf-evald: Wayfinder remote evaluation worker");
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("wf-evald: {e}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let job = match Job::parse(&args.job_yaml) {
        Ok(job) => job,
        Err(e) => {
            eprintln!("wf-evald: invalid job: {e}");
            return ExitCode::FAILURE;
        }
    };
    let target = match target_from_job(&job, &wayfinder::scenarios::registry()) {
        Ok(target) => target,
        Err(e) => {
            eprintln!("wf-evald: cannot materialize target: {e}");
            return ExitCode::FAILURE;
        }
    };
    let stream = match UnixStream::connect(&args.connect) {
        Ok(stream) => stream,
        Err(e) => {
            eprintln!("wf-evald: cannot connect to {}: {e}", args.connect);
            return ExitCode::FAILURE;
        }
    };
    // Serve until the session closes the socket (EOF = clean shutdown).
    match serve(stream, args.lane, target.as_ref()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("wf-evald: lane {} protocol error: {e}", args.lane);
            ExitCode::FAILURE
        }
    }
}
