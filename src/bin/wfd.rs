//! `wfd`: the Wayfinder multi-tenant session daemon.
//!
//! Serves a Unix-socket API over a **state root** directory: submitted
//! jobs each get their own thread and session store under
//! `<root>/sessions/`, sharing nothing but the target registry, so N
//! concurrent sessions stay bit-identical to N sequential `wfctl run`s.
//!
//! ```sh
//! wfd --root runs/wfd          # serve until SIGINT or `wfctl stop --daemon`
//! ```
//!
//! Drive it with `wfctl submit / sessions / watch / stop` (or any client
//! speaking the length-prefixed JSON framing; see
//! `wf_platform::daemon`). SIGINT/SIGTERM shut down gracefully: every
//! running session parks at its next wave boundary, its hash-chained
//! ledger intact and resumable with `wfctl resume`.

use std::process::ExitCode;
use wayfinder::core::bind_daemon;
use wayfinder::platform::signal;

const USAGE: &str = "usage:\n  wfd --root DIR    serve the daemon socket at DIR/wfd.sock; one session\n                    store per submitted job under DIR/sessions/. SIGINT\n                    parks every session at its wave boundary and exits.\n  wfd --help        show this help";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => match args.get(i + 1) {
                Some(dir) => {
                    root = Some(dir.clone());
                    i += 2;
                }
                None => return usage("--root needs a directory"),
            },
            "--help" | "-h" | "help" => {
                println!("wfd: the Wayfinder multi-tenant session daemon");
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }
    // wf-lint: allow(host-env-read, reason = "config-load: WF_DAEMON is the documented CLI fallback for --root, read once at startup")
    let root = match root.or_else(|| std::env::var("WF_DAEMON").ok()) {
        Some(root) => root,
        None => return usage("wfd needs --root DIR (or WF_DAEMON)"),
    };
    let daemon = match bind_daemon(&root, wayfinder::scenarios::registry) {
        Ok(daemon) => daemon,
        Err(e) => {
            eprintln!("wfd: cannot bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "wfd: serving {} (socket {})",
        daemon.root().display(),
        daemon.socket_path().display()
    );
    let flag = signal::install_interrupt_flag();
    match daemon.run(flag) {
        Ok(()) => {
            println!("wfd: shut down; stores under {root}/sessions resume with `wfctl resume`");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("wfd: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("wfd: {err}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}
