//! `wfctl`: the Wayfinder control tool.
//!
//! The paper's artifact drives experiments through `wfctl create job.yaml`
//! / `wfctl start`; this binary mirrors that workflow against the
//! simulated testbed:
//!
//! ```sh
//! wfctl run <job.yaml>             # run a job file to completion
//! wfctl run <job.yaml> --workers 4 # ... across 4 simulated VM workers
//! wfctl validate <job.yaml>        # parse + resolve a job without running it
//! wfctl probe                      # run the §3.4 runtime-space inference
//! wfctl experiments                # list the regeneration targets
//! ```

use std::process::ExitCode;
use wayfinder::ossim::{first_crash, SimOs, SysctlTree};
use wayfinder::platform::probe_runtime_space;
use wayfinder::prelude::*;
use wf_configspace::{NamedConfig, Value};
use wf_kconfig::LinuxVersion;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => match parse_run_args(&args[1..]) {
            Ok((path, workers)) => run_job(&path, workers),
            Err(e) => usage(&e),
        },
        Some("validate") => match args.get(1) {
            Some(path) => validate_job(path),
            None => usage("validate needs a job file"),
        },
        Some("probe") => probe(),
        Some("experiments") => experiments(),
        Some("--help" | "-h" | "help") => {
            println!("wfctl: drive Wayfinder sessions against the simulated testbed");
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        _ => usage("missing or unknown subcommand"),
    }
}

const USAGE: &str = "usage:\n  wfctl run <job.yaml> [--workers N]\n                              run a job file to completion, optionally\n                              across N simulated VM workers (overrides\n                              the job's `workers:` and WF_WORKERS)\n  wfctl validate <job.yaml>   parse + resolve a job without running it\n  wfctl probe                 run the §3.4 runtime-space inference\n  wfctl experiments           list the regeneration targets\n  wfctl --help                show this help";

/// Parses `run` operands: a job-file path plus an optional `--workers N`.
fn parse_run_args(rest: &[String]) -> Result<(String, Option<usize>), String> {
    let mut path = None;
    let mut workers = None;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--workers" => {
                let value = rest
                    .get(i + 1)
                    .ok_or_else(|| "--workers needs a count".to_string())?;
                let n: usize = value
                    .parse()
                    .ok()
                    .filter(|n| (1..=64).contains(n))
                    .ok_or_else(|| format!("--workers must be in 1..=64, got {value:?}"))?;
                workers = Some(n);
                i += 2;
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag:?}")),
            operand => {
                if path.replace(operand.to_string()).is_some() {
                    return Err("run takes exactly one job file".into());
                }
                i += 1;
            }
        }
    }
    path.map(|p| (p, workers))
        .ok_or_else(|| "run needs a job file".into())
}

fn usage(err: &str) -> ExitCode {
    eprintln!("wfctl: {err}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn load_job(path: &str) -> Result<Job, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Job::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn validate_job(path: &str) -> ExitCode {
    match load_job(path).and_then(|job| {
        SessionBuilder::from_job(&job)
            .and_then(SessionBuilder::build)
            .map_err(|e| e.to_string())
            .map(|session| (job, session))
    }) {
        Ok((job, session)) => {
            let os = session.platform().os();
            println!(
                "job {:?}: {} on {} — {} parameters (10^{:.1} permutations), budget {:?} iterations / {:?} s",
                job.name,
                job.app,
                os.name,
                os.space.len(),
                os.space.log10_cardinality(),
                job.budget.iterations,
                job.budget.time_seconds,
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("invalid job: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_job(path: &str, workers: Option<usize>) -> ExitCode {
    let job = match load_job(path) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let session = SessionBuilder::from_job(&job).map(|b| {
        // CLI flag > job file > WF_WORKERS/default.
        match workers {
            Some(n) => b.workers(n),
            None => b,
        }
    });
    let session = session.and_then(SessionBuilder::build);
    let mut session = match session {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot build session: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "running job {:?}: {} on {} across {} worker(s) ...",
        job.name,
        job.app,
        session.platform().os().name,
        session.platform().summary().workers,
    );
    let mut last_report = 0.0;
    while !session.done() {
        let (finished_at_s, iteration) = {
            let r = session.step();
            (r.finished_at_s, r.iteration)
        };
        if finished_at_s - last_report > 1800.0 {
            last_report = finished_at_s;
            println!(
                "  t={:>6.0}s  iteration {:>4}  best {:?}",
                finished_at_s,
                iteration + 1,
                session
                    .platform()
                    .history()
                    .best(session.platform().direction())
                    .and_then(|b| b.objective)
            );
        }
    }
    let summary = session.platform().summary();
    println!(
        "done: {} iterations in {:.1} virtual hours, crash rate {:.0}%",
        summary.iterations,
        summary.elapsed_s / 3600.0,
        summary.crash_rate * 100.0
    );
    if summary.workers > 1 {
        // Per-wave scheduling detail for short sessions; long ones get
        // the aggregate line only.
        let waves = session.platform().waves();
        if waves.len() <= 16 {
            print!(
                "{}",
                wayfinder::core::wave_stats_table(waves, summary.workers).render()
            );
        }
        println!(
            "pool: {} workers over {} waves — {:.1} VM-hours of compute in {:.1} wall hours ({:.1}x), mean occupancy {:.0}%, cache hit rate {:.0}%",
            summary.workers,
            summary.waves,
            summary.compute_s / 3600.0,
            summary.elapsed_s / 3600.0,
            summary.compute_s / summary.elapsed_s.max(1e-9),
            summary.mean_occupancy * 100.0,
            {
                let (h, m) = summary.cache_stats;
                if h + m == 0 { 0.0 } else { 100.0 * h as f64 / (h + m) as f64 }
            },
        );
    }
    match (summary.best_objective, summary.best_config) {
        (Some(best), Some(config)) => {
            println!("best {}: {:.2}", job.metric, best);
            let space = &session.platform().os().space;
            let default = space.default_config();
            println!("non-default parameters:");
            for idx in config.diff_indices(&default) {
                println!("  {} = {}", space.spec(idx).name, config.get(idx));
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("no configuration survived the budget");
            ExitCode::FAILURE
        }
    }
}

fn probe() -> ExitCode {
    let os = SimOs::linux_runtime(LinuxVersion::V4_19, 200);
    let mut tree = SysctlTree::from_space(&os.space);
    let rules = os.crash_rules.clone();
    let defaults = os.defaults_view.clone();
    let mut crash_probe = |name: &str, value: &str| {
        let mut view = NamedConfig::empty();
        if let Ok(v) = value.parse::<i64>() {
            view.set(name.to_string(), Value::Int(v));
        }
        first_crash(&rules, &view, &defaults).is_some()
    };
    let report = probe_runtime_space(&mut tree, &mut crash_probe);
    println!(
        "probed {} parameters ({} writes, {} probe crashes, {} non-numeric skipped)",
        report.specs.len(),
        report.writes_attempted,
        report.probe_crashes,
        report.skipped_non_numeric.len()
    );
    for spec in &report.specs {
        println!("{:<44} {:?}", spec.name, spec.kind);
    }
    ExitCode::SUCCESS
}

fn experiments() -> ExitCode {
    println!("regeneration targets (cargo bench -p wf-bench --bench <name>):");
    for (name, what) in [
        ("fig01_kconfig_growth", "Fig. 1  Linux option growth"),
        ("table1_config_census", "Table 1 configuration census"),
        ("fig02_random_nginx", "Fig. 2  random-config throughput"),
        ("fig05_cross_similarity", "Fig. 5  importance similarity"),
        ("fig06_search_evolution", "Fig. 6  search evolution"),
        ("table2_best_configs", "Table 2 best configurations"),
        ("fig07_scalability", "Fig. 7  DeepTune vs Unicorn"),
        ("fig08_loop_breakdown", "Fig. 8  loop-time breakdown"),
        ("table3_prediction_accuracy", "Table 3 prediction accuracy"),
        ("fig09_unikraft", "Fig. 9  Unikraft comparison"),
        ("fig10_memory_footprint", "Fig. 10 RISC-V footprint"),
        ("fig11_cozart_cooptim", "Fig. 11 Cozart co-optimization"),
        ("table4_cozart_top5", "Table 4 co-optimization top-5"),
        ("ablation", "scoring-function ablation"),
        ("micro", "Criterion microbenches"),
    ] {
        println!("  {name:<28} {what}");
    }
    ExitCode::SUCCESS
}
