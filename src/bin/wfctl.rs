//! `wfctl`: the Wayfinder control tool.
//!
//! The paper's artifact drives experiments through `wfctl create job.yaml`
//! / `wfctl start`; this binary mirrors that workflow against the
//! simulated testbed, resolving every `os:` keyword through the open
//! target registry (built-ins plus `wayfinder::scenarios`):
//!
//! ```sh
//! wfctl run <job.yaml>             # run a job file to completion
//! wfctl run <job.yaml> --workers 4 # ... across 4 simulated VM workers
//! wfctl run --os linux-6.0-net     # ad-hoc session on a registered target
//! wfctl validate <job.yaml>        # parse + resolve a job without running it
//! wfctl targets                    # list every registered target
//! wfctl probe                      # run the §3.4 runtime-space inference
//! wfctl experiments                # list the regeneration targets
//! ```

use std::process::ExitCode;
use wayfinder::core::BuildError;
use wayfinder::ossim::{first_crash, SimOs, SysctlTree};
use wayfinder::platform::probe_runtime_space;
use wayfinder::prelude::*;
use wf_configspace::{NamedConfig, Value};
use wf_kconfig::LinuxVersion;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => match RunArgs::parse(&args[1..]) {
            Ok(run) => run_job(&run),
            Err(e) => usage(&e),
        },
        Some("validate") => match args.get(1) {
            Some(path) => validate_job(path),
            None => usage("validate needs a job file"),
        },
        Some("targets") => targets(),
        Some("probe") => probe(),
        Some("experiments") => experiments(),
        Some("--help" | "-h" | "help") => {
            println!("wfctl: drive Wayfinder sessions against the simulated testbed");
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        _ => usage("missing or unknown subcommand"),
    }
}

const USAGE: &str = "usage:\n  wfctl run [<job.yaml>] [--os K] [--app A] [--workers N]\n            [--iterations I] [--seed S]\n                              run a job file to completion; flags override\n                              the job's keys (and WF_WORKERS). With --os\n                              and no job file, runs an ad-hoc random-search\n                              session on the registered target K\n  wfctl validate <job.yaml>   parse + resolve a job without running it\n  wfctl targets               list every registered target\n  wfctl probe                 run the §3.4 runtime-space inference\n  wfctl experiments           list the regeneration targets\n  wfctl --help                show this help";

/// `run` operands: an optional job-file path plus override flags.
struct RunArgs {
    path: Option<String>,
    os: Option<String>,
    app: Option<String>,
    workers: Option<usize>,
    iterations: Option<usize>,
    seed: Option<u64>,
}

impl RunArgs {
    fn parse(rest: &[String]) -> Result<RunArgs, String> {
        let mut run = RunArgs {
            path: None,
            os: None,
            app: None,
            workers: None,
            iterations: None,
            seed: None,
        };
        let mut i = 0;
        let flag_value = |i: &mut usize, flag: &str| -> Result<String, String> {
            let value = rest
                .get(*i + 1)
                .ok_or_else(|| format!("{flag} needs a value"))?;
            *i += 2;
            Ok(value.clone())
        };
        while i < rest.len() {
            match rest[i].as_str() {
                "--workers" => {
                    let value = flag_value(&mut i, "--workers")?;
                    run.workers = Some(
                        value
                            .parse()
                            .ok()
                            .filter(|n| (1..=64).contains(n))
                            .ok_or_else(|| format!("--workers must be in 1..=64, got {value:?}"))?,
                    );
                }
                "--os" => run.os = Some(flag_value(&mut i, "--os")?),
                "--app" => run.app = Some(flag_value(&mut i, "--app")?),
                "--iterations" => {
                    let value = flag_value(&mut i, "--iterations")?;
                    run.iterations =
                        Some(
                            value.parse().ok().filter(|n| *n >= 1).ok_or_else(|| {
                                format!("--iterations must be >= 1, got {value:?}")
                            })?,
                        );
                }
                "--seed" => {
                    let value = flag_value(&mut i, "--seed")?;
                    run.seed = Some(
                        value
                            .parse()
                            .map_err(|_| format!("--seed must be an integer, got {value:?}"))?,
                    );
                }
                flag if flag.starts_with("--") => return Err(format!("unknown flag {flag:?}")),
                operand => {
                    if run.path.replace(operand.to_string()).is_some() {
                        return Err("run takes at most one job file".into());
                    }
                    i += 1;
                }
            }
        }
        if run.path.is_none() && run.os.is_none() {
            return Err("run needs a job file or --os <keyword>".into());
        }
        Ok(run)
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("wfctl: {err}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

/// Prints a build error with a variant-specific hint and returns the
/// failure exit code.
fn report_build_error(context: &str, err: &BuildError) -> ExitCode {
    eprintln!("{context}: {err}");
    match err {
        BuildError::UnknownTarget { .. } => {
            eprintln!("hint: `wfctl targets` lists every registered target")
        }
        BuildError::UnknownApp { .. } | BuildError::IncompatibleApp { .. } => {
            eprintln!("hint: `wfctl targets` shows which apps each target supports")
        }
        BuildError::UnknownMetric { .. } => {
            eprintln!("hint: set `metric:` to the target's primary metric, `memory`, or `score`")
        }
        BuildError::MissingBudget => {
            eprintln!("hint: give the job a `budget:` with `iterations:` or `time_seconds:`")
        }
        BuildError::BadPin { .. } => {
            eprintln!("hint: pinned parameters must exist in the searched space")
        }
        BuildError::DuplicateKeyword { .. } => {
            eprintln!("hint: every registered target needs a unique keyword")
        }
    }
    ExitCode::FAILURE
}

fn load_job(path: &str) -> Result<Job, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Job::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn validate_job(path: &str) -> ExitCode {
    let job = match load_job(path) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("invalid job: {e}");
            return ExitCode::FAILURE;
        }
    };
    let built = SessionBuilder::from_job(&job)
        .map(|b| b.registry(wayfinder::scenarios::registry()))
        .and_then(SessionBuilder::build);
    match built {
        Ok(session) => {
            let descriptor = session.platform().descriptor().clone();
            let space = session.platform().space();
            println!(
                "job {:?}: {} on {} — {} parameters (10^{:.1} permutations), budget {:?} iterations / {:?} s",
                job.name,
                descriptor.app,
                descriptor.name,
                space.len(),
                space.log10_cardinality(),
                job.budget.iterations,
                job.budget.time_seconds,
            );
            ExitCode::SUCCESS
        }
        Err(e) => report_build_error("invalid job", &e),
    }
}

fn run_job(run: &RunArgs) -> ExitCode {
    let (job_name, builder) = match &run.path {
        Some(path) => {
            let job = match load_job(path) {
                Ok(j) => j,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let builder = match SessionBuilder::from_job(&job) {
                Ok(b) => b,
                Err(e) => return report_build_error("cannot build session", &e),
            };
            (job.name.clone(), builder)
        }
        // Ad-hoc `--os` runs: a quick random-search session on the
        // target's default app and metric, overridable by the flags
        // below.
        None => (
            "adhoc".to_string(),
            SessionBuilder::new()
                .algorithm(AlgorithmChoice::Random)
                .iterations(24),
        ),
    };
    // CLI flags > job file > WF_WORKERS/default.
    let mut builder = builder.registry(wayfinder::scenarios::registry());
    if let Some(os) = &run.os {
        builder = builder.target(os.clone());
    }
    if let Some(app) = &run.app {
        builder = builder.app_named(app.clone());
    }
    if let Some(n) = run.workers {
        builder = builder.workers(n);
    }
    if let Some(n) = run.iterations {
        builder = builder.iterations(n);
    }
    if let Some(seed) = run.seed {
        builder = builder.seed(seed);
    }
    let mut session = match builder.build() {
        Ok(s) => s,
        Err(e) => return report_build_error("cannot build session", &e),
    };
    let descriptor = session.platform().descriptor().clone();
    println!(
        "running job {:?}: {} on {} across {} worker(s) ...",
        job_name,
        descriptor.app,
        descriptor.name,
        session.platform().summary().workers,
    );
    let mut last_report = 0.0;
    while !session.done() {
        let (finished_at_s, iteration) = {
            let r = session.step();
            (r.finished_at_s, r.iteration)
        };
        if finished_at_s - last_report > 1800.0 {
            last_report = finished_at_s;
            println!(
                "  t={:>6.0}s  iteration {:>4}  best {:?}",
                finished_at_s,
                iteration + 1,
                session
                    .platform()
                    .history()
                    .best(session.platform().direction())
                    .and_then(|b| b.objective)
            );
        }
    }
    let summary = session.platform().summary();
    println!(
        "done: {} iterations in {:.1} virtual hours, crash rate {:.0}%",
        summary.iterations,
        summary.elapsed_s / 3600.0,
        summary.crash_rate * 100.0
    );
    if summary.workers > 1 {
        // Per-wave scheduling detail for short sessions; long ones get
        // the aggregate line only.
        let waves = session.platform().waves();
        if waves.len() <= 16 {
            print!(
                "{}",
                wayfinder::core::wave_stats_table(waves, summary.workers).render()
            );
        }
        println!(
            "pool: {} workers over {} waves — {:.1} VM-hours of compute in {:.1} wall hours ({:.1}x), mean occupancy {:.0}%, cache hit rate {:.0}%",
            summary.workers,
            summary.waves,
            summary.compute_s / 3600.0,
            summary.elapsed_s / 3600.0,
            summary.compute_s / summary.elapsed_s.max(1e-9),
            summary.mean_occupancy * 100.0,
            {
                let (h, m) = summary.cache_stats;
                if h + m == 0 { 0.0 } else { 100.0 * h as f64 / (h + m) as f64 }
            },
        );
    }
    match (summary.best_objective, summary.best_config) {
        (Some(best), Some(config)) => {
            println!(
                "best {} ({}): {:.2}",
                descriptor.metric, descriptor.unit, best
            );
            let space = session.platform().space();
            let default = space.default_config();
            println!("non-default parameters:");
            for idx in config.diff_indices(&default) {
                println!("  {} = {}", space.spec(idx).name, config.get(idx));
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("no configuration survived the budget");
            ExitCode::FAILURE
        }
    }
}

fn targets() -> ExitCode {
    let registry = wayfinder::scenarios::registry();
    println!("registered targets ({}):", registry.len());
    for factory in registry.factories() {
        println!(
            "  {:<16} apps: {:<32} {}",
            factory.keyword(),
            factory.apps().join(", "),
            factory.summary(),
        );
    }
    println!("(run one with `wfctl run --os <keyword>` or a job file's `os:` key)");
    ExitCode::SUCCESS
}

fn probe() -> ExitCode {
    let os = SimOs::linux_runtime(LinuxVersion::V4_19, 200);
    let mut tree = SysctlTree::from_space(&os.space);
    let rules = os.crash_rules.clone();
    let defaults = os.defaults_view.clone();
    let mut crash_probe = |name: &str, value: &str| {
        let mut view = NamedConfig::empty();
        if let Ok(v) = value.parse::<i64>() {
            view.set(name.to_string(), Value::Int(v));
        }
        first_crash(&rules, &view, &defaults).is_some()
    };
    let report = probe_runtime_space(&mut tree, &mut crash_probe);
    println!(
        "probed {} parameters ({} writes, {} probe crashes, {} non-numeric skipped)",
        report.specs.len(),
        report.writes_attempted,
        report.probe_crashes,
        report.skipped_non_numeric.len()
    );
    for spec in &report.specs {
        println!("{:<44} {:?}", spec.name, spec.kind);
    }
    ExitCode::SUCCESS
}

fn experiments() -> ExitCode {
    println!("regeneration targets (cargo bench -p wf-bench --bench <name>):");
    for (name, what) in [
        ("fig01_kconfig_growth", "Fig. 1  Linux option growth"),
        ("table1_config_census", "Table 1 configuration census"),
        ("fig02_random_nginx", "Fig. 2  random-config throughput"),
        ("fig05_cross_similarity", "Fig. 5  importance similarity"),
        ("fig06_search_evolution", "Fig. 6  search evolution"),
        ("table2_best_configs", "Table 2 best configurations"),
        ("fig07_scalability", "Fig. 7  DeepTune vs Unicorn"),
        ("fig08_loop_breakdown", "Fig. 8  loop-time breakdown"),
        ("table3_prediction_accuracy", "Table 3 prediction accuracy"),
        ("fig09_unikraft", "Fig. 9  Unikraft comparison"),
        ("fig10_memory_footprint", "Fig. 10 RISC-V footprint"),
        ("fig11_cozart_cooptim", "Fig. 11 Cozart co-optimization"),
        ("table4_cozart_top5", "Table 4 co-optimization top-5"),
        ("ablation", "scoring-function ablation"),
        ("micro", "Criterion microbenches"),
    ] {
        println!("  {name:<28} {what}");
    }
    ExitCode::SUCCESS
}
