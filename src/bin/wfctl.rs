//! `wfctl`: the Wayfinder control tool.
//!
//! The paper's artifact drives experiments through `wfctl create job.yaml`
//! / `wfctl start`; this binary mirrors that workflow against the
//! simulated testbed, resolving every `os:` keyword through the open
//! target registry (built-ins plus `wayfinder::scenarios`):
//!
//! ```sh
//! wfctl run <job.yaml>             # run a job file to completion
//! wfctl run <job.yaml> --out DIR   # ... persisting a session store
//! wfctl run --os linux-6.0-net     # ad-hoc session on a registered target
//! wfctl resume <DIR>               # pick an interrupted store back up
//! wfctl report <DIR>               # render a store's report offline
//! wfctl verify <DIR>               # verify a store's ledger hash chain
//! wfctl validate <job.yaml>        # parse + resolve a job without running it
//! wfctl targets                    # list every registered target
//! wfctl bench --out BENCH.json     # time the controller hot paths
//! wfctl bench --target unikraft    # ... on a registered target's space
//! wfctl probe                      # run the §3.4 runtime-space inference
//! wfctl experiments                # list the regeneration targets
//! wfctl daemon --root DIR          # serve the wfd daemon in the foreground
//! wfctl submit <job.yaml>          # hand a job to a running daemon
//! wfctl sessions                   # list the daemon's sessions
//! wfctl watch <ID>                 # stream a daemon session's events live
//! wfctl stop <ID>                  # park a daemon session at a wave boundary
//! ```
//!
//! A store directory (`--out`, the job's `out:` key, or a `resume`
//! operand) holds `manifest.yaml` — the resolved job — plus an
//! append-only, hash-chained `events.jsonl`. Ctrl-C during `run` or
//! `resume` is caught: the session stops at the next wave boundary with
//! the log flushed and checkpointed, so an interrupt loses at most the
//! in-flight wave and `resume` continues it so that
//! interrupted-then-resumed equals uninterrupted, candidate for
//! candidate.
//!
//! The daemon subcommands talk to a `wfd` state root, resolved from
//! `--daemon DIR`, then the `WF_DAEMON` variable, then (for `submit`)
//! the job's `daemon:` key.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::Ordering;
use wayfinder::core::{bind_daemon, store_report, BuildError};
use wayfinder::ossim::{first_crash, SimOs, SysctlTree};
use wayfinder::platform::daemon::{connect, round_trip};
use wayfinder::platform::store::JsonValue;
use wayfinder::platform::{probe_runtime_space, signal, SessionStore, Tee};
use wayfinder::prelude::*;
use wf_configspace::{ConfigSpace, NamedConfig, Value};
use wf_jobfile::{BackendChoice, RoutingStrategy};
use wf_kconfig::LinuxVersion;
use wf_platform::remote::read_frame;
use wf_platform::EventSink;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => match RunArgs::parse(&args[1..]) {
            Ok(run) => run_job(&run),
            Err(e) => usage(&e),
        },
        Some("resume") => match ResumeArgs::parse(&args[1..]) {
            Ok(resume) => resume_job(&resume),
            Err(e) => usage(&e),
        },
        Some("report") => match args.get(1) {
            Some(dir) if args.len() == 2 => report_store(dir),
            _ => usage("report takes exactly one store directory"),
        },
        Some("validate") => match args.get(1) {
            Some(path) => validate_job(path),
            None => usage("validate needs a job file"),
        },
        Some("targets") => targets(),
        Some("bench") => match BenchArgs::parse(&args[1..]) {
            Ok(bench) => run_bench(&bench),
            Err(e) => usage(&e),
        },
        Some("probe") => probe(),
        Some("lint") => ExitCode::from(wf_lint::cli::run(&args[1..], "wfctl lint")),
        Some("experiments") => experiments(),
        Some("verify") => match args.get(1) {
            Some(dir) if args.len() == 2 => verify_store(dir),
            _ => usage("verify takes exactly one store directory"),
        },
        Some("daemon") => match DaemonArgs::parse(&args[1..]) {
            Ok(daemon) => run_daemon(&daemon),
            Err(e) => usage(&e),
        },
        Some("submit") => match ClientArgs::parse(&args[1..], "submit", true) {
            Ok(client) => submit_job(&client),
            Err(e) => usage(&e),
        },
        Some("sessions") => match ClientArgs::parse(&args[1..], "sessions", false) {
            Ok(client) => list_sessions(&client),
            Err(e) => usage(&e),
        },
        Some("watch") => match ClientArgs::parse(&args[1..], "watch", true) {
            Ok(client) => watch_session(&client),
            Err(e) => usage(&e),
        },
        Some("stop") => match ClientArgs::parse(&args[1..], "stop", true) {
            Ok(client) => stop_session(&client),
            Err(e) => usage(&e),
        },
        Some("--help" | "-h" | "help") => {
            println!("wfctl: drive Wayfinder sessions against the simulated testbed");
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        _ => usage("missing or unknown subcommand"),
    }
}

const USAGE: &str = "usage:\n  wfctl run [<job.yaml>] [--os K] [--app A] [--workers N]\n            [--iterations I] [--time-budget-s S] [--repetitions R]\n            [--seed S] [--out DIR] [--backend B] [--routing R]\n                              run a job file to completion; flags override\n                              the job's keys (and WF_WORKERS). With --os\n                              and no job file, runs an ad-hoc random-search\n                              session on the registered target K. --out\n                              (or the job's `out:` key) writes a session\n                              store: manifest.yaml + events.jsonl.\n                              --backend picks where evaluations execute\n                              (spawn | in-process | remote; remote launches\n                              one wf-evald process per worker); --routing\n                              picks the slot->lane strategy (random |\n                              fastest | round-robin | preferred)\n  wfctl resume <DIR> [--iterations I] [--time-budget-s S]\n                              resume an interrupted session store where it\n                              stopped (optionally extending the budget);\n                              no completed evaluation is re-run\n  wfctl report <DIR>          render the full report of a session store,\n                              offline — zero re-evaluations\n  wfctl verify <DIR>          verify the store's hash-chained event\n                              ledger line by line (tamper/corruption check)\n  wfctl validate <job.yaml>   parse + resolve a job without running it\n  wfctl daemon [--root DIR]   serve the wfd multi-tenant daemon in the\n                              foreground over the state root DIR (or\n                              WF_DAEMON); Ctrl-C parks every session at\n                              its wave boundary, resumable\n  wfctl submit <job.yaml> [--daemon DIR]\n                              hand a job to a running daemon; prints the\n                              session id and store directory. The root\n                              resolves --daemon > WF_DAEMON > the job's\n                              `daemon:` key\n  wfctl sessions [--daemon DIR]\n                              list the daemon's sessions and statuses\n  wfctl watch <ID> [--daemon DIR]\n                              stream a daemon session's events until it\n                              ends (or Ctrl-C; the session keeps running)\n  wfctl stop <ID> [--daemon DIR]\n                              park a daemon session at its next wave\n                              boundary; its store resumes with\n                              `wfctl resume`\n  wfctl targets               list every registered target\n  wfctl bench [--quick] [--out PATH] [--target K]\n                              time the controller-side hot paths (search\n                              propose/observe batches, DeepTune batches,\n                              store append/replay, wave dispatch) and\n                              optionally write the machine-readable JSON\n                              (BENCH_search.json is the committed baseline\n                              the CI perf gate diffs against). --target K\n                              times the search hot paths on the registered\n                              target K's own space and sampling policy\n                              instead (BENCH_<K>.json are the committed\n                              per-target baselines)\n  wfctl probe                 run the §3.4 runtime-space inference\n  wfctl lint [ROOT] [--format human|json] [--out PATH] [--list-rules]\n                              run the wf-lint determinism & robustness\n                              static analysis over the workspace (ROOT\n                              defaults to `.`; config from wf-lint.toml);\n                              exits nonzero on any unsuppressed finding —\n                              the same check CI's lint-pass leg enforces\n  wfctl experiments           list the regeneration targets\n  wfctl --help                show this help";

/// Parses one flag value, advancing the cursor.
fn flag_value(rest: &[String], i: &mut usize, flag: &str) -> Result<String, String> {
    let value = rest
        .get(*i + 1)
        .ok_or_else(|| format!("{flag} needs a value"))?;
    *i += 2;
    Ok(value.clone())
}

fn parse_iterations(value: &str) -> Result<usize, String> {
    value
        .parse()
        .ok()
        .filter(|n| *n >= 1)
        .ok_or_else(|| format!("--iterations must be >= 1, got {value:?}"))
}

fn parse_time_budget(value: &str) -> Result<f64, String> {
    value
        .parse()
        .ok()
        .filter(|s| *s > 0.0)
        .ok_or_else(|| format!("--time-budget-s must be > 0, got {value:?}"))
}

/// `run` operands: an optional job-file path plus override flags.
struct RunArgs {
    path: Option<String>,
    os: Option<String>,
    app: Option<String>,
    workers: Option<usize>,
    iterations: Option<usize>,
    time_budget_s: Option<f64>,
    repetitions: Option<usize>,
    seed: Option<u64>,
    out: Option<String>,
    backend: Option<BackendChoice>,
    routing: Option<RoutingStrategy>,
}

impl RunArgs {
    fn parse(rest: &[String]) -> Result<RunArgs, String> {
        let mut run = RunArgs {
            path: None,
            os: None,
            app: None,
            workers: None,
            iterations: None,
            time_budget_s: None,
            repetitions: None,
            seed: None,
            out: None,
            backend: None,
            routing: None,
        };
        let mut i = 0;
        while i < rest.len() {
            match rest[i].as_str() {
                "--workers" => {
                    let value = flag_value(rest, &mut i, "--workers")?;
                    run.workers = Some(
                        value
                            .parse()
                            .ok()
                            .filter(|n| (1..=64).contains(n))
                            .ok_or_else(|| format!("--workers must be in 1..=64, got {value:?}"))?,
                    );
                }
                "--os" => run.os = Some(flag_value(rest, &mut i, "--os")?),
                "--app" => run.app = Some(flag_value(rest, &mut i, "--app")?),
                "--out" => run.out = Some(flag_value(rest, &mut i, "--out")?),
                "--iterations" => {
                    run.iterations = Some(parse_iterations(&flag_value(
                        rest,
                        &mut i,
                        "--iterations",
                    )?)?);
                }
                "--time-budget-s" => {
                    run.time_budget_s = Some(parse_time_budget(&flag_value(
                        rest,
                        &mut i,
                        "--time-budget-s",
                    )?)?);
                }
                "--repetitions" => {
                    let value = flag_value(rest, &mut i, "--repetitions")?;
                    run.repetitions =
                        Some(
                            value.parse().ok().filter(|n| *n >= 1).ok_or_else(|| {
                                format!("--repetitions must be >= 1, got {value:?}")
                            })?,
                        );
                }
                "--seed" => {
                    let value = flag_value(rest, &mut i, "--seed")?;
                    run.seed = Some(
                        value
                            .parse()
                            .map_err(|_| format!("--seed must be an integer, got {value:?}"))?,
                    );
                }
                "--backend" => {
                    let value = flag_value(rest, &mut i, "--backend")?;
                    run.backend = Some(BackendChoice::parse_keyword(&value).ok_or_else(|| {
                        format!("--backend must be spawn, in-process, or remote, got {value:?}")
                    })?);
                }
                "--routing" => {
                    let value = flag_value(rest, &mut i, "--routing")?;
                    run.routing = Some(RoutingStrategy::parse_keyword(&value).ok_or_else(|| {
                        format!(
                            "--routing must be random, fastest, round-robin, or preferred, got {value:?}"
                        )
                    })?);
                }
                flag if flag.starts_with("--") => return Err(format!("unknown flag {flag:?}")),
                operand => {
                    if run.path.replace(operand.to_string()).is_some() {
                        return Err("run takes at most one job file".into());
                    }
                    i += 1;
                }
            }
        }
        if run.path.is_none() && run.os.is_none() {
            return Err("run needs a job file or --os <keyword>".into());
        }
        Ok(run)
    }
}

/// `resume` operands: the store directory plus budget overrides.
struct ResumeArgs {
    dir: String,
    iterations: Option<usize>,
    time_budget_s: Option<f64>,
}

impl ResumeArgs {
    fn parse(rest: &[String]) -> Result<ResumeArgs, String> {
        let mut resume = ResumeArgs {
            dir: String::new(),
            iterations: None,
            time_budget_s: None,
        };
        let mut i = 0;
        while i < rest.len() {
            match rest[i].as_str() {
                "--iterations" => {
                    resume.iterations = Some(parse_iterations(&flag_value(
                        rest,
                        &mut i,
                        "--iterations",
                    )?)?);
                }
                "--time-budget-s" => {
                    resume.time_budget_s = Some(parse_time_budget(&flag_value(
                        rest,
                        &mut i,
                        "--time-budget-s",
                    )?)?);
                }
                flag if flag.starts_with("--") => return Err(format!("unknown flag {flag:?}")),
                operand => {
                    if !resume.dir.is_empty() {
                        return Err("resume takes exactly one store directory".into());
                    }
                    resume.dir = operand.to_string();
                    i += 1;
                }
            }
        }
        if resume.dir.is_empty() {
            return Err("resume needs a store directory".into());
        }
        Ok(resume)
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("wfctl: {err}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

/// Prints a build error with a variant-specific hint and returns the
/// failure exit code.
fn report_build_error(context: &str, err: &BuildError) -> ExitCode {
    eprintln!("{context}: {err}");
    match err {
        BuildError::UnknownTarget { .. } => {
            eprintln!("hint: `wfctl targets` lists every registered target")
        }
        BuildError::UnknownApp { .. } | BuildError::IncompatibleApp { .. } => {
            eprintln!("hint: `wfctl targets` shows which apps each target supports")
        }
        BuildError::UnknownMetric { .. } => {
            eprintln!("hint: set `metric:` to the target's primary metric, `memory`, or `score`")
        }
        BuildError::MissingBudget => {
            eprintln!("hint: give the job a `budget:` with `iterations:` or `time_seconds:`")
        }
        BuildError::BadPin { .. } => {
            eprintln!("hint: pinned parameters must exist in the searched space")
        }
        BuildError::DuplicateKeyword { .. } => {
            eprintln!("hint: every registered target needs a unique keyword")
        }
        BuildError::Backend { .. } => {
            eprintln!("hint: remote backends need wf-evald workers that can launch and connect")
        }
        BuildError::ContinuousUnsupported { .. } => {
            eprintln!("hint: `mode: continuous` needs a simulated target with a drift model")
        }
    }
    ExitCode::FAILURE
}

fn load_job(path: &str) -> Result<Job, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Job::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn validate_job(path: &str) -> ExitCode {
    let job = match load_job(path) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("invalid job: {e}");
            return ExitCode::FAILURE;
        }
    };
    let built = SessionBuilder::from_job(&job)
        .map(|b| b.registry(wayfinder::scenarios::registry()))
        .and_then(SessionBuilder::build);
    match built {
        Ok(session) => {
            let descriptor = session.platform().descriptor().clone();
            let space = session.platform().space();
            println!(
                "job {:?}: {} on {} — {} parameters (10^{:.1} permutations), budget {:?} iterations / {:?} s",
                job.name,
                descriptor.app,
                descriptor.name,
                space.len(),
                space.log10_cardinality(),
                job.budget.iterations,
                job.budget.time_seconds,
            );
            // What a session-store manifest would record for this job:
            // every omitted key resolved to the target's defaults.
            let resolved = session.resolved_job();
            println!(
                "resolved defaults: app {}, metric {} ({}), workers {}, out {}",
                descriptor.app,
                resolved.metric.as_deref().unwrap_or(&descriptor.metric),
                descriptor.unit,
                resolved.workers.unwrap_or(1),
                job.out.as_deref().unwrap_or("(none — in-memory only)"),
            );
            ExitCode::SUCCESS
        }
        Err(e) => report_build_error("invalid job", &e),
    }
}

/// Live progress printer: one line per `NewBest`, plus a throttled
/// progress line (every half virtual hour) as waves complete.
struct ConsoleSink {
    every_s: f64,
    last_progress_s: f64,
    now_s: f64,
    iterations: usize,
}

impl ConsoleSink {
    fn new() -> ConsoleSink {
        ConsoleSink {
            every_s: 1800.0,
            last_progress_s: 0.0,
            now_s: 0.0,
            iterations: 0,
        }
    }
}

impl EventSink for ConsoleSink {
    fn on_event(&mut self, event: &SessionEvent) {
        match event {
            SessionEvent::SessionStarted {
                descriptor,
                workers,
                first_iteration,
                ..
            } => {
                if *first_iteration == 0 {
                    println!(
                        "running: {} on {} across {} worker(s) ...",
                        descriptor.app, descriptor.name, workers
                    );
                } else {
                    println!(
                        "resuming: {} on {} across {} worker(s), continuing at iteration {} ...",
                        descriptor.app, descriptor.name, workers, first_iteration
                    );
                }
            }
            SessionEvent::CandidateEvaluated(r) => {
                self.now_s = r.finished_at_s;
                self.iterations = r.iteration + 1;
            }
            SessionEvent::NewBest {
                iteration,
                objective,
            } => {
                // Zero-based, matching the stored records and the
                // offline report's "improvements" list.
                println!(
                    "  t={:>7.0}s  iteration {:>4}  new best {objective:.2}",
                    self.now_s, iteration
                );
            }
            SessionEvent::DriftDetected {
                epoch,
                at_iteration,
                detector,
                signal,
                baseline,
                ..
            } => {
                println!(
                    "  t={:>7.0}s  iteration {:>4}  drift confirmed by {detector} \
                     (epoch {epoch}: reference {baseline:.2} -> {signal:.2})",
                    self.now_s, at_iteration
                );
            }
            SessionEvent::EpochStarted {
                epoch,
                phase,
                transfer,
                ..
            } if *epoch > 0 => {
                println!(
                    "  t={:>7.0}s  epoch {epoch} opened under phase {phase:?} ({} search)",
                    self.now_s,
                    if *transfer { "transfer-seeded" } else { "cold" }
                );
            }
            SessionEvent::WaveCompleted(_) if self.now_s - self.last_progress_s >= self.every_s => {
                self.last_progress_s = self.now_s;
                println!("  t={:>7.0}s  iteration {:>4}", self.now_s, self.iterations);
            }
            _ => {}
        }
    }
}

/// Runs a built session to completion (streaming progress, optionally
/// into a store) and prints the final summary.
///
/// SIGINT/SIGTERM are caught: the wave loop checks the flag at every
/// wave boundary — the only points where the store is consistent — so
/// Ctrl-C flushes the sink, writes a final checkpoint, and exits with
/// code 130 and a resume hint, losing at most the in-flight wave. A
/// second Ctrl-C falls back to the default disposition and kills the
/// process.
fn drive_session(mut session: SpecializationSession, store: Option<&SessionStore>) -> ExitCode {
    let flag = signal::install_interrupt_flag();
    let mut should_stop = || flag.load(Ordering::Relaxed);
    let mut console = ConsoleSink::new();
    let (summary, finished) = match store {
        Some(store) => {
            let mut jsonl = match store.sink() {
                Ok(sink) => sink,
                Err(e) => {
                    eprintln!("cannot open event log: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let (outcome, finished) =
                session.run_with_until(&mut Tee(&mut jsonl, &mut console), &mut should_stop);
            if let Some(e) = jsonl.error() {
                eprintln!("warning: event log incomplete: {e}");
            }
            println!(
                "store: {} ({} checkpoint(s) this run)",
                store.dir().display(),
                jsonl.checkpoints()
            );
            (outcome.summary, finished)
        }
        None => {
            let (outcome, finished) = session.run_with_until(&mut console, &mut should_stop);
            (outcome.summary, finished)
        }
    };
    if !finished {
        eprintln!(
            "interrupted: stopped at a wave boundary after {} evaluation(s)",
            summary.iterations
        );
        match store {
            Some(store) => eprintln!(
                "hint: `wfctl resume {}` continues exactly where this stopped",
                store.dir().display()
            ),
            None => eprintln!("note: no --out store was set, so nothing was persisted"),
        }
        return ExitCode::from(130);
    }
    let descriptor = session.platform().descriptor().clone();
    println!(
        "done: {} iterations in {:.1} virtual hours, crash rate {:.0}%",
        summary.iterations,
        summary.elapsed_s / 3600.0,
        summary.crash_rate * 100.0
    );
    if summary.workers > 1 {
        // Per-wave scheduling detail for short sessions; long ones get
        // the aggregate line only.
        let waves = session.platform().waves();
        if waves.len() <= 16 {
            print!(
                "{}",
                wayfinder::core::wave_stats_table(waves, summary.workers).render()
            );
        }
        println!(
            "pool: {} workers over {} waves — {:.1} VM-hours of compute in {:.1} wall hours ({:.1}x), mean occupancy {:.0}%, cache hit rate {:.0}%",
            summary.workers,
            summary.waves,
            summary.compute_s / 3600.0,
            summary.elapsed_s / 3600.0,
            summary.compute_s / summary.elapsed_s.max(1e-9),
            summary.mean_occupancy * 100.0,
            {
                let (h, m) = summary.cache_stats;
                if h + m == 0 { 0.0 } else { 100.0 * h as f64 / (h + m) as f64 }
            },
        );
    }
    match (summary.best_objective, summary.best_config) {
        (Some(best), Some(config)) => {
            println!(
                "best {} ({}): {best:.2}",
                descriptor.metric, descriptor.unit
            );
            let space = session.platform().space();
            let default = space.default_config();
            println!("non-default parameters:");
            for idx in config.diff_indices(&default) {
                println!("  {} = {}", space.spec(idx).name, config.get(idx));
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("no configuration survived the budget");
            ExitCode::FAILURE
        }
    }
}

fn run_job(run: &RunArgs) -> ExitCode {
    let (job_out, builder) = match &run.path {
        Some(path) => {
            let job = match load_job(path) {
                Ok(j) => j,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let builder = match SessionBuilder::from_job(&job) {
                Ok(b) => b,
                Err(e) => return report_build_error("cannot build session", &e),
            };
            (job.out.clone(), builder)
        }
        // Ad-hoc `--os` runs: a quick random-search session on the
        // target's default app and metric, overridable by the flags
        // below.
        None => (
            None,
            SessionBuilder::new()
                .name("adhoc")
                .algorithm(AlgorithmChoice::Random)
                .iterations(24),
        ),
    };
    // CLI flags > job file > WF_WORKERS/default.
    let mut builder = builder.registry(wayfinder::scenarios::registry());
    if let Some(os) = &run.os {
        builder = builder.target(os.clone());
    }
    if let Some(app) = &run.app {
        builder = builder.app_named(app.clone());
    }
    if let Some(n) = run.workers {
        builder = builder.workers(n);
    }
    if let Some(n) = run.iterations {
        builder = builder.iterations(n);
    }
    if let Some(s) = run.time_budget_s {
        builder = builder.time_budget_s(s);
    }
    if let Some(n) = run.repetitions {
        builder = builder.repetitions(n);
    }
    if let Some(seed) = run.seed {
        builder = builder.seed(seed);
    }
    if let Some(backend) = run.backend {
        builder = builder.backend(backend);
    }
    if let Some(routing) = run.routing {
        builder = builder.routing(routing);
    }
    let session = match builder.build() {
        Ok(s) => s,
        Err(e) => return report_build_error("cannot build session", &e),
    };
    // `--out` wins over the job's `out:` key.
    let store = match run.out.clone().or(job_out) {
        None => None,
        Some(dir) => match SessionStore::create(&dir, session.resolved_job()) {
            Ok(store) => Some(store),
            Err(e) => {
                eprintln!("cannot create session store: {e}");
                eprintln!("hint: `wfctl resume {dir}` continues an existing store");
                return ExitCode::FAILURE;
            }
        },
    };
    drive_session(session, store.as_ref())
}

fn resume_job(args: &ResumeArgs) -> ExitCode {
    let store = match SessionStore::open(&args.dir) {
        Ok(store) => store,
        Err(e) => {
            eprintln!("cannot open session store: {e}");
            return ExitCode::FAILURE;
        }
    };
    let loaded = match store.load() {
        Ok(loaded) => loaded,
        Err(e) => {
            eprintln!("cannot load session store: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Budget overrides extend (or shrink) the stored campaign; the
    // manifest is rewritten afterwards so it stays authoritative.
    let mut job = loaded.job.clone();
    let overridden = args.iterations.is_some() || args.time_budget_s.is_some();
    if let Some(n) = args.iterations {
        job.budget.iterations = Some(n);
    }
    if let Some(s) = args.time_budget_s {
        job.budget.time_seconds = Some(s);
    }
    let mut session = match SessionBuilder::from_job(&job)
        .map(|b| b.registry(wayfinder::scenarios::registry()))
        .and_then(SessionBuilder::build)
    {
        Ok(s) => s,
        Err(e) => return report_build_error("manifest does not build", &e),
    };
    if let Err(e) = session.replay(&loaded) {
        eprintln!("history does not replay: {e}");
        return ExitCode::FAILURE;
    }
    if loaded.dropped_records > 0 {
        println!(
            "note: {} record(s) of an incomplete wave will be re-evaluated",
            loaded.dropped_records
        );
    }
    println!(
        "replayed {} evaluation(s) across {} wave(s) — zero re-evaluations",
        loaded.records.len(),
        loaded.wave_sizes.len()
    );
    if overridden {
        if let Err(e) = store.rewrite_manifest(session.resolved_job()) {
            eprintln!("cannot rewrite manifest: {e}");
            return ExitCode::FAILURE;
        }
    }
    drive_session(session, Some(&store))
}

/// Rebuilds the manifest's configuration space for offline naming
/// through the one authoritative resolution path — building the session
/// runs zero evaluations, and reusing it keeps the report's space
/// identical to the one the campaign searched.
fn manifest_space(job: &Job) -> Option<ConfigSpace> {
    let session = SessionBuilder::from_job(job)
        .ok()?
        .registry(wayfinder::scenarios::registry())
        .build()
        .ok()?;
    Some(session.platform().space().clone())
}

fn report_store(dir: &str) -> ExitCode {
    let loaded = match SessionStore::open(dir).and_then(|store| store.load()) {
        Ok(loaded) => loaded,
        Err(e) => {
            eprintln!("cannot load session store: {e}");
            return ExitCode::FAILURE;
        }
    };
    let space = manifest_space(&loaded.job);
    print!("{}", store_report(&loaded, space.as_ref()));
    ExitCode::SUCCESS
}

fn verify_store(dir: &str) -> ExitCode {
    match SessionStore::open(dir).and_then(|store| store.verify_chain()) {
        Ok(verified) => {
            println!("ledger verified: {verified} hash-chained record(s) in {dir}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("ledger verification failed: {e}");
            ExitCode::FAILURE
        }
    }
}

// ---------------------------------------------------------------------------
// Daemon subcommands.
// ---------------------------------------------------------------------------

/// `daemon` operands.
struct DaemonArgs {
    root: Option<String>,
}

impl DaemonArgs {
    fn parse(rest: &[String]) -> Result<DaemonArgs, String> {
        let mut daemon = DaemonArgs { root: None };
        let mut i = 0;
        while i < rest.len() {
            match rest[i].as_str() {
                "--root" => daemon.root = Some(flag_value(rest, &mut i, "--root")?),
                other => return Err(format!("unknown argument {other:?}")),
            }
        }
        Ok(daemon)
    }
}

/// Operands shared by the daemon-client subcommands: an optional
/// `--daemon DIR` plus, for submit/watch/stop, exactly one operand.
struct ClientArgs {
    daemon: Option<String>,
    operand: Option<String>,
}

impl ClientArgs {
    fn parse(rest: &[String], cmd: &str, wants_operand: bool) -> Result<ClientArgs, String> {
        let mut client = ClientArgs {
            daemon: None,
            operand: None,
        };
        let mut i = 0;
        while i < rest.len() {
            match rest[i].as_str() {
                "--daemon" => client.daemon = Some(flag_value(rest, &mut i, "--daemon")?),
                flag if flag.starts_with("--") => return Err(format!("unknown flag {flag:?}")),
                operand => {
                    if !wants_operand {
                        return Err(format!("{cmd} takes no operand, got {operand:?}"));
                    }
                    if client.operand.replace(operand.to_string()).is_some() {
                        return Err(format!("{cmd} takes exactly one operand"));
                    }
                    i += 1;
                }
            }
        }
        if wants_operand && client.operand.is_none() {
            return Err(format!("{cmd} needs an operand"));
        }
        Ok(client)
    }

    /// Resolves the daemon state root: `--daemon` > `WF_DAEMON` >
    /// `fallback` (the job's `daemon:` key, for submit).
    fn root(&self, fallback: Option<&str>) -> Result<PathBuf, String> {
        self.daemon
            .clone()
            // wf-lint: allow(host-env-read, reason = "config-load: WF_DAEMON is the documented CLI fallback for --daemon, read once while parsing arguments")
            .or_else(|| std::env::var("WF_DAEMON").ok())
            .or_else(|| fallback.map(str::to_string))
            .map(PathBuf::from)
            .ok_or_else(|| "no daemon state root: pass --daemon DIR or set WF_DAEMON".to_string())
    }
}

/// One request frame, one reply frame.
fn daemon_request(root: &std::path::Path, req: &JsonValue) -> std::io::Result<JsonValue> {
    let mut stream = connect(root)?;
    round_trip(&mut stream, req)
}

fn run_daemon(args: &DaemonArgs) -> ExitCode {
    let root = match args
        .root
        .clone()
        // wf-lint: allow(host-env-read, reason = "config-load: WF_DAEMON is the documented CLI fallback for --root, read once while parsing arguments")
        .or_else(|| std::env::var("WF_DAEMON").ok())
    {
        Some(root) => root,
        None => return usage("daemon needs --root DIR (or WF_DAEMON)"),
    };
    let daemon = match bind_daemon(&root, wayfinder::scenarios::registry) {
        Ok(daemon) => daemon,
        Err(e) => {
            eprintln!("cannot bind daemon: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "wfd: serving {} (socket {})",
        daemon.root().display(),
        daemon.socket_path().display()
    );
    let flag = signal::install_interrupt_flag();
    match daemon.run(flag) {
        Ok(()) => {
            println!("daemon shut down; its session stores resume with `wfctl resume`");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("daemon failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn submit_job(args: &ClientArgs) -> ExitCode {
    let path = args.operand.as_deref().unwrap_or_default();
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Parse locally first: early validation, plus the job's `daemon:`
    // key as the state-root fallback. The daemon re-parses the raw text
    // itself, so what runs is exactly what was on disk.
    let job = match Job::parse(&text) {
        Ok(job) => job,
        Err(e) => {
            eprintln!("invalid job: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let root = match args.root(job.daemon.as_deref()) {
        Ok(root) => root,
        Err(e) => {
            eprintln!("{e} (or give the job a `daemon:` key)");
            return ExitCode::FAILURE;
        }
    };
    let req = JsonValue::Obj(vec![
        ("op".to_string(), JsonValue::Str("submit".into())),
        ("job".to_string(), JsonValue::Str(text)),
    ]);
    match daemon_request(&root, &req) {
        Ok(reply) => {
            let id = reply.get("id").and_then(JsonValue::as_u64).unwrap_or(0);
            let dir = reply.get("dir").and_then(JsonValue::as_str).unwrap_or("?");
            println!("submitted {:?} as session {id}", job.name);
            println!("store: {dir}");
            println!(
                "follow it with `wfctl watch {id} --daemon {}`",
                root.display()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("submit failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn list_sessions(args: &ClientArgs) -> ExitCode {
    let root = match args.root(None) {
        Ok(root) => root,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let req = JsonValue::Obj(vec![("op".to_string(), JsonValue::Str("sessions".into()))]);
    match daemon_request(&root, &req) {
        Ok(reply) => {
            let sessions = reply
                .get("sessions")
                .and_then(JsonValue::as_arr)
                .unwrap_or(&[]);
            println!("{} session(s) under {}:", sessions.len(), root.display());
            for session in sessions {
                let id = session.get("id").and_then(JsonValue::as_u64).unwrap_or(0);
                let status = session
                    .get("status")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("?");
                let iterations = session
                    .get("iterations")
                    .and_then(JsonValue::as_u64)
                    .unwrap_or(0);
                let name = session
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("?");
                let best = session
                    .get("best")
                    .and_then(JsonValue::as_f64)
                    .map(|best| format!("{best:.2}"))
                    .unwrap_or_else(|| "-".into());
                println!("  {id:>4}  {status:<9} {iterations:>5} it  best {best:<10} {name}");
                if let Some(error) = session.get("error").and_then(JsonValue::as_str) {
                    println!("        error: {error}");
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("sessions failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn watch_session(args: &ClientArgs) -> ExitCode {
    let id = match args.operand.as_deref().unwrap_or_default().parse::<u64>() {
        Ok(id) => id,
        Err(_) => return usage("watch needs a numeric session id"),
    };
    let root = match args.root(None) {
        Ok(root) => root,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let mut stream = match connect(&root) {
        Ok(stream) => stream,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let req = JsonValue::Obj(vec![
        ("op".to_string(), JsonValue::Str("watch".into())),
        ("id".to_string(), JsonValue::Int(id as i64)),
    ]);
    let ack = match round_trip(&mut stream, &req) {
        Ok(ack) => ack,
        Err(e) => {
            eprintln!("watch failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "watching session {id} ({})",
        ack.get("status").and_then(JsonValue::as_str).unwrap_or("?")
    );
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(Some(frame)) => frame,
            Ok(None) => {
                eprintln!("daemon hung up");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("watch stream failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        if frame.get("stream").and_then(JsonValue::as_str) == Some("end") {
            let status = frame
                .get("status")
                .and_then(JsonValue::as_str)
                .unwrap_or("?");
            match frame.get("error").and_then(JsonValue::as_str) {
                Some(error) => eprintln!("session {id} {status}: {error}"),
                None => println!("session {id} {status}"),
            }
            return if status == "failed" {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            };
        }
        render_watch_frame(&frame);
    }
}

/// Renders one live event frame field-wise (the frames share the stored
/// ledger's vocabulary, minus the `prev` chain hash).
fn render_watch_frame(frame: &JsonValue) {
    match frame.get("event").and_then(JsonValue::as_str) {
        Some("new_best") => {
            let iteration = frame
                .get("iteration")
                .and_then(JsonValue::as_u64)
                .unwrap_or(0);
            if let Some(objective) = frame.get("objective").and_then(JsonValue::as_f64) {
                println!("  iteration {iteration:>4}  new best {objective:.2}");
            }
        }
        Some("checkpoint") => {
            let iterations = frame
                .get("iterations")
                .and_then(JsonValue::as_u64)
                .unwrap_or(0);
            println!("  checkpoint: {iterations} evaluation(s) durable");
        }
        Some("session_finished") => {
            let iterations = frame
                .get("iterations")
                .and_then(JsonValue::as_u64)
                .unwrap_or(0);
            println!("  session finished after {iterations} evaluation(s)");
        }
        _ => {}
    }
}

fn stop_session(args: &ClientArgs) -> ExitCode {
    let id = match args.operand.as_deref().unwrap_or_default().parse::<u64>() {
        Ok(id) => id,
        Err(_) => return usage("stop needs a numeric session id"),
    };
    let root = match args.root(None) {
        Ok(root) => root,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let req = JsonValue::Obj(vec![
        ("op".to_string(), JsonValue::Str("stop".into())),
        ("id".to_string(), JsonValue::Int(id as i64)),
    ]);
    match daemon_request(&root, &req) {
        Ok(_) => {
            println!("stop requested: session {id} parks at its next wave boundary");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("stop failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `bench` operands.
struct BenchArgs {
    quick: bool,
    out: Option<String>,
    target: Option<String>,
}

impl BenchArgs {
    fn parse(rest: &[String]) -> Result<BenchArgs, String> {
        let mut bench = BenchArgs {
            quick: false,
            out: None,
            target: None,
        };
        let mut i = 0;
        while i < rest.len() {
            match rest[i].as_str() {
                "--quick" => {
                    bench.quick = true;
                    i += 1;
                }
                "--out" => bench.out = Some(flag_value(rest, &mut i, "--out")?),
                "--target" => bench.target = Some(flag_value(rest, &mut i, "--target")?),
                flag if flag.starts_with("--") => return Err(format!("unknown flag {flag:?}")),
                operand => return Err(format!("bench takes no operand, got {operand:?}")),
            }
        }
        Ok(bench)
    }
}

fn run_bench(args: &BenchArgs) -> ExitCode {
    use wayfinder::bench::perf;
    let mode = if args.quick { "quick" } else { "full" };
    let (results, suite) = match &args.target {
        None => {
            println!("wfctl bench: timing the controller hot paths ({mode} mode) ...");
            (perf::run_suite(args.quick), perf::MAIN_SUITE.to_string())
        }
        Some(keyword) => {
            let registry = wayfinder::scenarios::registry();
            let Some(factory) = registry.get(keyword) else {
                eprintln!(
                    "unknown bench target {keyword:?}; registered targets: {}",
                    registry.keywords().join(", ")
                );
                return ExitCode::FAILURE;
            };
            let request = wayfinder::core::TargetRequest {
                app: factory.default_app().to_string(),
                runtime_params: 200,
            };
            let instance = match factory.instantiate(&request) {
                Ok(instance) => instance,
                Err(e) => {
                    eprintln!("cannot instantiate bench target {keyword}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!(
                "wfctl bench: timing the search hot paths on target {keyword} ({mode} mode) ..."
            );
            (
                perf::run_target_suite(instance.target.space(), &instance.policy, args.quick),
                perf::target_suite_tag(keyword),
            )
        }
    };
    print!("{}", perf::render_table(&results));
    if let Some(path) = &args.out {
        let json = perf::to_json_tagged(&results, args.quick, &suite);
        // `--out bench/out.json` into a directory that does not exist yet
        // should just work: create the parents rather than surfacing a
        // raw ENOENT after minutes of timing.
        if let Some(parent) = std::path::Path::new(path)
            .parent()
            .filter(|p| !p.as_os_str().is_empty())
        {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("cannot create {} for --out: {e}", parent.display());
                return ExitCode::FAILURE;
            }
        }
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("cannot write {suite} baseline {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path} ({} ops, suite {suite})", results.len());
    }
    ExitCode::SUCCESS
}

fn targets() -> ExitCode {
    let registry = wayfinder::scenarios::registry();
    println!("registered targets ({}):", registry.len());
    for factory in registry.factories() {
        println!(
            "  {:<16} apps: {:<32} {}",
            factory.keyword(),
            factory.apps().join(", "),
            factory.summary(),
        );
    }
    println!("(run one with `wfctl run --os <keyword>` or a job file's `os:` key)");
    ExitCode::SUCCESS
}

fn probe() -> ExitCode {
    let os = SimOs::linux_runtime(LinuxVersion::V4_19, 200);
    let mut tree = SysctlTree::from_space(&os.space);
    let rules = os.crash_rules.clone();
    let defaults = os.defaults_view.clone();
    let mut crash_probe = |name: &str, value: &str| {
        let mut view = NamedConfig::empty();
        if let Ok(v) = value.parse::<i64>() {
            view.set(name.to_string(), Value::Int(v));
        }
        first_crash(&rules, &view, &defaults).is_some()
    };
    let report = probe_runtime_space(&mut tree, &mut crash_probe);
    println!(
        "probed {} parameters ({} writes, {} probe crashes, {} non-numeric skipped)",
        report.specs.len(),
        report.writes_attempted,
        report.probe_crashes,
        report.skipped_non_numeric.len()
    );
    for spec in &report.specs {
        println!("{:<44} {:?}", spec.name, spec.kind);
    }
    ExitCode::SUCCESS
}

fn experiments() -> ExitCode {
    println!("regeneration targets (cargo bench -p wf-bench --bench <name>):");
    for (name, what) in [
        ("fig01_kconfig_growth", "Fig. 1  Linux option growth"),
        ("table1_config_census", "Table 1 configuration census"),
        ("fig02_random_nginx", "Fig. 2  random-config throughput"),
        ("fig05_cross_similarity", "Fig. 5  importance similarity"),
        ("fig06_search_evolution", "Fig. 6  search evolution"),
        ("table2_best_configs", "Table 2 best configurations"),
        ("fig07_scalability", "Fig. 7  DeepTune vs Unicorn"),
        ("fig08_loop_breakdown", "Fig. 8  loop-time breakdown"),
        ("table3_prediction_accuracy", "Table 3 prediction accuracy"),
        ("fig09_unikraft", "Fig. 9  Unikraft comparison"),
        ("fig10_memory_footprint", "Fig. 10 RISC-V footprint"),
        ("fig11_cozart_cooptim", "Fig. 11 Cozart co-optimization"),
        ("table4_cozart_top5", "Table 4 co-optimization top-5"),
        ("ablation", "scoring-function ablation"),
        ("micro", "Criterion microbenches"),
    ] {
        println!("  {name:<28} {what}");
    }
    ExitCode::SUCCESS
}
