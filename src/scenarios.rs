//! Downstream scenario definitions, registered from *outside* the core
//! crates.
//!
//! This module is the proof that the target layer is open: it defines a
//! genuinely new scenario — `linux-6.0-net`, a network-tuned Linux 6.0
//! target running a memcached-style key-value cache — using only public
//! building blocks (`wf_ossim` models, `wf_platform::SimTarget`,
//! `wayfinder_core::TargetRegistry`). Neither `wf-platform`'s pipeline
//! nor `wayfinder-core`'s session internals know this scenario exists;
//! it still runs from job files, `SessionBuilder`, `wfctl run --os
//! linux-6.0-net`, and shows up in `wfctl targets`.
//!
//! Use it as the template for your own targets: build (or implement) an
//! [`wf_platform::EvalTarget`], wrap it in a
//! [`wayfinder_core::TargetFactory`], and [`register`] it.

use std::sync::Arc;
use wayfinder_core::{BuildError, TargetFactory, TargetInstance, TargetRegistry, TargetRequest};
use wf_kconfig::LinuxVersion;
use wf_ossim::{App, AppId, Cond, Curve, MetricDirection, PerfModel, SimOs};
use wf_platform::SimTarget;
use wf_search::SamplePolicy;

/// Non-`net.*` parameters the network-tuned space keeps searchable: the
/// scheduler and memory knobs a cache server demonstrably feels.
pub const NET_EXTRA_PARAMS: &[&str] = &[
    "kernel.sched_migration_cost_ns",
    "kernel.numa_balancing",
    "vm.swappiness",
    "vm.overcommit_memory",
];

/// The network-tuned Linux 6.0 OS: the probed v6.0 runtime space cut
/// down to the networking stack plus [`NET_EXTRA_PARAMS`].
fn network_tuned_linux(runtime_params: usize) -> SimOs {
    let mut os = SimOs::linux_runtime(LinuxVersion::V6_0, runtime_params);
    let keep: Vec<&str> = os
        .space
        .specs()
        .iter()
        .map(|p| p.name.as_str())
        .filter(|name| name.starts_with("net.") || NET_EXTRA_PARAMS.contains(name))
        .collect();
    os.space = os.space.subset(&keep);
    os.name = "linux-6.0-net".into();
    os
}

/// A memcached-style in-memory cache under a memtier-style load
/// generator: network-intensive, partially multi-threaded, with the
/// biggest wins in aligned backlog/buffer combinations — the same shape
/// §4.1 reports for the other system-intensive servers.
pub fn memcached_app() -> App {
    let perf = PerfModel::new(0.022)
        .effect(
            "net.core.somaxconn",
            Curve::SaturatingLog {
                lo: 128.0,
                hi: 8_192.0,
                gain: 0.05,
            },
        )
        .effect(
            "net.ipv4.tcp_max_syn_backlog",
            Curve::SaturatingLog {
                lo: 512.0,
                hi: 8_192.0,
                gain: 0.02,
            },
        )
        .effect(
            "net.core.rmem_default",
            Curve::OptimumLog {
                best: 2_097_152.0,
                width: 0.7,
                gain: 0.03,
            },
        )
        .effect(
            "net.core.wmem_default",
            Curve::OptimumLog {
                best: 2_097_152.0,
                width: 0.8,
                gain: 0.02,
            },
        )
        .effect(
            "net.core.busy_read",
            Curve::OptimumLog {
                best: 50.0,
                width: 0.4,
                gain: 0.035,
            },
        )
        .effect(
            "net.ipv4.tcp_fastopen",
            Curve::PerChoice {
                factors: vec![1.0, 1.004, 1.004, 1.01],
            },
        )
        .effect(
            "net.ipv4.tcp_keepalive_time",
            Curve::Step {
                at: 600.0,
                below: 1.01,
                above: 1.0,
            },
        )
        .effect("net.ipv4.tcp_sack", Curve::BoolFactor { when_on: 1.008 })
        .effect(
            "net.ipv4.tcp_tw_reuse",
            Curve::BoolFactor { when_on: 1.008 },
        )
        .effect(
            "kernel.sched_migration_cost_ns",
            Curve::SaturatingLog {
                lo: 500_000.0,
                hi: 50_000_000.0,
                gain: 0.018,
            },
        )
        .effect("kernel.numa_balancing", Curve::BoolFactor { when_on: 0.99 })
        .effect(
            "vm.swappiness",
            Curve::Linear {
                lo: 0.0,
                hi: 100.0,
                lo_factor: 1.004,
                hi_factor: 0.99,
            },
        )
        .interaction(
            "aligned-backlogs",
            vec![
                ("net.core.somaxconn", Cond::Ge(4096.0)),
                ("net.ipv4.tcp_max_syn_backlog", Cond::Ge(4096.0)),
                ("net.core.netdev_max_backlog", Cond::Ge(4096.0)),
            ],
            1.04,
        )
        .interaction(
            "poll+sticky",
            vec![
                ("net.core.busy_read", Cond::Ge(30.0)),
                ("kernel.sched_migration_cost_ns", Cond::Ge(5_000_000.0)),
            ],
            1.015,
        );
    let mem = PerfModel::new(0.01)
        .effect(
            "net.core.rmem_default",
            Curve::SaturatingLog {
                lo: 212_992.0,
                hi: 33_554_432.0,
                gain: 0.18,
            },
        )
        .effect(
            "net.core.wmem_default",
            Curve::SaturatingLog {
                lo: 212_992.0,
                hi: 33_554_432.0,
                gain: 0.12,
            },
        )
        .effect(
            "vm.overcommit_memory",
            Curve::PerChoice {
                factors: vec![1.0, 1.0, 1.08],
            },
        );
    App {
        id: AppId::Custom("memcached"),
        bench_tool: "memtier_benchmark",
        metric_name: "throughput",
        unit: "ops/s",
        direction: MetricDirection::HigherBetter,
        base: 812_000.0,
        cores: 8,
        bench_duration_s: 50.0,
        mem_base_mb: 128.0,
        perf,
        mem,
    }
}

/// The `linux-6.0-net` target factory: network-tuned Linux 6.0 running
/// [`memcached_app`].
pub struct NetTunedLinuxFactory;

impl TargetFactory for NetTunedLinuxFactory {
    fn keyword(&self) -> &str {
        "linux-6.0-net"
    }

    fn summary(&self) -> &str {
        "Linux v6.0 cut to the networking stack, memcached-style cache (downstream scenario)"
    }

    fn apps(&self) -> Vec<String> {
        vec!["memcached".into()]
    }

    fn default_app(&self) -> &str {
        "memcached"
    }

    fn instantiate(&self, request: &TargetRequest) -> Result<TargetInstance, BuildError> {
        if request.app != "memcached" {
            return Err(BuildError::IncompatibleApp {
                target: self.keyword().to_string(),
                app: request.app.clone(),
                reason: "this scenario models a memcached-style cache only".into(),
            });
        }
        Ok(TargetInstance {
            target: Box::new(SimTarget::new(
                network_tuned_linux(request.runtime_params),
                memcached_app(),
            )),
            policy: SamplePolicy::Uniform,
        })
    }
}

/// Registers every scenario in this module into `registry`.
pub fn register(registry: &mut TargetRegistry) -> Result<(), BuildError> {
    registry.register(Arc::new(NetTunedLinuxFactory))
}

/// The built-in registry plus this module's scenarios — what `wfctl`
/// resolves against.
pub fn registry() -> TargetRegistry {
    let mut registry = TargetRegistry::builtin();
    register(&mut registry).expect("scenario keywords do not collide with built-ins");
    registry
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn network_space_keeps_only_net_and_whitelisted_params() {
        let os = network_tuned_linux(200);
        assert!(!os.space.is_empty());
        for spec in os.space.specs() {
            assert!(
                spec.name.starts_with("net.") || NET_EXTRA_PARAMS.contains(&spec.name.as_str()),
                "unexpected parameter {}",
                spec.name
            );
        }
    }

    #[test]
    fn memcached_has_tunable_headroom() {
        let os = network_tuned_linux(200);
        let app = memcached_app();
        let bound = app.perf.headroom_bound(&os.defaults_view);
        assert!((1.05..1.40).contains(&bound), "headroom bound {bound}");
    }
}
