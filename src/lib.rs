//! Wayfinder: automated operating-system specialization (EuroSys'26).
//!
//! This facade crate re-exports the full workspace so downstream users can
//! depend on a single crate:
//!
//! * [`nn`] — from-scratch neural-network substrate used by DeepTune;
//! * [`configspace`] — typed OS configuration-space model;
//! * [`kconfig`] — Kconfig-language parser, solver, and synthetic Linux model;
//! * [`jobfile`] — YAML-subset job-file parser (§3.1/§3.4 of the paper);
//! * [`ossim`] — simulated OS substrate (kernel build/boot, sysctl tree,
//!   applications, benchmark tools);
//! * [`platform`] — the automated benchmarking pipeline;
//! * [`search`] — baseline algorithms (random, grid, Bayesian, causal);
//! * [`deeptune`] — the DeepTune optimizer (the paper's core contribution);
//! * [`drift`] — workload-signal streams and drift detectors for
//!   continuous specialization;
//! * [`forest`] — random-forest feature importance;
//! * [`cozart`] — compile-time debloating baseline;
//! * [`bench`](mod@bench) — the regeneration harness plus the
//!   `wfctl bench` perf suite and its JSON emit/compare machinery;
//! * [`core`] — sessions, the open target registry, reports, and
//!   per-figure experiment runners;
//! * [`scenarios`] — downstream-registered targets (e.g. `linux-6.0-net`
//!   with a memcached-style cache), the template for adding your own.
//!
//! # Examples
//!
//! ```
//! use wayfinder::prelude::*;
//!
//! // Specialize simulated Linux for Nginx throughput with DeepTune.
//! let mut session = SessionBuilder::new()
//!     .os(OsFlavor::Linux419)
//!     .app(AppId::Nginx)
//!     .algorithm(AlgorithmChoice::DeepTune)
//!     .iterations(20)
//!     .seed(7)
//!     .build()
//!     .expect("valid session");
//! let outcome = session.run();
//! assert!(outcome.best.is_some());
//! ```

pub mod scenarios;

pub use wayfinder_core as core;
pub use wf_bench as bench;
pub use wf_configspace as configspace;
pub use wf_cozart as cozart;
pub use wf_deeptune as deeptune;
pub use wf_drift as drift;
pub use wf_forest as forest;
pub use wf_jobfile as jobfile;
pub use wf_kconfig as kconfig;
pub use wf_nn as nn;
pub use wf_ossim as ossim;
pub use wf_platform as platform;
pub use wf_search as search;

/// Convenient re-exports for application code and examples.
pub mod prelude {
    pub use wayfinder_core::prelude::*;
}
